"""Finding similar protein sequences via 3-gram top-k joins.

Mirrors the paper's UNIREF-3GRAM experiment: protein sequences (amino
acids as uppercase letters) are tokenized into overlapping 3-grams and
joined with Jaccard similarity.  Small alphabets mean long inverted lists
— the regime where the accessing-bound optimisation (Algorithms 9-10)
pays off, which this example reports.

Run:  python examples/protein_sequences.py
"""

from repro import Jaccard, TopkOptions, TopkStats, topk_join
from repro.data import RecordCollection, qgram_strings

AMINO_ALPHABET = "ACDEFGHIKLMNPQRSTVWY"


def main() -> None:
    print("Synthesising 400 protein-like sequences (20-letter alphabet)...")
    sequences = qgram_strings(
        400, avg_length=180, alphabet=AMINO_ALPHABET, seed=13,
        duplicate_fraction=0.4, mutation_rate=0.04,
    )
    collection = RecordCollection.from_qgrams(sequences, q=3)
    print(
        "  %d sequences -> avg %.0f 3-grams each, %d distinct grams\n"
        % (len(collection), collection.average_size, collection.universe_size)
    )

    k = 15
    # 3-gram data uses a deeper suffix filter (MAXDEPTH = 4, Section VII-A).
    options = TopkOptions(maxdepth=4)
    stats = TopkStats()
    results = topk_join(
        collection, k, similarity=Jaccard(), options=options, stats=stats
    )

    print("Top-%d most similar sequence pairs (Jaccard on 3-grams):" % k)
    for result in results:
        x = collection[result.x]
        y = collection[result.y]
        a = sequences[x.source_id]
        b = sequences[y.source_id]
        print(
            "  %.3f  len %4d vs %4d   %s... vs %s..."
            % (result.similarity, len(a), len(b), a[:24], b[:24])
        )

    print("\nAccessing-bound optimisation effect on the inverted index:")
    print("  postings inserted : %d" % stats.index_inserted)
    print("  postings truncated: %d (%.0f%% of the index deleted in flight)"
          % (
              stats.index_deleted,
              100.0 * stats.index_deleted / max(stats.index_inserted, 1),
          ))


if __name__ == "__main__":
    main()
