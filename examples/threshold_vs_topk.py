"""Threshold joins vs the top-k join — why guessing thresholds hurts.

Section I of the paper: with a threshold join, "users have to experiment
with different threshold values, which usually leads to empty results (if
the threshold chosen is too high) or a long running time and too many
results (if the threshold is too low)".

This example quantifies the dilemma on one dataset: several threshold
guesses (empty / explosive) next to a single ``topk_join`` call that
returns exactly k pairs, plus a comparison of all three top-k strategies
(naive scoring, pptopk, topk-join).

Run:  python examples/threshold_vs_topk.py
"""

import time

from repro import (
    PptopkStats,
    naive_topk,
    pptopk_join,
    threshold_join,
    topk_join,
)
from repro.data import dblp_like


def main() -> None:
    collection = dblp_like(1500, seed=7)
    print(
        "Workload: %d DBLP-like records, avg %.0f tokens\n"
        % (len(collection), collection.average_size)
    )

    print("The threshold-guessing dilemma (ppjoin+ at guessed thresholds):")
    for threshold in (0.99, 0.95, 0.9, 0.8, 0.6):
        start = time.perf_counter()
        results = threshold_join(collection, threshold, algorithm="ppjoin+")
        elapsed = time.perf_counter() - start
        verdict = "EMPTY" if not results else "%5d pairs" % len(results)
        print("  t = %.2f -> %-11s (%.2fs)" % (threshold, verdict, elapsed))

    # A deep-enough k forces pptopk through several threshold rounds —
    # the regime where the incremental topk-join wins (paper Fig. 4).
    k = 300
    print("\nOne top-k join instead (k = %d):" % k)

    start = time.perf_counter()
    answers = topk_join(collection, k)
    topk_seconds = time.perf_counter() - start
    print(
        "  topk-join : %d pairs, similarities %.3f .. %.3f  (%.2fs)"
        % (len(answers), answers[0].similarity, answers[-1].similarity,
           topk_seconds)
    )

    pp_stats = PptopkStats()
    start = time.perf_counter()
    pptopk_join(collection, k, stats=pp_stats)
    pp_seconds = time.perf_counter() - start
    print(
        "  pptopk    : same answer after %d threshold rounds %s  (%.2fs)"
        % (pp_stats.rounds, pp_stats.thresholds, pp_seconds)
    )

    start = time.perf_counter()
    naive_topk(collection, k)
    naive_seconds = time.perf_counter() - start
    print("  naive     : scored every pair                  (%.2fs)"
          % naive_seconds)

    print(
        "\nSpeedups: %.1fx over pptopk, %.1fx over naive scoring"
        % (pp_seconds / topk_seconds, naive_seconds / topk_seconds)
    )


if __name__ == "__main__":
    main()
