"""A small dedup + search pipeline on a noisy bibliography.

Combines three layers of the library:

1. build a noisy corpus (typos injected at the string level);
2. suppress near-duplicates with the clustering layer (``repro.dedup``);
3. serve interactive similarity queries over the cleaned corpus with the
   search layer (``repro.search``) — plus an edit-distance cross-check on
   the raw strings (``repro.strings``).

Run:  python examples/search_and_dedup.py
"""

import random

from repro import RecordCollection
from repro.dedup import cluster_by_threshold
from repro.search import SearchIndex
from repro.strings import edit_distance_topk

BASE_TITLES = [
    "efficient similarity joins for near duplicate detection",
    "top-k set similarity joins",
    "scaling up all pairs similarity search",
    "a primitive operator for similarity joins in data cleaning",
    "efficient exact set-similarity joins",
    "optimal aggregation algorithms for middleware",
    "combining fuzzy information from multiple systems",
    "indexing methods for approximate string matching",
    "fast algorithms for sorting and searching strings",
    "the anatomy of a large-scale hypertextual web search engine",
]


def noisy_corpus(seed: int, copies: int = 3):
    """Each base title plus a few typo'd copies."""
    rng = random.Random(seed)
    corpus = []
    for title in BASE_TITLES:
        corpus.append(title)
        for __ in range(rng.randint(1, copies)):
            chars = list(title)
            for __e in range(rng.randint(1, 3)):
                position = rng.randrange(len(chars))
                operation = rng.random()
                if operation < 0.4:
                    chars[position] = rng.choice("abcdefghijklmnopqrstuvwxyz")
                elif operation < 0.7 and len(chars) > 5:
                    del chars[position]
                else:
                    chars.insert(position, rng.choice("aeiou"))
            corpus.append("".join(chars))
    rng.shuffle(corpus)
    return corpus


def main() -> None:
    corpus = noisy_corpus(seed=33)
    print("Noisy corpus: %d titles (%d originals + typo'd copies)\n"
          % (len(corpus), len(BASE_TITLES)))

    # --- 1. cluster & deduplicate on word tokens -----------------------
    collection = RecordCollection.from_texts(corpus, dedupe=False)
    clustering = cluster_by_threshold(collection, 0.55)
    print("Found %d duplicate groups; examples:" %
          len(clustering.duplicate_groups))
    for group in clustering.duplicate_groups[:3]:
        for rid in group[:3]:
            print("   - %s" % corpus[collection[rid].source_id])
        print()

    survivors = clustering.representatives(collection)
    print("Corpus reduced from %d to %d titles.\n"
          % (len(corpus), len(survivors)))

    # --- 2. interactive search over the cleaned corpus -----------------
    cleaned = [corpus[collection[rid].source_id] for rid in survivors]
    search_collection = RecordCollection.from_texts(cleaned, dedupe=False)
    index = SearchIndex(search_collection)

    user_query = "similarity join algorithms for duplicate detection"
    ranks, size = index.prepare_query(user_query.split())
    print("Query: %r" % user_query)
    for hit in index.topk_search(ranks, 3, query_size=size):
        title = cleaned[search_collection[hit.rid].source_id]
        print("   %.3f  %s" % (hit.similarity, title))

    # --- 3. edit-distance cross-check on the raw strings ---------------
    print("\nClosest raw-string pairs by edit distance:")
    for pair in edit_distance_topk(corpus, 3):
        print("   d=%d  %r" % (pair.distance, corpus[pair.x][:50]))
        print("         %r" % corpus[pair.y][:50])


if __name__ == "__main__":
    main()
