"""Weighted top-k joins: why token weights change the answer.

Unweighted Jaccard treats "the" and a rare drug name alike; weighting
tokens by informativeness — here explicit weights, in practice idf — makes
rare shared tokens dominate, the convention in record linkage.  This
example runs both pipelines on the same records and shows the rankings
*flip*.

Run:  python examples/weighted_join.py
"""

from repro import RecordCollection, topk_join
from repro.data.tokenize import tokenize_words
from repro.weighted import WeightedCollection, weighted_topk_join

RECORDS = [
    "the state of the art in the field",      # stopword-heavy pair ...
    "the end of the day in the park",         # ... sharing 5 cheap tokens
    "zolpidem tartrate insomnia trial",       # rare-term pair sharing
    "zolpidem tartrate cohort analysis",      # ... 2 expensive tokens
    "melatonin dosage for jetlag",
    "field notes from the survey",
]

STOPWORDS = {"the", "of", "in", "a", "for", "from", "and", "results"}


def main() -> None:
    token_lists = [tokenize_words(text) for text in RECORDS]

    unweighted = RecordCollection.from_texts(RECORDS)
    print("Unweighted Jaccard top-2 (stopword overlap wins):")
    for pair in topk_join(unweighted, 2):
        x, y = unweighted[pair.x], unweighted[pair.y]
        print("  %.3f  %r <-> %r"
              % (pair.similarity, RECORDS[x.source_id], RECORDS[y.source_id]))

    # Integer-encode tokens and weight them: stopwords (and their repeat
    # occurrences like "the#1") are nearly free, content words expensive.
    vocabulary = {}
    integer_sets = []
    for tokens in token_lists:
        integer_sets.append(
            [vocabulary.setdefault(t, len(vocabulary)) for t in tokens]
        )
    weights = {
        index: (0.1 if token.split("#")[0] in STOPWORDS else 2.0)
        for token, index in vocabulary.items()
    }
    weighted = WeightedCollection.from_integer_sets(integer_sets, weights)

    print("\nWeighted Jaccard top-2 (rare shared terms win):")
    for pair in weighted_topk_join(weighted, 2):
        x, y = weighted[pair.x], weighted[pair.y]
        print("  %.3f  %r <-> %r"
              % (pair.similarity, RECORDS[x.source_id], RECORDS[y.source_id]))


if __name__ == "__main__":
    main()
