"""Quickstart: top-k set similarity join in a dozen lines.

Run:  python examples/quickstart.py
"""

from repro import RecordCollection, topk_join, topk_join_iter

TITLES = [
    "efficient similarity joins for near duplicate detection",
    "efficient similarity join for near duplicate detection",
    "top-k set similarity joins",
    "top-k set similarity join processing",
    "scaling up all pairs similarity search",
    "scaling up all pairs similarity searches",
    "a primitive operator for similarity joins in data cleaning",
    "primitive operators for similarity join in data cleaning",
    "query processing over graph structured data",
    "keyword search in relational databases",
]


def main() -> None:
    # 1. Tokenize + canonicalize: white-space tokens, ordered by rarity.
    collection = RecordCollection.from_texts(TITLES)

    # 2. The k most similar pairs — no similarity threshold to guess.
    print("Top-5 most similar title pairs (Jaccard):\n")
    for result in topk_join(collection, k=5):
        x = collection[result.x]
        y = collection[result.y]
        print("  %.3f" % result.similarity)
        print("    - %s" % TITLES[x.source_id])
        print("    - %s" % TITLES[y.source_id])

    # 3. Progressive variant: results stream out best-first; stop any time.
    print("\nProgressive output (stop after the first 2):")
    iterator = topk_join_iter(collection, k=5)
    for __, result in zip(range(2), iterator):
        print("  %.3f  (guaranteed no unseen pair is more similar)"
              % result.similarity)


if __name__ == "__main__":
    main()
