"""Matching two product catalogs with an R-S top-k join.

Data-integration scenario from the paper's introduction: records arrive
from *two* sources and the task is to link entries describing the same
entity.  A threshold join needs a threshold nobody knows; the R-S top-k
join simply returns the k best cross-source matches.

Run:  python examples/catalog_matching.py
"""

import random

from repro import TaggedCollection, topk_join_rs
from repro.data.tokenize import tokenize_words

BRANDS = ["acme", "globex", "initech", "umbrella", "stark", "wayne"]
NOUNS = ["laptop", "phone", "monitor", "keyboard", "camera", "router"]
ADJECTIVES = ["pro", "ultra", "mini", "max", "air", "plus", "lite"]


def make_catalogs(count: int, seed: int):
    """Two catalogs describing an overlapping product population.

    Catalog B renames products slightly (word order, dropped or added
    qualifiers) — the classic schema-free integration headache.
    """
    rng = random.Random(seed)
    catalog_a, catalog_b = [], []
    for index in range(count):
        brand = rng.choice(BRANDS)
        noun = rng.choice(NOUNS)
        adjective = rng.choice(ADJECTIVES)
        model = "%s%d" % (rng.choice("abcdxz"), rng.randint(100, 999))
        name_a = "%s %s %s %s" % (brand, noun, adjective, model)
        catalog_a.append(name_a)
        if rng.random() < 0.6:
            # Same product, mangled description in the other catalog.
            words = [brand, adjective, noun, model]
            if rng.random() < 0.4:
                words.append(rng.choice(["2024", "edition", "bundle"]))
            if rng.random() < 0.3:
                words.remove(adjective)
            rng.shuffle(words)
            catalog_b.append(" ".join(words))
        else:
            catalog_b.append(
                "%s %s %s %s"
                % (
                    rng.choice(BRANDS),
                    rng.choice(NOUNS),
                    rng.choice(ADJECTIVES),
                    "%s%d" % (rng.choice("abcdxz"), rng.randint(100, 999)),
                )
            )
    return catalog_a, catalog_b


def main() -> None:
    catalog_a, catalog_b = make_catalogs(150, seed=21)
    print(
        "Catalog A: %d products, catalog B: %d products"
        % (len(catalog_a), len(catalog_b))
    )

    tagged = TaggedCollection.from_token_lists(
        [tokenize_words(name) for name in catalog_a],
        [tokenize_words(name) for name in catalog_b],
    )

    k = 12
    print("\nTop-%d cross-catalog matches (Jaccard):\n" % k)
    for result in topk_join_rs(tagged, k):
        record_x = tagged.collection[result.x]
        record_y = tagged.collection[result.y]
        if tagged.side(result.x) == 0:
            name_a = catalog_a[record_x.source_id]
            name_b = catalog_b[record_y.source_id]
        else:
            name_a = catalog_a[record_y.source_id]
            name_b = catalog_b[record_x.source_id]
        print("  %.3f  %-32s <-> %s" % (result.similarity, name_a, name_b))


if __name__ == "__main__":
    main()
