"""Interactive near-duplicate detection — the paper's motivating scenario.

Section I: "it supports interactive near duplicate detection applications,
where users are presented with top-k most similar record pairs
progressively ... the execution can be stopped at any time".

This example builds a DBLP-like bibliography with injected near-duplicate
entries, then streams the most similar pairs out of ``topk_join_iter``,
reporting for each result the upper bound that *proves* nothing better
remains unseen.

Run:  python examples/near_duplicate_detection.py
"""

import time

from repro import TopkOptions, TopkStats, topk_join_iter
from repro.data import dblp_like


def main() -> None:
    print("Generating a DBLP-like bibliography (2000 records)...")
    collection = dblp_like(2000, seed=42)
    print(
        "  %d records, avg size %.1f tokens, %d distinct tokens\n"
        % (len(collection), collection.average_size, collection.universe_size)
    )

    k = 25
    stats = TopkStats()
    start = time.perf_counter()

    print("Streaming the top-%d near-duplicate pairs:\n" % k)
    print("  rank  similarity  records        elapsed   remaining-bound")
    results = topk_join_iter(
        collection, k, options=TopkOptions(), stats=stats
    )
    for rank, result in enumerate(results, start=1):
        emit = stats.emits[rank - 1]
        print(
            "  %4d      %6.3f  (%4d, %4d)  %7.3fs   %.3f"
            % (
                rank,
                result.similarity,
                result.x,
                result.y,
                emit.elapsed,
                emit.upper_bound,
            )
        )
        # An interactive user could break here: every printed pair is
        # final — no unseen pair can beat it.

    elapsed = time.perf_counter() - start
    print("\nDone in %.2fs" % elapsed)
    print("  prefix events processed : %d" % stats.events)
    print("  candidates generated    : %d" % stats.candidates)
    print("  pairs verified          : %d" % stats.verifications)
    print(
        "  verifications per record: %.2f (k = %d)"
        % (stats.verifications_per_record(len(collection)), k)
    )
    print("  index entries inserted  : %d (deleted: %d)"
          % (stats.index_inserted, stats.index_deleted))


if __name__ == "__main__":
    main()
