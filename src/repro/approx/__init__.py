"""Approximate similarity joins (MinHash + LSH) — the related-work
alternative the exact top-k join is contrasted with."""

from .lsh import LSHIndex, approximate_topk, collision_probability
from .minhash import MinHasher, estimate_jaccard

__all__ = [
    "MinHasher",
    "estimate_jaccard",
    "LSHIndex",
    "approximate_topk",
    "collision_probability",
]
