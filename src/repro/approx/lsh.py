"""Locality-sensitive hashing over MinHash signatures, and an approximate
top-k join built on it.

Signatures are cut into ``bands`` bands of ``rows`` rows; records agreeing
on all rows of any band land in the same bucket and become candidates.
The probability a pair with Jaccard *s* becomes a candidate is
``1 - (1 - s^rows)^bands`` — an S-curve whose threshold sits near
``(1/bands)^(1/rows)``.

:func:`approximate_topk` ranks LSH candidates by their *exact* similarity
(the standard sketch-then-verify recipe), so its errors are misses only:
every returned pair carries its true similarity, but pairs that never
collide in any band are lost.  The recall benchmark in
``benchmarks/test_extension_minhash.py`` quantifies that trade-off against
the exact ``topk-join``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..data.records import RecordCollection
from ..result import JoinResult, ordered_pair, sort_results
from ..similarity.functions import Jaccard, SimilarityFunction
from .minhash import MinHasher

__all__ = ["LSHIndex", "approximate_topk", "collision_probability"]


def collision_probability(similarity: float, bands: int, rows: int) -> float:
    """Probability that a pair of this similarity becomes a candidate."""
    return 1.0 - (1.0 - similarity**rows) ** bands


class LSHIndex:
    """Banded MinHash index producing candidate pairs."""

    def __init__(self, bands: int = 16, rows: int = 8, seed: int = 1) -> None:
        if bands < 1 or rows < 1:
            raise ValueError("bands and rows must be >= 1")
        self.bands = bands
        self.rows = rows
        self.hasher = MinHasher(num_hashes=bands * rows, seed=seed)
        self._buckets: List[Dict[Tuple[int, ...], List[int]]] = [
            defaultdict(list) for __ in range(bands)
        ]

    def add(self, rid: int, tokens: Tuple[int, ...]) -> None:
        """Insert a record into every band's bucket table."""
        signature = self.hasher.signature(tokens)
        for band in range(self.bands):
            key = signature[band * self.rows : (band + 1) * self.rows]
            self._buckets[band][key].append(rid)

    def candidate_pairs(self) -> Iterator[Tuple[int, int]]:
        """All distinct pairs sharing a bucket in some band."""
        seen: Set[Tuple[int, int]] = set()
        for band_buckets in self._buckets:
            for bucket in band_buckets.values():
                if len(bucket) < 2:
                    continue
                for i in range(len(bucket)):
                    for j in range(i + 1, len(bucket)):
                        pair = ordered_pair(bucket[i], bucket[j])
                        if pair not in seen:
                            seen.add(pair)
                            yield pair


def approximate_topk(
    collection: RecordCollection,
    k: int,
    bands: int = 16,
    rows: int = 8,
    seed: int = 1,
    similarity: Optional[SimilarityFunction] = None,
) -> List[JoinResult]:
    """Approximate top-k join: LSH candidates, exact-ranked.

    Returned pairs carry exact similarities, but recall is bounded by the
    LSH collision probability — high-similarity pairs are found with
    probability ``1 - (1 - s^rows)^bands``.
    """
    sim = similarity or Jaccard()
    index = LSHIndex(bands=bands, rows=rows, seed=seed)
    for record in collection:
        index.add(record.rid, record.tokens)

    results: List[JoinResult] = []
    for rid_a, rid_b in index.candidate_pairs():
        value = sim.similarity(
            collection[rid_a].tokens, collection[rid_b].tokens
        )
        results.append(JoinResult(rid_a, rid_b, value))
    return sort_results(results)[:k]
