"""MinHash signatures for Jaccard similarity estimation.

The paper's related work (Section VIII) contrasts exact prefix-filtering
joins with *approximate* techniques — shingle sketches (Broder et al.) and
locality-sensitive hashing (Gionis et al.).  This subpackage implements
that alternative so the exact top-k join can be compared against the
approximate state of the art on the same substrate.

A MinHash signature applies ``num_hashes`` independent universal hash
functions ``h(x) = (a·x + b) mod p`` to every token of a record and keeps
each function's minimum.  For two sets, ``P[min-hash collides] = J(x, y)``,
so the fraction of agreeing signature positions is an unbiased estimator
of their Jaccard similarity.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = ["MinHasher", "estimate_jaccard"]

#: A Mersenne prime comfortably above any token rank.
_PRIME = (1 << 61) - 1


class MinHasher:
    """A family of ``num_hashes`` universal hash functions."""

    def __init__(self, num_hashes: int = 128, seed: int = 1) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1, got %d" % num_hashes)
        self.num_hashes = num_hashes
        rng = random.Random(seed)
        self._coefficients: List[Tuple[int, int]] = [
            (rng.randrange(1, _PRIME), rng.randrange(_PRIME))
            for __ in range(num_hashes)
        ]

    def signature(self, tokens: Sequence[int]) -> Tuple[int, ...]:
        """The MinHash signature of a non-empty token set."""
        if not tokens:
            raise ValueError("cannot sign an empty record")
        out = []
        for a, b in self._coefficients:
            out.append(min((a * token + b) % _PRIME for token in tokens))
        return tuple(out)


def estimate_jaccard(
    signature_x: Sequence[int], signature_y: Sequence[int]
) -> float:
    """Estimate ``J(x, y)`` as the fraction of agreeing positions."""
    if len(signature_x) != len(signature_y):
        raise ValueError("signatures must have equal length")
    if not signature_x:
        return 0.0
    matches = sum(1 for a, b in zip(signature_x, signature_y) if a == b)
    return matches / len(signature_x)
