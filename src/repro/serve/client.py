"""Test-harness clients: a scripted socket client and a daemon-in-a-thread.

:class:`ServeClient` is a deliberately boring synchronous client: one
blocking socket, newline-delimited JSON, auto-incrementing request ids.
Push frames (delta notifications, the shutdown event) that arrive while
waiting for a reply are buffered on :attr:`ServeClient.pushes` in arrival
order, so a test can drive request/reply traffic and still assert on the
exact subscription stream afterwards.

:class:`InProcessDaemon` runs a real :class:`TopkServer` — real sockets,
real event loop — on a background thread inside the test process, so the
end-to-end suite needs no subprocess management and the differential
oracle can stand a daemon up per case in milliseconds.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from ..stream.engine import StreamingTopkEngine
from .server import ServeOptions, TopkServer

__all__ = ["InProcessDaemon", "ServeClient"]


class ServeClient:
    """A synchronous scripted client for one daemon connection."""

    def __init__(
        self, host: str, port: int, timeout: float = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        #: Push frames received while waiting for replies, in order.
        self.pushes: List[Dict[str, Any]] = []

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (fault-injection tests build broken frames)."""
        self._sock.sendall(data)

    def read_frame(self) -> Dict[str, Any]:
        """The next frame from the daemon (blocking; raises on EOF)."""
        line = self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        payload = json.loads(line.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("daemon sent a non-object frame: %r" % line)
        return payload

    def request(self, verb: str, **fields: object) -> Dict[str, Any]:
        """Send one request and block for *its* reply.

        Frames without a matching ``id`` (pushes, or replies to earlier
        pipelined requests read late) are appended to :attr:`pushes`.
        """
        self._next_id += 1
        rid = self._next_id
        payload: Dict[str, object] = {"verb": verb, "id": rid}
        payload.update(fields)
        self.send_raw(
            json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        while True:
            frame = self.read_frame()
            if frame.get("id") == rid:
                return frame
            self.pushes.append(frame)

    def drain_until_eof(self, limit: int = 100000) -> List[Dict[str, Any]]:
        """Read frames into :attr:`pushes` until the daemon closes.

        Returns the full push list.  Used by shutdown tests: subscribe,
        then drain — the flushed deltas and the ``shutdown`` event land
        here, terminated by a clean EOF.
        """
        for _ in range(limit):
            try:
                self.pushes.append(self.read_frame())
            except (ConnectionError, ValueError, OSError):
                break
        return self.pushes


class InProcessDaemon:
    """A real daemon on a background thread, for tests and the oracle.

    ``engine_factory`` builds the (unopened) engine *inside* the daemon
    thread's event loop; the server opens and closes it.  Use as a
    context manager::

        with InProcessDaemon(make_engine, options) as (host, port):
            with ServeClient(host, port) as client:
                client.request("insert", tokens=[1, 2, 3])
    """

    def __init__(
        self,
        engine_factory: Callable[[], StreamingTopkEngine],
        options: Optional[ServeOptions] = None,
    ) -> None:
        self._engine_factory = engine_factory
        self._options = options or ServeOptions()
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._address: Optional[Tuple[str, int]] = None
        self._failure: Optional[BaseException] = None
        self.server: Optional[TopkServer] = None

    def start(self) -> Tuple[str, int]:
        """Start the daemon thread; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-daemon", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("daemon thread did not start within 30s")
        if self._failure is not None:
            raise RuntimeError(
                "daemon failed to start: %r" % self._failure
            ) from self._failure
        assert self._address is not None
        return self._address

    def stop(self) -> None:
        """Graceful shutdown (drain, flush, close engine) and join."""
        thread = self._thread
        if thread is None:
            return
        loop = self._loop
        stop_event = self._stop_event
        if loop is not None and stop_event is not None and thread.is_alive():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # the loop already closed on its own
        thread.join(timeout=30.0)
        if thread.is_alive():  # pragma: no cover - diagnostic dead end
            raise RuntimeError("daemon thread did not stop within 30s")
        self._thread = None
        if self._failure is not None:
            raise RuntimeError(
                "daemon died: %r" % self._failure
            ) from self._failure

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as failure:  # noqa: BLE001 — reported to caller
            self._failure = failure
        finally:
            self._started.set()  # unblock start() even on early death

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = TopkServer(self._engine_factory(), self._options)
        await server.start()
        self.server = server
        self._address = server.address
        self._started.set()
        try:
            stopper = asyncio.create_task(self._stop_event.wait())
            closer = asyncio.create_task(server.wait_closed())
            done, pending = await asyncio.wait(
                {stopper, closer}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            del done
        finally:
            await server.shutdown()
