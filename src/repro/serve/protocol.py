"""Wire protocol of the ``repro serve`` daemon.

Newline-delimited JSON: every request is one JSON object on one line,
every reply is one JSON object on one line.  The encoding is pinned —
compact separators, sorted keys, ``ensure_ascii`` — so a reply is a
*byte-deterministic* function of its payload.  That determinism is
load-bearing: the daemon differential backend asserts that a scripted
client session produces **byte-identical** delta lines to an in-process
engine replay, and both sides serialize through :func:`delta_line`.

Requests carry a ``verb`` plus an optional client-chosen ``id`` (echoed
verbatim in the reply, so clients may pipeline).  Malformed frames never
raise out of :func:`parse_request` with anything but
:class:`ProtocolError`, which the server turns into a structured error
reply — a junk line costs one error frame, not the daemon.

The same port also answers plain ``GET /metrics`` HTTP requests (the
Prometheus scrape path); :func:`looks_like_http` spots those by their
first bytes and :func:`http_response` renders a minimal HTTP/1.0 reply.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..stream.engine import StreamDelta
from ..stream.events import StreamEvent

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "VERBS",
    "ProtocolError",
    "Request",
    "delta_line",
    "delta_payload",
    "encode",
    "error_payload",
    "http_request_path",
    "http_response",
    "looks_like_http",
    "ok_payload",
    "parse_request",
]

#: Accepted request verbs.
VERBS = (
    "ping",
    "insert",
    "expire",
    "advance",
    "query",
    "subscribe",
    "unsubscribe",
    "stats",
    "metrics",
    "shutdown",
)

#: Structured error codes a reply's ``error.code`` may carry.
ERROR_CODES = (
    "parse-error",
    "bad-request",
    "unknown-verb",
    "frame-too-large",
    "overloaded",
    "forbidden",
    "shutting-down",
    "idle-timeout",
    "read-timeout",
    "internal-error",
)

#: Default per-frame size cap (bytes, including the newline).
MAX_FRAME_BYTES = 1 << 20

RequestId = Optional[Union[int, str]]


class ProtocolError(Exception):
    """A frame that cannot become a valid :class:`Request`.

    ``code`` is one of :data:`ERROR_CODES`; ``request_id`` is the
    client's ``id`` when it could still be extracted from the broken
    frame (so even an error reply correlates where possible).
    """

    def __init__(
        self, code: str, message: str, request_id: RequestId = None
    ) -> None:
        super().__init__(message)
        if code not in ERROR_CODES:
            raise ValueError("unknown protocol error code %r" % code)
        self.code = code
        self.request_id = request_id


@dataclass(frozen=True)
class Request:
    """One parsed client request."""

    verb: str
    id: RequestId = None
    #: ``insert`` payload.
    tokens: Tuple[int, ...] = ()
    #: ``expire`` count or ``advance`` amount.
    amount: float = 1.0

    def event(self) -> StreamEvent:
        """The engine event of an ``insert``/``expire``/``advance``."""
        if self.verb == "insert":
            return StreamEvent.insert(self.tokens)
        if self.verb == "expire":
            return StreamEvent.expire(int(self.amount))
        if self.verb == "advance":
            return StreamEvent.advance(self.amount)
        raise ValueError("verb %r carries no stream event" % self.verb)


def _extract_id(payload: Mapping[str, object]) -> RequestId:
    """The ``id`` field when it is a legal correlation id, else ``None``."""
    raw = payload.get("id")
    if isinstance(raw, bool):
        return None
    if isinstance(raw, (int, str)):
        return raw
    return None


def _require_number(
    payload: Mapping[str, object],
    key: str,
    request_id: RequestId,
    default: Optional[float] = None,
) -> float:
    raw = payload.get(key, default)
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ProtocolError(
            "bad-request",
            "%r must be a number, got %r" % (key, raw),
            request_id,
        )
    value = float(raw)
    if value != value or value in (float("inf"), float("-inf")):
        raise ProtocolError(
            "bad-request", "%r must be finite, got %r" % (key, raw), request_id
        )
    return value


def parse_request(frame: Union[str, bytes]) -> Request:
    """Parse one frame into a :class:`Request`.

    Raises :class:`ProtocolError` — never anything else — on junk:
    invalid JSON, a non-object document, a missing/unknown verb, or a
    payload of the wrong shape.  The error carries the client's ``id``
    whenever the broken frame still had a usable one.
    """
    if isinstance(frame, bytes):
        try:
            text = frame.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(
                "parse-error", "frame is not valid UTF-8: %s" % error
            ) from error
    else:
        text = frame
    try:
        payload = json.loads(text)
    except ValueError as error:
        raise ProtocolError(
            "parse-error", "frame is not valid JSON: %s" % error
        ) from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request",
            "frame must be a JSON object, got %s" % type(payload).__name__,
        )
    if "id" in payload:
        raw_id = payload["id"]
        if isinstance(raw_id, bool) or not isinstance(raw_id, (int, str)):
            raise ProtocolError(
                "bad-request",
                "'id' must be an integer or a string, got %r" % (raw_id,),
            )
    request_id = _extract_id(payload)
    verb = payload.get("verb")
    if not isinstance(verb, str):
        raise ProtocolError(
            "bad-request", "request has no string 'verb' field", request_id
        )
    if verb not in VERBS:
        raise ProtocolError(
            "unknown-verb",
            "unknown verb %r (choose from %s)" % (verb, ", ".join(VERBS)),
            request_id,
        )
    if verb == "insert":
        raw_tokens = payload.get("tokens", [])
        if not isinstance(raw_tokens, list):
            raise ProtocolError(
                "bad-request",
                "'tokens' must be a list of integers, got %r" % (raw_tokens,),
                request_id,
            )
        tokens: List[int] = []
        for item in raw_tokens:
            if isinstance(item, bool) or not isinstance(item, int):
                raise ProtocolError(
                    "bad-request",
                    "'tokens' must hold integers, got %r" % (item,),
                    request_id,
                )
            if item < 0:
                raise ProtocolError(
                    "bad-request",
                    "'tokens' must be non-negative, got %d" % item,
                    request_id,
                )
            tokens.append(item)
        return Request("insert", request_id, tokens=tuple(tokens))
    if verb == "expire":
        count = _require_number(payload, "count", request_id, default=1.0)
        if count != int(count) or count < 1:
            raise ProtocolError(
                "bad-request",
                "'count' must be an integer >= 1, got %r" % count,
                request_id,
            )
        return Request("expire", request_id, amount=count)
    if verb == "advance":
        if "amount" not in payload:
            raise ProtocolError(
                "bad-request", "'advance' requires an 'amount'", request_id
            )
        amount = _require_number(payload, "amount", request_id)
        if amount < 0:
            raise ProtocolError(
                "bad-request",
                "'amount' must be >= 0, got %r" % amount,
                request_id,
            )
        return Request("advance", request_id, amount=amount)
    return Request(verb, request_id)


# ----------------------------------------------------------------------
# Reply encoding — byte-deterministic by construction
# ----------------------------------------------------------------------


def encode(payload: Mapping[str, object]) -> bytes:
    """One reply frame: compact sorted-key JSON plus the newline."""
    text = json.dumps(
        payload, separators=(",", ":"), sort_keys=True, ensure_ascii=True
    )
    return text.encode("utf-8") + b"\n"


def delta_payload(delta: StreamDelta) -> Dict[str, object]:
    """The JSON object form of one :class:`StreamDelta`."""
    return {
        "action": delta.action,
        "x": delta.x,
        "y": delta.y,
        "similarity": delta.similarity,
    }


def delta_line(delta: StreamDelta) -> bytes:
    """The canonical byte form of one delta.

    Both sides of the daemon differential use this: the oracle replay
    serializes the in-process engine's deltas with it, and the scripted
    client re-encodes the daemon's parsed delta objects with
    :func:`encode` — JSON floats round-trip exactly (``repr`` shortest
    form), so equal deltas produce equal bytes.
    """
    return encode(delta_payload(delta))


def ok_payload(
    request_id: RequestId, **fields: object
) -> Dict[str, object]:
    """A success reply body (callers :func:`encode` it)."""
    payload: Dict[str, object] = {"ok": True, "id": request_id}
    payload.update(fields)
    return payload


def error_payload(
    request_id: RequestId, code: str, message: str
) -> Dict[str, object]:
    """A structured error reply body."""
    if code not in ERROR_CODES:
        raise ValueError("unknown protocol error code %r" % code)
    return {
        "ok": False,
        "id": request_id,
        "error": {"code": code, "message": message},
    }


# ----------------------------------------------------------------------
# The HTTP scrape path
# ----------------------------------------------------------------------


def looks_like_http(first_bytes: bytes) -> bool:
    """Whether a connection opened with an HTTP request line."""
    return first_bytes.startswith((b"GET ", b"HEAD "))


def http_request_path(request_line: bytes) -> str:
    """The target path of an HTTP request line (empty when unparseable)."""
    parts = request_line.split()
    if len(parts) < 2:
        return ""
    try:
        return parts[1].decode("ascii")
    except UnicodeDecodeError:
        return ""


def http_response(status: int, reason: str, body: str) -> bytes:
    """A minimal ``HTTP/1.0`` response with a text body."""
    encoded = body.encode("utf-8")
    head = (
        "HTTP/1.0 %d %s\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: %d\r\n"
        "Connection: close\r\n"
        "\r\n" % (status, reason, len(encoded))
    )
    return head.encode("ascii") + encoded
