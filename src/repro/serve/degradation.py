"""Backpressure and load shedding for the ingestion queue.

The daemon owns exactly one mutable :class:`StreamingTopkEngine`, fed by
a single writer task draining a bounded queue.  When producers outrun
the writer the queue fills, and the :class:`IngestionGate` applies the
configured degradation policy to each overflowing event:

``reject``
    The event is refused with a structured ``overloaded`` error reply —
    the client knows its event was **not** applied and may retry.  This
    is the default: the window stays exact with respect to everything
    the daemon acknowledged.

``shed``
    The event is dropped (tail drop) but acknowledged with
    ``{"ok": true, "shed": true}`` — ingestion keeps flowing at the
    cost of holes in the stream.  Shed events are counted and exposed
    as ``repro_serve_shed_total``; the window stays exact for the
    *accepted* subsequence (the soak test proves this by replaying the
    accepted events through a fresh in-process engine).

Either way the bound is honest: the queue never holds more than
``queue_limit`` pending events, so daemon memory and worst-case drain
latency stay proportional to a CLI flag, not to client enthusiasm.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.metrics import ServeStats
from .protocol import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import Session

__all__ = [
    "ACCEPTED",
    "DEGRADATION_POLICIES",
    "REJECTED",
    "SHED",
    "IngestionGate",
    "QueuedEvent",
    "validate_gate",
]

#: Verdicts of :meth:`IngestionGate.offer`.
ACCEPTED = "accepted"
REJECTED = "rejected"
SHED = "shed"

#: Accepted ``--degradation`` policies.
DEGRADATION_POLICIES = ("reject", "shed")


def validate_gate(queue_limit: int, policy: str) -> None:
    """Raise ``ValueError`` for an illegal limit/policy combination.

    Separate from :class:`IngestionGate` so configuration can fail fast
    in synchronous context — the gate itself must be constructed on the
    event loop (its ``asyncio.Queue`` binds the running loop on 3.9).
    """
    if queue_limit < 1:
        raise ValueError("queue limit must be >= 1, got %d" % queue_limit)
    if policy not in DEGRADATION_POLICIES:
        raise ValueError(
            "unknown degradation policy %r (choose from %s)"
            % (policy, ", ".join(DEGRADATION_POLICIES))
        )


@dataclass
class QueuedEvent:
    """One accepted ingestion request awaiting the writer task.

    ``session`` is ``None`` when the originating connection is already
    gone — the writer still applies the event (it was acknowledged as
    accepted) and simply drops the reply.
    """

    request: Request
    session: Optional["Session"]
    #: ``perf_counter`` at enqueue, for the request latency histogram.
    received: float


class IngestionGate:
    """The bounded ingestion queue plus its degradation policy.

    The queue object itself is unbounded and the limit is enforced in
    :meth:`offer` — that way :meth:`close` can always enqueue its
    sentinel (a ``None``) even when the queue is full, so the writer's
    drain loop terminates deterministically during graceful shutdown.
    """

    def __init__(
        self, queue_limit: int, policy: str, stats: ServeStats
    ) -> None:
        validate_gate(queue_limit, policy)
        self.policy = policy
        self.queue_limit = queue_limit
        self._stats = stats
        self._queue: "asyncio.Queue[Optional[QueuedEvent]]" = asyncio.Queue()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        """Events currently pending (the sentinel does not count)."""
        pending = self._queue.qsize()
        if self._closed and pending > 0:
            pending -= 1
        return max(0, pending)

    def offer(self, item: QueuedEvent) -> str:
        """Admit, reject, or shed one event; returns the verdict.

        Synchronous by design: the session task calls this inline while
        parsing frames, so admission control never awaits and the
        bounded-queue check cannot race another reader.
        """
        if self._closed:
            self._stats.rejected += 1
            return REJECTED
        if self._queue.qsize() >= self.queue_limit:
            if self.policy == "shed":
                self._stats.shed += 1
                return SHED
            self._stats.rejected += 1
            return REJECTED
        self._queue.put_nowait(item)
        self._stats.accepted += 1
        depth = self._queue.qsize()
        if depth > self._stats.queue_peak:
            self._stats.queue_peak = depth
        return ACCEPTED

    def close(self) -> None:
        """Refuse further events and wake the writer with the sentinel."""
        if self._closed:
            return
        self._closed = True
        self._queue.put_nowait(None)

    async def next_event(self) -> Optional[QueuedEvent]:
        """The next accepted event, or ``None`` once closed and drained."""
        return await self._queue.get()
