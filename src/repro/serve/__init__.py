"""``repro serve`` — the async streaming top-k daemon.

The sliding-window engine (:mod:`repro.stream`) computes the live top-k
join over an event stream; this package puts a network front on it.  One
asyncio daemon owns one engine behind a single writer task fed by a
bounded ingestion queue, speaks a newline-delimited JSON protocol
(``insert``/``expire``/``advance``/``query``/``subscribe``/``stats``/
``metrics``/``shutdown``), pushes ``enter``/``leave`` delta
notifications to subscribers, and answers plain HTTP ``GET /metrics``
on the same port with a live Prometheus exposition.

Under overload the bounded queue applies a declared degradation policy
(``reject`` or ``shed``, see :mod:`repro.serve.degradation`); under
abuse the framing layer answers with structured errors and timeouts
rather than dying (see :mod:`repro.serve.protocol` and
:mod:`repro.serve.session`); under SIGTERM the daemon drains accepted
events, flushes subscriber deltas, and closes the engine cleanly.

Start one from the command line::

    repro serve --port 7777 --k 10 --window 500 &
    curl -s http://127.0.0.1:7777/metrics | grep repro_serve

or in-process for tests (:class:`~repro.serve.client.InProcessDaemon`).
``docs/SERVING.md`` specifies the protocol and the degradation policy;
the end-to-end harness proves the daemon's delta stream byte-identical
to an in-process engine replay.
"""

from .client import InProcessDaemon, ServeClient
from .degradation import (
    ACCEPTED,
    DEGRADATION_POLICIES,
    REJECTED,
    SHED,
    IngestionGate,
    QueuedEvent,
    validate_gate,
)
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    VERBS,
    ProtocolError,
    Request,
    delta_line,
    delta_payload,
    encode,
    error_payload,
    http_request_path,
    http_response,
    looks_like_http,
    ok_payload,
    parse_request,
)
from .server import ServeOptions, TopkServer, open_servers
from .session import (
    FrameReader,
    FrameTooLarge,
    IdleTimeout,
    ReadStalled,
    Session,
    TruncatedFrame,
)

__all__ = [
    "ACCEPTED",
    "DEGRADATION_POLICIES",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "REJECTED",
    "SHED",
    "VERBS",
    "FrameReader",
    "FrameTooLarge",
    "IdleTimeout",
    "IngestionGate",
    "InProcessDaemon",
    "ProtocolError",
    "QueuedEvent",
    "ReadStalled",
    "Request",
    "ServeClient",
    "ServeOptions",
    "Session",
    "TopkServer",
    "TruncatedFrame",
    "delta_line",
    "delta_payload",
    "encode",
    "error_payload",
    "http_request_path",
    "http_response",
    "looks_like_http",
    "ok_payload",
    "open_servers",
    "parse_request",
    "validate_gate",
]
