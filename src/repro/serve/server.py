"""The asyncio top-k daemon: one engine, one writer task, many clients.

Concurrency model — the whole design in four sentences.  The daemon
owns exactly one mutable :class:`StreamingTopkEngine`; only the **writer
task** ever calls ``engine.apply``, so engine state needs no locks.
Session tasks parse frames and either answer read-only verbs inline
(safe: asyncio interleaves tasks only at ``await`` points, and the
read-only dispatch path contains none) or push mutating events through
the bounded :class:`IngestionGate`, where the ``reject``/``shed``
degradation policy applies when producers outrun the writer.  Replies
and push notifications go through per-session bounded outboxes drained
by sender tasks, so one slow reader never blocks the event loop.
Graceful shutdown is drain-then-close: stop accepting, seal the queue,
let the writer finish every accepted event (whose deltas broadcast to
subscriber outboxes), send the ``shutdown`` event frame, flush every
outbox, then close the engine.

The same port speaks two dialects: newline-delimited JSON (the
protocol) and plain HTTP ``GET /metrics`` (the Prometheus scrape path),
distinguished by a connection's first frame.

Every server registers itself in a module-level live table for the
duration of ``start()``..``shutdown()``; :func:`open_servers` exposes it
so the test suite's autouse teardown can prove no daemon, session task
or listening socket outlived its test.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.engine import EngineStateError
from ..core.metrics import ServeStats
from ..obs.exporters import to_prometheus_text
from ..obs.metrics import SERVE_LATENCY_BUCKETS, Histogram
from ..obs.tracer import Tracer
from ..stream.engine import StreamDelta, StreamingTopkEngine
from .degradation import (
    ACCEPTED,
    REJECTED,
    SHED,
    IngestionGate,
    QueuedEvent,
    validate_gate,
)
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    delta_payload,
    encode,
    error_payload,
    http_request_path,
    http_response,
    looks_like_http,
    ok_payload,
    parse_request,
)
from .session import (
    FrameReader,
    FrameTooLarge,
    IdleTimeout,
    ReadStalled,
    Session,
    TruncatedFrame,
)

__all__ = ["ServeOptions", "TopkServer", "open_servers"]

#: Servers currently between ``start()`` and completed ``shutdown()``.
_LIVE: Dict[int, "TopkServer"] = {}


def open_servers() -> List[str]:
    """``host:port`` of every daemon not yet fully shut down.

    The autouse test fixture asserts this is empty after every test —
    a daemon that outlives its test holds a listening socket, session
    tasks and an open engine, exactly the leak class this surfaces.
    """
    return sorted("%s:%d" % server.address for server in _LIVE.values())


@dataclass(frozen=True)
class ServeOptions:
    """Daemon configuration (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (reported by ``address``).
    port: int = 0
    #: Bounded ingestion queue depth.
    queue_limit: int = 256
    #: ``"reject"`` or ``"shed"`` (see :mod:`repro.serve.degradation`).
    degradation: str = "reject"
    #: Seconds a peer may stall mid-frame before eviction (0 disables).
    read_timeout: float = 30.0
    #: Seconds an unsubscribed peer may idle between frames (0 disables).
    idle_timeout: float = 300.0
    #: Per-frame byte cap.
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Per-session outbox depth (overflow evicts the subscriber).
    outbox_limit: int = 1024
    #: Artificial per-event writer delay in seconds — a test/chaos knob
    #: that makes backpressure deterministic (0 in production).
    ingest_delay: float = 0.0
    #: Whether the ``shutdown`` verb is honored (fuzz daemons refuse it).
    allow_remote_shutdown: bool = True


class TopkServer:
    """One streaming top-k daemon around one engine.

    Construct with an **unopened** engine, ``await start()``, and the
    daemon serves until ``await shutdown()`` (or the process stops it
    via SIGTERM -> ``request_shutdown``).  All methods must be called on
    the event loop that ran ``start()``.
    """

    def __init__(
        self,
        engine: StreamingTopkEngine,
        options: Optional[ServeOptions] = None,
    ) -> None:
        opts = options or ServeOptions()
        # Validate eagerly (the gate itself is built on the loop in
        # start(); a bad flag should fail before any socket binds).
        validate_gate(opts.queue_limit, opts.degradation)
        self._engine = engine
        self._options = opts
        self.stats = ServeStats()
        self._latency = Histogram(
            name="repro_serve_request_latency_seconds",
            help="Seconds from ingestion-queue admission to applied.",
            edges=SERVE_LATENCY_BUCKETS,
        )
        self._gate: Optional[IngestionGate] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writer_task: Optional["asyncio.Task[None]"] = None
        self._shutdown_task: Optional["asyncio.Task[None]"] = None
        self._session_tasks: "Set[asyncio.Task[None]]" = set()
        self._sessions: Dict[int, Session] = {}
        self._subscribers: Set[int] = set()
        self._unsubscribe: Optional[Callable[[], None]] = None
        self._closed_event: Optional[asyncio.Event] = None
        self._next_sid = 0
        self._seq = 0
        self._closing = False
        self._unhandled: List[str] = []
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after ``start()``)."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    async def start(self) -> None:
        """Open the engine, bind the socket, start the writer task."""
        if self._server is not None:
            raise RuntimeError("server already started")
        opts = self._options
        self._closed_event = asyncio.Event()
        self._gate = IngestionGate(
            opts.queue_limit, opts.degradation, self.stats
        )
        self._engine.open()
        self._unsubscribe = self._engine.subscribe(self._broadcast)
        self._server = await asyncio.start_server(
            self._on_connection, opts.host, opts.port
        )
        sockets = self._server.sockets or []
        name = sockets[0].getsockname()
        self._address = (str(name[0]), int(name[1]))
        self._writer_task = asyncio.create_task(self._writer_loop())
        _LIVE[id(self)] = self

    def request_shutdown(self) -> None:
        """Begin graceful shutdown from sync context (signal handlers)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self.shutdown())

    async def wait_closed(self) -> None:
        """Block until a shutdown (from any trigger) completed."""
        if self._closed_event is None:
            raise RuntimeError("server not started")
        await self._closed_event.wait()

    async def shutdown(self) -> None:
        """Drain-then-close graceful shutdown (idempotent).

        Order matters: (1) stop accepting connections; (2) seal the
        ingestion queue and let the writer apply every event already
        accepted — their deltas broadcast into subscriber outboxes;
        (3) append the ``shutdown`` event frame and close every outbox;
        (4) cancel the session read loops and wait for each sender to
        flush its backlog onto the socket; (5) close the engine and
        leave the live table.  Accepted events are therefore never
        dropped, and subscribers see every pending delta before EOF.
        """
        if self._closing:
            await self.wait_closed()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._gate is not None:
            self._gate.close()
        if self._writer_task is not None:
            await self._writer_task
        farewell = encode({"event": "shutdown", "seq": self._seq})
        for session in list(self._sessions.values()):
            if session.sid in self._subscribers:
                session.send(farewell)
            session.closing = True
            session.close_outbox()
        for task in list(self._session_tasks):
            task.cancel()
        if self._session_tasks:
            await asyncio.gather(
                *list(self._session_tasks), return_exceptions=True
            )
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._engine.close()
        _LIVE.pop(id(self), None)
        if self._closed_event is not None:
            self._closed_event.set()

    def drain_unhandled(self) -> List[str]:
        """Unexpected exceptions caught since the last drain.

        The fault-injection harness polls this after every adversarial
        session: the daemon surviving is necessary but not sufficient —
        a swallowed crash is still a finding.
        """
        found = list(self._unhandled)
        del self._unhandled[: len(found)]
        return found

    def _record_unhandled(self, where: str, crash: BaseException) -> None:
        self._unhandled.append(
            "%s: %s: %s" % (where, type(crash).__name__, crash)
        )

    # ------------------------------------------------------------------
    # The writer task — sole owner of engine mutation
    # ------------------------------------------------------------------

    async def _writer_loop(self) -> None:
        gate = self._gate
        assert gate is not None
        delay = self._options.ingest_delay
        while True:
            item = await gate.next_event()
            if item is None:
                break
            self._apply_event(item)
            if delay > 0:
                await asyncio.sleep(delay)

    def _apply_event(self, item: QueuedEvent) -> None:
        request = item.request
        session = item.session
        try:
            deltas = self._engine.apply(request.event())
        except (ValueError, EngineStateError) as error:
            self.stats.errors += 1
            if session is not None:
                session.send(
                    encode(
                        error_payload(request.id, "bad-request", str(error))
                    )
                )
            return
        except Exception as crash:  # noqa: BLE001 — daemon must survive
            self._record_unhandled("writer", crash)
            self.stats.errors += 1
            if session is not None:
                session.send(
                    encode(
                        error_payload(
                            request.id, "internal-error", str(crash)
                        )
                    )
                )
            return
        self._latency.observe(time.perf_counter() - item.received)
        if session is not None:
            session.send(
                encode(
                    ok_payload(
                        request.id,
                        shed=False,
                        deltas=[delta_payload(d) for d in deltas],
                        s_k=self._engine.s_k,
                        window=self._engine.window_live,
                    )
                )
            )

    def _broadcast(self, deltas: List[StreamDelta]) -> None:
        """Engine delta hook: fan each delta out to subscriber outboxes."""
        if not self._subscribers:
            self._seq += len(deltas)
            return
        lines: List[bytes] = []
        for delta in deltas:
            self._seq += 1
            payload: Dict[str, object] = {"event": "delta", "seq": self._seq}
            payload.update(delta_payload(delta))
            lines.append(encode(payload))
        for sid in sorted(self._subscribers):
            session = self._sessions.get(sid)
            if session is None:
                self._subscribers.discard(sid)
                continue
            for line in lines:
                if session.send(line):
                    self.stats.deltas_pushed += 1
                else:
                    # The subscriber reads slower than the stream moves;
                    # evict instead of buffering without bound.
                    self._subscribers.discard(sid)
                    session.subscribed = False
                    self.stats.subscriber_evictions += 1
                    break

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._session_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass  # shutdown cancelled the read loop; teardown already ran
        except Exception as crash:  # noqa: BLE001 — daemon must survive
            self._record_unhandled("connection", crash)
        finally:
            if task is not None:
                self._session_tasks.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        opts = self._options
        self.stats.connections += 1
        self._next_sid += 1
        session = Session(self._next_sid, writer, opts.outbox_limit)
        frames = FrameReader(
            reader, opts.max_frame_bytes, opts.read_timeout, opts.idle_timeout
        )
        self._sessions[session.sid] = session
        sender = asyncio.create_task(session.sender_loop())
        try:
            await self._session_loop(session, frames)
        except Exception as crash:  # noqa: BLE001 — daemon must survive
            self._record_unhandled("session", crash)
        finally:
            self._sessions.pop(session.sid, None)
            self._subscribers.discard(session.sid)
            session.close_outbox()
            try:
                await asyncio.wait_for(sender, timeout=2.0)
            except asyncio.TimeoutError:
                pass  # wait_for cancelled the stuck sender for us
            except Exception as crash:  # noqa: BLE001 — daemon must survive
                self._record_unhandled("sender", crash)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _session_loop(
        self, session: Session, frames: FrameReader
    ) -> None:
        while not session.closing:
            try:
                frame = await frames.next_frame(idle_exempt=session.subscribed)
            except FrameTooLarge as error:
                self.stats.requests += 1
                self.stats.oversized += 1
                self.stats.errors += 1
                session.send(
                    encode(error_payload(None, "frame-too-large", str(error)))
                )
                return
            except ReadStalled as error:
                self.stats.read_timeouts += 1
                self.stats.errors += 1
                session.send(
                    encode(error_payload(None, "read-timeout", str(error)))
                )
                return
            except IdleTimeout as error:
                self.stats.idle_evictions += 1
                self.stats.errors += 1
                session.send(
                    encode(error_payload(None, "idle-timeout", str(error)))
                )
                return
            except TruncatedFrame:
                return  # the peer vanished mid-frame
            except (ConnectionError, OSError):
                return
            if frame is None:
                return  # clean EOF
            if not frame.strip():
                continue  # blank lines are a keepalive no-op
            if not session.saw_frame and looks_like_http(frame):
                await self._serve_http(session, frames, frame)
                return
            session.saw_frame = True
            self.stats.requests += 1
            try:
                request = parse_request(frame)
            except ProtocolError as error:
                self.stats.malformed += 1
                self.stats.errors += 1
                session.send(
                    encode(
                        error_payload(error.request_id, error.code, str(error))
                    )
                )
                continue
            self._dispatch(session, request)

    # ------------------------------------------------------------------
    # Dispatch (session task; read-only or enqueue, never engine writes)
    # ------------------------------------------------------------------

    def _dispatch(self, session: Session, request: Request) -> None:
        verb = request.verb
        if verb in ("insert", "expire", "advance"):
            self._ingest(session, request)
            return
        if verb == "ping":
            session.send(encode(ok_payload(request.id, pong=True)))
            return
        if verb == "query":
            rows = [
                [r.x, r.y, r.similarity] for r in self._engine.results()
            ]
            session.send(
                encode(
                    ok_payload(
                        request.id,
                        results=rows,
                        s_k=self._engine.s_k,
                        window=self._engine.window_live,
                        seq=self._seq,
                    )
                )
            )
            return
        if verb == "subscribe":
            self._subscribers.add(session.sid)
            session.subscribed = True
            if len(self._subscribers) > self.stats.subscribers_peak:
                self.stats.subscribers_peak = len(self._subscribers)
            session.send(
                encode(
                    ok_payload(request.id, subscribed=True, seq=self._seq)
                )
            )
            return
        if verb == "unsubscribe":
            self._subscribers.discard(session.sid)
            session.subscribed = False
            session.send(
                encode(ok_payload(request.id, subscribed=False, seq=self._seq))
            )
            return
        if verb == "stats":
            session.send(
                encode(ok_payload(request.id, stats=self.stats_payload()))
            )
            return
        if verb == "metrics":
            session.send(
                encode(ok_payload(request.id, text=self.metrics_text()))
            )
            return
        if verb == "shutdown":
            if not self._options.allow_remote_shutdown:
                self.stats.errors += 1
                session.send(
                    encode(
                        error_payload(
                            request.id,
                            "forbidden",
                            "this daemon refuses remote shutdown",
                        )
                    )
                )
                return
            session.send(encode(ok_payload(request.id, stopping=True)))
            self.request_shutdown()
            return
        raise AssertionError("unhandled verb %r" % verb)  # pragma: no cover

    def _ingest(self, session: Session, request: Request) -> None:
        gate = self._gate
        assert gate is not None
        if self._closing or gate.closed:
            self.stats.rejected += 1
            self.stats.errors += 1
            session.send(
                encode(
                    error_payload(
                        request.id,
                        "shutting-down",
                        "the daemon is draining; event refused",
                    )
                )
            )
            return
        verdict = gate.offer(
            QueuedEvent(request, session, time.perf_counter())
        )
        if verdict == ACCEPTED:
            return  # the writer task replies once the event applied
        if verdict == SHED:
            session.send(
                encode(ok_payload(request.id, shed=True, deltas=[]))
            )
            return
        assert verdict == REJECTED
        self.stats.errors += 1
        session.send(
            encode(
                error_payload(
                    request.id,
                    "overloaded",
                    "ingestion queue full (limit %d); event refused"
                    % gate.queue_limit,
                )
            )
        )

    # ------------------------------------------------------------------
    # The HTTP scrape path
    # ------------------------------------------------------------------

    async def _serve_http(
        self, session: Session, frames: FrameReader, request_line: bytes
    ) -> None:
        """Answer one ``GET /metrics``-style scrape, then close."""
        try:
            while True:  # drain the header block up to the blank line
                line = await frames.next_frame()
                if line is None or not line.strip():
                    break
        except (FrameTooLarge, ReadStalled, IdleTimeout, TruncatedFrame):
            pass  # answer with what we have; the response closes anyway
        path = http_request_path(request_line)
        if path.split("?", 1)[0].rstrip("/") in ("", "/metrics"):
            session.send(http_response(200, "OK", self.metrics_text()))
        else:
            session.send(
                http_response(404, "Not Found", "try GET /metrics\n")
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def stats_payload(self) -> Dict[str, object]:
        """The ``stats`` verb's reply body (counters plus live gauges)."""
        gate = self._gate
        payload: Dict[str, object] = dict(asdict(self.stats))
        payload.update(
            {
                "degradation": self._options.degradation,
                "queue_limit": self._options.queue_limit,
                "queue_depth": gate.depth() if gate is not None else 0,
                "connections_open": len(self._sessions),
                "subscribers": len(self._subscribers),
                "seq": self._seq,
                "closing": self._closing,
                "engine": dict(asdict(self._engine.stats)),
                "s_k": self._engine.s_k,
                "window_live": self._engine.window_live,
            }
        )
        return payload

    def metrics_text(self) -> str:
        """One live Prometheus exposition: engine + daemon families.

        Built fresh per scrape (counters are cumulative) — this is the
        live replacement for the write-file-at-close pattern the CLI
        stream command uses.
        """
        snapshot = Tracer()
        registry = snapshot.metrics
        self._engine.publish_metrics(snapshot)
        registry.absorb_serve_stats(self.stats)
        gate = self._gate
        registry.gauge(
            "repro_serve_queue_depth",
            "Ingestion events currently pending.",
            mode="last",
        ).set(float(gate.depth() if gate is not None else 0))
        registry.gauge(
            "repro_serve_connections_open",
            "Client connections currently open.",
            mode="last",
        ).set(float(len(self._sessions)))
        registry.gauge(
            "repro_serve_subscribers",
            "Clients currently subscribed to the delta stream.",
            mode="last",
        ).set(float(len(self._subscribers)))
        registry.histogram(
            "repro_serve_request_latency_seconds",
            self._latency.help,
            edges=SERVE_LATENCY_BUCKETS,
        ).merge_from(self._latency)
        return to_prometheus_text(snapshot)
