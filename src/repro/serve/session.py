"""Per-connection state: frame reading with timeouts, and the outbox.

Each accepted connection gets a :class:`Session` (identity, subscription
flag, a bounded outbox queue drained by one sender task) and a
:class:`FrameReader` (newline-delimited frame extraction with the two
timeout regimes the protocol distinguishes):

* **read timeout** — the peer stalled *mid-frame*: bytes arrived but the
  newline never did.  That is a misbehaving or wedged client and the
  connection is closed with a ``read-timeout`` error.
* **idle timeout** — the peer is connected but silent *between* frames.
  Plain request/reply clients are evicted (``idle-timeout``) so
  abandoned connections cannot accumulate; subscribed clients are
  exempt — a subscriber's silence is the normal case.

Replies and push notifications never block the event loop: they are
enqueued on the session's bounded outbox and written by the sender task.
A full outbox means the peer reads slower than the daemon produces —
:meth:`Session.send` reports the overflow and the server evicts the
subscriber rather than buffering without bound.
"""

from __future__ import annotations

import asyncio
from typing import Optional

__all__ = [
    "FrameReader",
    "FrameTooLarge",
    "IdleTimeout",
    "ReadStalled",
    "Session",
    "TruncatedFrame",
]

_READ_CHUNK = 65536


class FrameTooLarge(Exception):
    """A frame exceeded the per-frame byte cap before its newline."""


class ReadStalled(Exception):
    """The peer stalled mid-frame past the read timeout."""


class IdleTimeout(Exception):
    """The peer sent nothing for longer than the idle timeout."""


class TruncatedFrame(Exception):
    """The peer disconnected mid-frame (EOF before the newline)."""


class FrameReader:
    """Newline-delimited frames from an ``asyncio.StreamReader``.

    ``read_timeout`` bounds mid-frame stalls; ``idle_timeout`` bounds
    silence between frames (``0`` disables either).  Frames are returned
    without their trailing newline; a clean EOF between frames returns
    ``None``.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_frame_bytes: int,
        read_timeout: float,
        idle_timeout: float,
    ) -> None:
        self._reader = reader
        self._max_frame_bytes = max_frame_bytes
        self._read_timeout = read_timeout
        self._idle_timeout = idle_timeout
        self._buffer = bytearray()

    async def next_frame(self, idle_exempt: bool = False) -> Optional[bytes]:
        """The next complete frame (or ``None`` on a clean EOF).

        Raises :class:`FrameTooLarge`, :class:`ReadStalled`,
        :class:`IdleTimeout` or :class:`TruncatedFrame`; transport
        errors (``ConnectionError``/``OSError``) propagate as such.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                if newline > self._max_frame_bytes:
                    raise FrameTooLarge(
                        "frame of %d bytes exceeds the %d-byte cap"
                        % (newline, self._max_frame_bytes)
                    )
                frame = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return frame
            if len(self._buffer) > self._max_frame_bytes:
                raise FrameTooLarge(
                    "frame exceeds the %d-byte cap without a newline"
                    % self._max_frame_bytes
                )
            mid_frame = bool(self._buffer)
            if mid_frame:
                timeout = self._read_timeout
            elif idle_exempt:
                timeout = 0.0
            else:
                timeout = self._idle_timeout
            try:
                if timeout > 0:
                    chunk = await asyncio.wait_for(
                        self._reader.read(_READ_CHUNK), timeout
                    )
                else:
                    chunk = await self._reader.read(_READ_CHUNK)
            except asyncio.TimeoutError:
                if mid_frame:
                    raise ReadStalled(
                        "no frame completion within %.1fs"
                        % self._read_timeout
                    ) from None
                raise IdleTimeout(
                    "no request within %.1fs" % self._idle_timeout
                ) from None
            if not chunk:
                if mid_frame:
                    raise TruncatedFrame(
                        "EOF %d bytes into a frame" % len(self._buffer)
                    )
                return None
            self._buffer.extend(chunk)


class Session:
    """One connected client: identity, subscription flag, outbox."""

    def __init__(
        self,
        sid: int,
        writer: asyncio.StreamWriter,
        outbox_limit: int,
    ) -> None:
        self.sid = sid
        self.subscribed = False
        #: Set by the server to make the session loop stop after the
        #: current frame (graceful shutdown).
        self.closing = False
        #: Whether any JSON frame was dispatched yet (the HTTP sniff
        #: only applies to a connection's very first frame).
        self.saw_frame = False
        self._writer = writer
        self._outbox_limit = outbox_limit
        self._outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue()
        self._outbox_closed = False

    @property
    def peername(self) -> str:
        peer = self._writer.get_extra_info("peername")
        if isinstance(peer, tuple) and len(peer) >= 2:
            return "%s:%s" % (peer[0], peer[1])
        return repr(peer)

    def send(self, frame: bytes) -> bool:
        """Queue one outgoing frame; ``False`` on overflow or closed."""
        if self._outbox_closed:
            return False
        if self._outbox.qsize() >= self._outbox_limit:
            return False
        self._outbox.put_nowait(frame)
        return True

    def close_outbox(self) -> None:
        """No more frames; the sender flushes the backlog and exits."""
        if self._outbox_closed:
            return
        self._outbox_closed = True
        self._outbox.put_nowait(None)

    async def sender_loop(self) -> None:
        """Drain the outbox onto the transport until the close sentinel.

        Transport errors end the loop quietly — the reader side of the
        connection surfaces the disconnect.
        """
        try:
            while True:
                frame = await self._outbox.get()
                if frame is None:
                    break
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, OSError):
            pass
