"""Similarity functions (Jaccard, cosine, dice, overlap) and bound math."""

from .epsilon import SIMILARITY_EPS, sim_eq, sim_ge, sim_le, sim_ne
from .functions import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    SimilarityFunction,
    similarity_by_name,
)
from .overlap import (
    OverlapProbe,
    overlap_size,
    overlap_with_common_positions,
    overlap_with_early_abort,
)

__all__ = [
    "SimilarityFunction",
    "Jaccard",
    "Cosine",
    "Dice",
    "Overlap",
    "similarity_by_name",
    "overlap_size",
    "overlap_with_early_abort",
    "overlap_with_common_positions",
    "OverlapProbe",
    "SIMILARITY_EPS",
    "sim_eq",
    "sim_ne",
    "sim_ge",
    "sim_le",
]
