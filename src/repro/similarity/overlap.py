"""Merge-based overlap computations on sorted token arrays.

All records are sorted integer tuples (the canonical form produced by
:mod:`repro.data.records`), so set intersection is a linear merge.  Three
variants are provided:

* :func:`overlap_size` — plain ``|x ∩ y|``;
* :func:`overlap_with_early_abort` — stops as soon as the required overlap
  can no longer be reached (the standard verification optimisation in
  prefix-filtering joins);
* :func:`overlap_with_common_positions` — also reports the 1-based
  positions of the first two common tokens in each record, which the
  verification-deduplication optimisation of the paper (Algorithm 6) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "overlap_size",
    "overlap_with_early_abort",
    "OverlapProbe",
    "overlap_with_common_positions",
]


def overlap_size(x: Sequence[int], y: Sequence[int]) -> int:
    """Return ``|x ∩ y|`` for two sorted token arrays."""
    i = j = count = 0
    len_x, len_y = len(x), len(y)
    while i < len_x and j < len_y:
        xi, yj = x[i], y[j]
        if xi == yj:
            count += 1
            i += 1
            j += 1
        elif xi < yj:
            i += 1
        else:
            j += 1
    return count


def overlap_with_early_abort(
    x: Sequence[int], y: Sequence[int], required: int
) -> int:
    """Return ``|x ∩ y|``, or a value < *required* once it is unreachable.

    When the remaining tokens of either array cannot lift the overlap to
    *required*, the merge stops and the partial count is returned.  The
    returned value is exact whenever it is >= *required*; otherwise it is
    only a witness of failure.
    """
    i = j = count = 0
    len_x, len_y = len(x), len(y)
    # Feasibility deadlines: the merge can still reach *required* iff
    # i <= len_x - required + count and j <= len_y - required + count.
    # Both advance with every match, so the per-step test is two integer
    # comparisons instead of a min().
    max_i = len_x - required
    max_j = len_y - required
    while i < len_x and j < len_y:
        if i > max_i or j > max_j:
            return count
        xi, yj = x[i], y[j]
        if xi == yj:
            count += 1
            max_i += 1
            max_j += 1
            i += 1
            j += 1
        elif xi < yj:
            i += 1
        else:
            j += 1
    return count


@dataclass(frozen=True)
class OverlapProbe:
    """Result of :func:`overlap_with_common_positions`.

    ``first_x``/``first_y`` and ``second_x``/``second_y`` are 1-based
    positions of the first and second common tokens (``None`` when fewer
    than one / two were found).  ``aborted`` is true when the merge stopped
    early, in which case ``overlap`` undercounts.  ``scanned_x`` /
    ``scanned_y`` report how far the merge provably looked: every common
    token with position ``px <= scanned_x`` in *x* — and likewise every
    one with ``py <= scanned_y`` in *y* — has been found (a sorted merge
    cannot pass a common token in either array without detecting it).
    The verification-dedup optimisation uses this to decide whether a
    second common token exists inside the maximum prefixes.
    """

    overlap: int
    first_x: Optional[int]
    first_y: Optional[int]
    second_x: Optional[int]
    second_y: Optional[int]
    aborted: bool
    scanned_x: int = 0
    scanned_y: int = 0


def overlap_with_common_positions(
    x: Sequence[int],
    y: Sequence[int],
    required: int = 0,
    scan_x: int = 0,
    scan_y: int = 0,
) -> OverlapProbe:
    """Merge *x* and *y* recording the first two common-token positions.

    *required* enables the same early abort as
    :func:`overlap_with_early_abort` (pass 0 to disable).  ``scan_x`` /
    ``scan_y`` delay the abort until one cursor has passed its 1-based
    position (or a second common token has been found) — the
    verification-dedup optimisation (Algorithm 6) needs certainty about
    the second common token within the maximum prefixes, and the merge is
    the cheapest place to obtain it.
    """
    i = j = count = 0
    len_x, len_y = len(x), len(y)
    first: Optional[Tuple[int, int]] = None
    second: Optional[Tuple[int, int]] = None
    aborted = False
    # Same incremental feasibility deadlines as overlap_with_early_abort;
    # with required == 0 they are never crossed.
    if required:
        max_i = len_x - required
        max_j = len_y - required
    else:
        max_i = len_x
        max_j = len_y
    while i < len_x and j < len_y:
        if (i > max_i or j > max_j) and (
            second is not None or i >= scan_x or j >= scan_y
        ):
            aborted = True
            break
        xi, yj = x[i], y[j]
        if xi == yj:
            count += 1
            max_i += 1
            max_j += 1
            if first is None:
                first = (i + 1, j + 1)
            elif second is None:
                second = (i + 1, j + 1)
            i += 1
            j += 1
        elif xi < yj:
            i += 1
        else:
            j += 1
    return OverlapProbe(
        overlap=count,
        first_x=first[0] if first else None,
        first_y=first[1] if first else None,
        second_x=second[0] if second else None,
        second_y=second[1] if second else None,
        aborted=aborted,
        scanned_x=i,
        scanned_y=j,
    )
