"""Blessed epsilon comparisons for similarity and bound values.

Similarity values in this package are ratios of small integers (overlap
over a size combination), so *derivations of the same pair* compare
exactly — the join's own hot paths never need a tolerance, and the
``bound-safety`` static checker bans raw float ``==``/``!=`` on
similarity-valued expressions everywhere else.

Two consumers legitimately need a tolerance and route through here:

* tests asserting against scores recomputed along a *different*
  floating-point path (e.g. a NumPy reduction vs. the scalar formula);
* referee code comparing a backend's scores to an oracle's.

This module is the one place such comparisons are allowed (the checker
exempts it), so every tolerance in the codebase shares one definition.
"""

from __future__ import annotations

__all__ = ["SIMILARITY_EPS", "sim_eq", "sim_ne", "sim_ge", "sim_le"]

#: Tolerance for cross-path similarity comparisons.  Similarities are
#: quotients of integers bounded by record sizes (well under 2**30), so
#: any two floating-point evaluation orders agree to far better than
#: this; 1e-9 absolute keeps genuine mismatches (always >= 1/(n*m) for
#: integer overlaps) clearly detectable.
SIMILARITY_EPS = 1e-9


def sim_eq(a: float, b: float, eps: float = SIMILARITY_EPS) -> bool:
    """Whether two similarity values agree within *eps*."""
    return abs(a - b) <= eps


def sim_ne(a: float, b: float, eps: float = SIMILARITY_EPS) -> bool:
    """Whether two similarity values differ by more than *eps*."""
    return abs(a - b) > eps


def sim_ge(a: float, b: float, eps: float = SIMILARITY_EPS) -> bool:
    """Whether ``a >= b`` up to *eps* slack (``a`` may undershoot)."""
    return a >= b - eps


def sim_le(a: float, b: float, eps: float = SIMILARITY_EPS) -> bool:
    """Whether ``a <= b`` up to *eps* slack (``a`` may overshoot)."""
    return a <= b + eps
