"""Similarity functions and the bound arithmetic of the paper.

The paper supports Jaccard (default), cosine, dice and overlap similarity
(Sections II-A and VI).  Each function here knows every derived quantity the
join algorithms need:

==============================  ====================================================
quantity                        meaning
==============================  ====================================================
``similarity`` / ``verify``     exact value ``sim(x, y)`` (verify aborts early)
``required_overlap``            α — minimal ``|x ∩ y|`` for ``sim >= t`` (Eq. 1)
``probing_prefix_length``       probing prefix for threshold *t* (Lemma 1)
``indexing_prefix_length``      indexing prefix for threshold *t* (Lemma 2)
``probing_upper_bound``         max sim when the first common token is at
                                prefix position *p* (Algorithm 5 / Section VI)
``indexing_upper_bound``        Lemma 4's tighter bound for pairs found by
                                probing *after* indexing (Algorithm 8)
``accessing_upper_bound``       bound from two probing bounds (Algorithm 10)
``size_compatible`` et al.      size filtering window (Line 12 of Algorithm 3)
==============================  ====================================================

A unifying observation keeps the implementation honest: with ``F(o, a, b)``
denoting the similarity of records of sizes *a*, *b* sharing *o* tokens,

* the probing bound is ``F(a-p+1, a, a-p+1)``  (best partner: the record's
  own suffix),
* the indexing bound is ``F(a-p+1, a, a)``     (best partner: an equal-size
  record identical from position *p* on — exactly Lemma 4's construction),
* prefix lengths invert those same expressions,

so every per-function table entry in Section VI reduces to one
``from_overlap`` method plus the accessing bound.  Integer thresholds are
computed with a closed-form first guess followed by an exact fix-up loop, so
floating-point rounding can never cause a false dismissal.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Sequence

from .overlap import overlap_size, overlap_with_early_abort

__all__ = [
    "SimilarityFunction",
    "Jaccard",
    "Cosine",
    "Dice",
    "Overlap",
    "similarity_by_name",
]

_INFINITY = float("inf")


class SimilarityFunction(ABC):
    """Base class bundling a set-similarity function with its bound math."""

    #: Short identifier used by CLIs and benchmark reports.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Core definition
    # ------------------------------------------------------------------

    @abstractmethod
    def from_overlap(self, overlap: int, size_x: int, size_y: int) -> float:
        """Similarity of two records of the given sizes sharing *overlap*."""

    @abstractmethod
    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        """Max similarity given both records' probing upper bounds.

        This is the *accessing similarity upper bound* of Section IV-C
        (Algorithm 10), used to truncate inverted lists.
        """

    def max_value(self) -> float:
        """The largest value the function can take (1.0 unless unnormalized)."""
        return 1.0

    def accessing_cutoff(self, bound_x: float, threshold: float) -> float:
        """Largest partner bound that *might* fail the accessing test.

        Inverts :meth:`accessing_upper_bound` in its second argument:
        postings with insertion bound above the returned cutoff are
        guaranteed to pass ``accessing_upper_bound(bound_x, ·) > threshold``
        and need no per-posting check.  The default inversion is a
        monotone binary search; subclasses provide closed forms.  A small
        relative margin keeps the cutoff conservative (callers re-check
        candidates below the cutoff exactly), so float rounding can only
        cost a redundant check, never a wrong prune.
        """
        low, high = 0.0, 1.0
        for __ in range(40):
            mid = (low + high) / 2.0
            if self.accessing_upper_bound(bound_x, mid) <= threshold:
                low = mid
            else:
                high = mid
        return high * (1.0 + 1e-9) + 1e-12

    # ------------------------------------------------------------------
    # Exact evaluation
    # ------------------------------------------------------------------

    def similarity(self, x: Sequence[int], y: Sequence[int]) -> float:
        """Exact ``sim(x, y)`` for two sorted token arrays."""
        return self.from_overlap(overlap_size(x, y), len(x), len(y))

    def verify(
        self, x: Sequence[int], y: Sequence[int], threshold: float
    ) -> float:
        """``sim(x, y)`` with early abort.

        The result is exact whenever it is ``>= threshold``; when the merge
        aborts, the returned value is merely *some* value ``< threshold``.
        """
        required = self.required_overlap(threshold, len(x), len(y))
        overlap = overlap_with_early_abort(x, y, required)
        return self.from_overlap(overlap, len(x), len(y))

    # ------------------------------------------------------------------
    # Overlap thresholds (with exact integer fix-up)
    # ------------------------------------------------------------------

    def required_overlap(self, threshold: float, size_x: int, size_y: int) -> int:
        """α — the minimal overlap with ``sim >= threshold`` (Eq. 1).

        Returns ``min(size_x, size_y) + 1`` when no overlap suffices.
        """
        limit = min(size_x, size_y)
        guess = self._raw_required_overlap(threshold, size_x, size_y)
        return self._fixup(
            guess, limit, lambda o: self.from_overlap(o, size_x, size_y), threshold
        )

    def _min_overlap_any_partner(self, threshold: float, size_x: int) -> int:
        """Minimal overlap achieving *threshold* against the best partner.

        The best partner for a given overlap *o* has exactly *o* tokens (a
        subset of *x*), so this inverts ``F(o, size_x, o)``.
        """
        guess = self._raw_min_overlap_any(threshold, size_x)
        return self._fixup(
            guess, size_x, lambda o: self.from_overlap(o, size_x, o), threshold
        )

    def _min_overlap_equal_partner(self, threshold: float, size_x: int) -> int:
        """Minimal overlap achieving *threshold* against an equal-size partner.

        Inverts ``F(o, size_x, size_x)`` — the Lemma 2 / Lemma 4 scenario
        where the unseen partner is no smaller than *x*.
        """
        guess = self._raw_min_overlap_equal(threshold, size_x)
        return self._fixup(
            guess, size_x, lambda o: self.from_overlap(o, size_x, size_x), threshold
        )

    @staticmethod
    def _fixup(
        guess: int,
        limit: int,
        value_at: Callable[[int], float],
        threshold: float,
    ) -> int:
        """Snap *guess* to the true minimal ``o`` with ``value_at(o) >= threshold``.

        ``value_at`` must be nondecreasing.  The closed-form guesses are off
        by at most one ulp-induced step, so these loops almost never run.
        """
        alpha = max(0, min(guess, limit + 1))
        while alpha > 0 and value_at(alpha - 1) >= threshold:
            alpha -= 1
        while alpha <= limit and value_at(alpha) < threshold:
            alpha += 1
        return alpha

    # Closed-form initial guesses, one per subclass. ---------------------

    @abstractmethod
    def _raw_required_overlap(
        self, threshold: float, size_x: int, size_y: int
    ) -> int:
        """Closed-form guess for :meth:`required_overlap`."""

    @abstractmethod
    def _raw_min_overlap_any(self, threshold: float, size_x: int) -> int:
        """Closed-form guess for :meth:`_min_overlap_any_partner`."""

    @abstractmethod
    def _raw_min_overlap_equal(self, threshold: float, size_x: int) -> int:
        """Closed-form guess for :meth:`_min_overlap_equal_partner`."""

    # ------------------------------------------------------------------
    # Prefix lengths
    # ------------------------------------------------------------------

    def probing_prefix_length(self, size_x: int, threshold: float) -> int:
        """Length of the probing prefix guaranteeing no missed pair.

        Jaccard instance: ``|x| - ceil(t * |x|) + 1`` (Section II-B).
        Clamped to ``[0, size_x]``; 0 means the record cannot reach the
        threshold against any partner.
        """
        alpha = self._min_overlap_any_partner(threshold, size_x)
        return max(0, min(size_x, size_x - alpha + 1))

    def indexing_prefix_length(self, size_x: int, threshold: float) -> int:
        """Length of the indexing prefix (index-reduction, Lemma 2).

        Valid when all partners probing the index are no smaller than *x*,
        which size-sorted processing guarantees.  Jaccard instance:
        ``|x| - ceil(2t/(1+t) * |x|) + 1``.
        """
        alpha = self._min_overlap_equal_partner(threshold, size_x)
        return max(0, min(size_x, size_x - alpha + 1))

    # ------------------------------------------------------------------
    # Upper bounds
    # ------------------------------------------------------------------

    def probing_upper_bound(self, size_x: int, prefix: int) -> float:
        """Max similarity of *x* and any record whose first common token
        with *x* sits at prefix position *prefix* (Algorithm 5).

        Jaccard instance: ``1 - (p-1)/|x|``.
        """
        overlap = size_x - prefix + 1
        if overlap <= 0:
            return 0.0
        return self.from_overlap(overlap, size_x, overlap)

    def indexing_upper_bound(self, size_x: int, prefix: int) -> float:
        """Lemma 4's bound for pairs found by probing after indexing.

        Jaccard instance: ``(|x|-p+1) / (|x|+p-1)``.
        """
        overlap = size_x - prefix + 1
        if overlap <= 0:
            return 0.0
        return self.from_overlap(overlap, size_x, size_x)

    # ------------------------------------------------------------------
    # Size filtering
    # ------------------------------------------------------------------

    def size_compatible(self, threshold: float, size_x: int, size_y: int) -> bool:
        """Exact size-filter test: can records of these sizes reach *threshold*?

        Equivalent to ``|y| in [t|x|, |x|/t]`` for Jaccard but evaluated via
        ``from_overlap`` so it is exactly consistent with verification.
        """
        best = self.from_overlap(min(size_x, size_y), size_x, size_y)
        return best >= threshold

    def size_lower_bound(self, threshold: float, size_x: int) -> float:
        """Smallest partner size that can reach *threshold* (real-valued)."""
        low, high = 0.0, float(size_x)
        if self.from_overlap(size_x, size_x, size_x) < threshold:
            return _INFINITY
        for __ in range(60):
            mid = (low + high) / 2.0
            if self.from_overlap(int(mid), size_x, max(1, int(mid))) >= threshold:
                high = mid
            else:
                low = mid
        return high

    def size_upper_bound(self, threshold: float, size_x: int) -> float:
        """Largest partner size that can reach *threshold* (real-valued).

        ``inf`` for the overlap function, whose constraint is one-sided.
        """
        if threshold <= 0:
            return _INFINITY
        low, high = float(size_x), float(size_x) * 4 + 16
        while self.from_overlap(size_x, size_x, int(high)) >= threshold:
            high *= 2
            if high > 1e15:
                return _INFINITY
        for __ in range(60):
            mid = (low + high) / 2.0
            if self.from_overlap(size_x, size_x, max(1, int(mid))) >= threshold:
                low = mid
            else:
                high = mid
        return low

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class Jaccard(SimilarityFunction):
    """``J(x, y) = |x ∩ y| / |x ∪ y|`` — the paper's default function."""

    name = "jaccard"

    def from_overlap(self, overlap: int, size_x: int, size_y: int) -> float:
        union = size_x + size_y - overlap
        if union <= 0:
            return 0.0
        return overlap / union

    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        denominator = bound_x + bound_y - bound_x * bound_y
        if denominator <= 0.0:
            return 0.0
        return bound_x * bound_y / denominator

    def accessing_cutoff(self, bound_x: float, threshold: float) -> float:
        # acc(bx, by) <= t  <=>  by * (bx (1+t) - t) <= t bx
        denominator = bound_x * (1.0 + threshold) - threshold
        if denominator <= 0.0:
            return _INFINITY
        cutoff = threshold * bound_x / denominator
        return cutoff * (1.0 + 1e-9) + 1e-12

    def _raw_required_overlap(self, t: float, size_x: int, size_y: int) -> int:
        # J >= t  <=>  o >= t/(1+t) * (|x| + |y|)            (Eq. 1)
        return math.ceil(t / (1.0 + t) * (size_x + size_y)) if t > 0 else 0

    def _raw_min_overlap_any(self, t: float, size_x: int) -> int:
        # best partner: o/|x| >= t
        return math.ceil(t * size_x) if t > 0 else 0

    def _raw_min_overlap_equal(self, t: float, size_x: int) -> int:
        # equal-size partner: o/(2|x| - o) >= t  <=>  o >= 2t/(1+t) * |x|
        return math.ceil(2.0 * t / (1.0 + t) * size_x) if t > 0 else 0


class Cosine(SimilarityFunction):
    """``C(x, y) = |x ∩ y| / sqrt(|x| * |y|)`` on binary vectors."""

    name = "cosine"

    def from_overlap(self, overlap: int, size_x: int, size_y: int) -> float:
        if size_x <= 0 or size_y <= 0:
            return 0.0
        return overlap / math.sqrt(size_x * size_y)

    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        return bound_x * bound_y

    def accessing_cutoff(self, bound_x: float, threshold: float) -> float:
        # acc(bx, by) <= t  <=>  by <= t / bx
        if bound_x <= 0.0:
            return _INFINITY
        return (threshold / bound_x) * (1.0 + 1e-9) + 1e-12

    def _raw_required_overlap(self, t: float, size_x: int, size_y: int) -> int:
        # C >= t  <=>  o >= t * sqrt(|x| |y|)
        return math.ceil(t * math.sqrt(size_x * size_y)) if t > 0 else 0

    def _raw_min_overlap_any(self, t: float, size_x: int) -> int:
        # best partner: sqrt(o/|x|) >= t  <=>  o >= t^2 |x|
        return math.ceil(t * t * size_x) if t > 0 else 0

    def _raw_min_overlap_equal(self, t: float, size_x: int) -> int:
        # equal-size partner: o/|x| >= t
        return math.ceil(t * size_x) if t > 0 else 0


class Dice(SimilarityFunction):
    """``D(x, y) = 2 |x ∩ y| / (|x| + |y|)``."""

    name = "dice"

    def from_overlap(self, overlap: int, size_x: int, size_y: int) -> float:
        total = size_x + size_y
        if total <= 0:
            return 0.0
        return 2.0 * overlap / total

    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        denominator = bound_x + bound_y - bound_x * bound_y
        if denominator <= 0.0:
            return 0.0
        return bound_x * bound_y / denominator

    def accessing_cutoff(self, bound_x: float, threshold: float) -> float:
        # Same accessing bound shape as Jaccard.
        denominator = bound_x * (1.0 + threshold) - threshold
        if denominator <= 0.0:
            return _INFINITY
        cutoff = threshold * bound_x / denominator
        return cutoff * (1.0 + 1e-9) + 1e-12

    def _raw_required_overlap(self, t: float, size_x: int, size_y: int) -> int:
        # D >= t  <=>  o >= t (|x| + |y|) / 2
        return math.ceil(t * (size_x + size_y) / 2.0) if t > 0 else 0

    def _raw_min_overlap_any(self, t: float, size_x: int) -> int:
        # best partner: 2o/(|x|+o) >= t  <=>  o >= t |x| / (2 - t)
        return math.ceil(t * size_x / (2.0 - t)) if t > 0 else 0

    def _raw_min_overlap_equal(self, t: float, size_x: int) -> int:
        # equal-size partner: o/|x| >= t
        return math.ceil(t * size_x) if t > 0 else 0


class Overlap(SimilarityFunction):
    """``O(x, y) = |x ∩ y]`` — unnormalized (footnote 1 of the paper)."""

    name = "overlap"

    def from_overlap(self, overlap: int, size_x: int, size_y: int) -> float:
        return float(overlap)

    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        return min(bound_x, bound_y)

    def accessing_cutoff(self, bound_x: float, threshold: float) -> float:
        # min(bx, by) <= t  <=>  bx <= t (always true) or by <= t
        if bound_x <= threshold:
            return _INFINITY
        return threshold * (1.0 + 1e-9) + 1e-12

    def max_value(self) -> float:
        return _INFINITY

    def _raw_required_overlap(self, t: float, size_x: int, size_y: int) -> int:
        return math.ceil(t) if t > 0 else 0

    def _raw_min_overlap_any(self, t: float, size_x: int) -> int:
        return math.ceil(t) if t > 0 else 0

    def _raw_min_overlap_equal(self, t: float, size_x: int) -> int:
        return math.ceil(t) if t > 0 else 0


_REGISTRY = {
    "jaccard": Jaccard,
    "cosine": Cosine,
    "dice": Dice,
    "overlap": Overlap,
}


def similarity_by_name(name: str) -> SimilarityFunction:
    """Instantiate a similarity function from its short name."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise ValueError(
            "unknown similarity %r (choose from %s)"
            % (name, ", ".join(sorted(_REGISTRY)))
        ) from None
