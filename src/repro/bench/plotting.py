"""ASCII scatter charts for benchmark reports.

The paper's evaluation is communicated through figures; the benchmark
harness regenerates each figure's *series* and these helpers render them
as monospace charts appended to the ``benchmarks/results/*.txt``
artifacts, so the shape (who wins, where curves cross) is visible without
any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "MARKERS"]

#: Markers assigned to series in insertion order.
MARKERS = "*+ox#@%&"

Point = Tuple[float, float]


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    return math.log10(max(value, 1e-12))


def _axis_range(values: Sequence[float]) -> Tuple[float, float]:
    low, high = min(values), max(values)
    if low == high:
        pad = 1.0 if low == 0 else abs(low) * 0.5
        return low - pad, high + pad
    return low, high


def ascii_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named point series as a monospace scatter chart.

    Each series gets the next marker from :data:`MARKERS`; overlapping
    points keep the earliest series' marker.  Axis end labels show the
    raw (untransformed) data range; ``log_x`` / ``log_y`` switch the
    corresponding axis to a log10 scale.
    """
    if not series or all(not points for points in series.values()):
        return "(no data)"
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4 characters")

    xs: List[float] = []
    ys: List[float] = []
    for points in series.values():
        for x, y in points:
            xs.append(_transform(x, log_x))
            ys.append(_transform(y, log_y))
    x_low, x_high = _axis_range(xs)
    y_low, y_high = _axis_range(ys)

    grid = [[" "] * width for __ in range(height)]
    for marker, (name, points) in zip(MARKERS, series.items()):
        for x, y in points:
            tx = (_transform(x, log_x) - x_low) / (x_high - x_low)
            ty = (_transform(y, log_y) - y_low) / (y_high - y_low)
            column = min(width - 1, int(round(tx * (width - 1))))
            row = height - 1 - min(height - 1, int(round(ty * (height - 1))))
            if grid[row][column] == " ":
                grid[row][column] = marker

    raw_xs = [x for points in series.values() for x, __ in points]
    raw_ys = [y for points in series.values() for __, y in points]

    lines = []
    top_label = "%g" % max(raw_ys)
    bottom_label = "%g" % min(raw_ys)
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = "%g" % min(raw_xs)
    x_end = "%g" % max(raw_xs)
    padding = width - len(x_axis) - len(x_end)
    lines.append(
        " " * (gutter + 1) + x_axis + " " * max(1, padding) + x_end
    )

    legend = "   ".join(
        "%s %s" % (marker, name)
        for marker, name in zip(MARKERS, series.keys())
    )
    scale = []
    if log_x:
        scale.append("log x")
    if log_y:
        scale.append("log y")
    footer = "legend: %s" % legend
    if scale:
        footer += "   (%s)" % ", ".join(scale)
    lines.append(footer)
    lines.append("axes: x=%s, y=%s" % (x_label, y_label))
    return "\n".join(lines)
