"""Plain-text rendering of benchmark series (the paper's tables/figures).

Every experiment driver returns rows of numbers; these helpers format them
as aligned text tables and persist them under ``benchmarks/results/`` so a
full ``pytest benchmarks/ --benchmark-only`` run leaves one artifact per
paper table/figure, ready to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence, Union

__all__ = ["format_table", "write_report", "results_dir", "repo_root"]

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return "%.0f" % cell
        if abs(cell) >= 1:
            return "%.3f" % cell
        return "%.4f" % cell
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render an aligned text table with a header rule."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([_render(cell) for cell in row])
    widths = [
        max(len(line[column]) for line in rendered)
        for column in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def repo_root(start: Union[str, None] = None) -> Union[str, None]:
    """Nearest ancestor of *start* that looks like the project root.

    Walks upward looking for a ``pyproject.toml`` or ``.git`` marker;
    returns ``None`` when no ancestor carries one (e.g. the package was
    imported from ``site-packages``).
    """
    path = os.path.abspath(start if start is not None else os.getcwd())
    while True:
        for marker in ("pyproject.toml", ".git"):
            if os.path.exists(os.path.join(path, marker)):
                return path
        parent = os.path.dirname(path)
        if parent == path:
            return None
        path = parent


def results_dir() -> str:
    """The directory benchmark artifacts are written to.

    Resolution order: the ``REPRO_RESULTS_DIR`` environment variable, then
    ``<repo root>/benchmarks/results`` where the root is found by marker
    files from the current working directory (not from ``__file__`` —
    counting ``dirname`` hops breaks once the package is installed into
    ``site-packages``), then ``./benchmarks/results`` as a last resort.
    """
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        path = override
    else:
        root = repo_root() or os.getcwd()
        path = os.path.join(root, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def write_report(name: str, title: str, body: str) -> str:
    """Persist one experiment's rendered output; returns the file path."""
    path = os.path.join(results_dir(), name + ".txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(title.rstrip() + "\n\n")
        handle.write(body.rstrip() + "\n")
    return path
