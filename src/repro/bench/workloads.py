"""Benchmark workloads — the scaled-down stand-ins for the paper's datasets.

The paper's datasets (Table I) hold 0.35M–0.9M records and were processed
by C++ on a 2007 Xeon; this reproduction runs pure Python, so each workload
is scaled down by roughly two orders of magnitude while preserving the
statistics the algorithms care about (token Zipf law, record-size
distribution, near-duplicate population — see DESIGN.md §4).  Collections
are built once per process and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List

from ..data.records import RecordCollection
from ..data.synthetic import dblp_like, trec3_like, trec_like, uniref3_like
from ..similarity.functions import (
    Cosine,
    Jaccard,
    SimilarityFunction,
)

__all__ = ["BenchWorkload", "WORKLOADS", "collection", "workload"]


@dataclass(frozen=True)
class BenchWorkload:
    """A named dataset + similarity + k-sweep, mirroring one figure panel."""

    name: str
    description: str
    factory: Callable[[], RecordCollection]
    similarity: SimilarityFunction
    k_values: List[int] = field(default_factory=list)
    #: Suffix-filter depth (2 for word tokens, 4 for q-grams — Section VII-A).
    maxdepth: int = 2


def _dblp() -> RecordCollection:
    return dblp_like(2000, seed=42)


def _trec() -> RecordCollection:
    return trec_like(700, seed=7)


def _trec3() -> RecordCollection:
    return trec3_like(350, seed=11)


def _uniref3() -> RecordCollection:
    return uniref3_like(300, seed=13)


WORKLOADS: Dict[str, BenchWorkload] = {
    "dblp": BenchWorkload(
        name="dblp",
        description="DBLP-like: short word-token records (paper Fig. 4a/4d)",
        factory=_dblp,
        similarity=Jaccard(),
        k_values=[100, 200, 300, 400, 500],
        maxdepth=2,
    ),
    "trec": BenchWorkload(
        name="trec",
        description="TREC-like: long word-token records (paper Fig. 3, 4b/4e, 5a)",
        factory=_trec,
        similarity=Jaccard(),
        k_values=[500, 1000, 1500, 2000, 2500],
        maxdepth=2,
    ),
    "trec-3gram": BenchWorkload(
        name="trec-3gram",
        description="TREC-3GRAM-like: text 3-gram sets (paper Fig. 4c/4f, 5b/5c)",
        factory=_trec3,
        similarity=Cosine(),
        k_values=[50, 100, 150, 200, 250],
        maxdepth=4,
    ),
    "uniref-3gram": BenchWorkload(
        name="uniref-3gram",
        description="UNIREF-3GRAM-like: protein 3-gram sets (paper Fig. 5b/5c)",
        factory=_uniref3,
        similarity=Jaccard(),
        k_values=[50, 100, 150, 200],
        maxdepth=4,
    ),
}


@lru_cache(maxsize=None)
def collection(name: str) -> RecordCollection:
    """The (cached) record collection of a named workload."""
    return WORKLOADS[name].factory()


def workload(name: str) -> BenchWorkload:
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            "unknown workload %r (choose from %s)"
            % (name, ", ".join(sorted(WORKLOADS)))
        ) from None
