"""Hot-path benchmark baseline: measure, record, and gate (BENCH_3.json).

The accelerated kernels of :mod:`repro.accel` are justified by numbers,
so the numbers are part of the repository: ``benchmarks/BENCH_3.json``
holds a figure4-style measurement (wall time, events/sec, candidate and
verification counts per dataset/k, acceleration on and off) recorded by
``benchmarks/record_baseline.py``.  CI re-measures the same workload and
fails when the accelerated path regresses by more than
:data:`SLOWDOWN_LIMIT` against the committed baseline, when the
on-vs-off speedup at the default k drops below :data:`MIN_SPEEDUP`, or
when the second-generation scan kernel falls below
:data:`MIN_KERNEL2_SPEEDUP` against the frozen first-generation
reference on the k=500 row (see :func:`carry_kernel2_reference`).

Absolute wall-clock differs between machines, so the gate first
*calibrates*: the ratio of the current machine's ``accel="off"`` time to
the baseline's ``accel="off"`` time rescales every committed number
before the limit is applied.  The unaccelerated loop is the yardstick —
it exercises the same interpreter, allocator and cache hierarchy without
the code under test.

``repro bench --json`` emits exactly the structure recorded here, so the
gate and humans consume one format.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.metrics import TopkStats
from ..core.topk_join import TopkOptions, topk_join
from ..parallel.join import parallel_topk_join
from .workloads import collection, workload

__all__ = [
    "BASELINE_PATH",
    "SLOWDOWN_NOISE_FLOOR_S",
    "MIN_KERNEL2_SPEEDUP",
    "MIN_PARALLEL_SPEEDUP",
    "MIN_SPEEDUP",
    "MIN_STREAM_SPEEDUP",
    "SLOWDOWN_LIMIT",
    "carry_kernel2_reference",
    "check_against_baseline",
    "load_baseline",
    "measure_baseline",
    "measure_parallel",
    "measure_stream",
    "save_baseline",
    "speedup_of",
]

#: Format version of BENCH_3.json.  Schema 4 adds ``sig_bits`` per
#: entry and the ``kernel2`` row (the frozen first-generation kernel
#: reference the second-generation scan kernel is gated against).
SCHEMA = 4

#: The committed baseline (repo-relative; resolved from this file).
BASELINE_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "BENCH_3.json"

#: CI fails when calibrated accelerated wall time regresses past this.
SLOWDOWN_LIMIT = 1.25

#: Absolute slack added on top of the relative limit.  Accelerated
#: cells run in the 0.1-0.5s range where scheduler and co-tenant noise
#: is a near-constant tens of milliseconds, not a percentage — a pure
#: ratio limit on a 110ms cell flags 50ms of jitter as a regression.
#: The floor is negligible against the multi-second unaccelerated
#: cells and the speedup gates, which stay purely relative.
SLOWDOWN_NOISE_FLOOR_S = 0.08

#: Required accel on-vs-off speedup at the default (first) k.
MIN_SPEEDUP = 1.5

#: Required multi-worker speedup over the 1-worker serial run when a
#: report carries a ``parallel`` row (CI measures with ``--workers 2``).
#: The shared-memory data plane is what makes this reachable on small
#: runners: the collection is encoded once and workers attach zero-copy,
#: so pool start-up no longer pays a per-worker pickle of the records.
MIN_PARALLEL_SPEEDUP = 1.2

#: Required incremental-over-recompute speedup when a report carries a
#: ``stream`` row.  The incremental engine's whole reason to exist is
#: that probing the live index under the current bound beats re-joining
#: the window after every event; even on small windows the gap is wide,
#: so the floor is conservative.
MIN_STREAM_SPEEDUP = 2.0

#: Required second-generation-kernel speedup over the frozen
#: first-generation reference on the ``kernel2`` row.  The reference is
#: the last accel-on k=500 wall time measured with the gen-1 kernel
#: (0.47s on the recording machine), carried forward through every
#: re-record by :func:`carry_kernel2_reference` with off-time
#: calibration — so the gate keeps comparing against the kernel this PR
#: replaced, not against itself.
MIN_KERNEL2_SPEEDUP = 1.5

#: The kernel2 row's cell: the largest dblp-like k, where the gen-1
#: kernel cost 0.47s accel-on.
KERNEL2_DATASET = "dblp"
KERNEL2_K = 500

#: The figure4-style smoke: the dblp-like panel at its standard k sweep.
DEFAULT_DATASETS = ("dblp",)

#: The parallel-speedup row's cell: the largest dblp-like k, so the join
#: runs long enough (~1.5s serial) that pool start-up does not dominate.
PARALLEL_DATASET = "dblp"
PARALLEL_K = 500

#: The stream-speedup row's cell: dblp-like records replayed as an
#: insert-only stream over a full count window, so every arrival both
#: displaces the oldest record and probes the live index.
STREAM_DATASET = "dblp"
STREAM_K = 50
STREAM_WINDOW = 200
STREAM_EVENTS = 260


def _run_once(name: str, k: int, accel: str) -> Dict[str, object]:
    """One measured join cell -> a BENCH_3 entry dict.

    Accelerated cells finish in fractions of a second, where scheduler
    noise dominates a single run — they are measured best-of-5 (the
    minimum is the statistic least sensitive to contention, and five
    tries keep it stable on shared runners).  The slow ``accel="off"``
    cells run once: the gate only uses their *sum* (for machine
    calibration), which averages the noise out.
    """
    load = workload(name)
    coll = collection(name)
    options = TopkOptions(maxdepth=load.maxdepth, accel=accel)
    wall = None
    for __ in range(5 if accel != "off" else 1):
        if accel != "off":
            # Charge signature construction to the accelerated run (the
            # cache on the shared collection would otherwise hide it).
            coll.clear_signature_cache()
        stats = TopkStats()
        start = time.perf_counter()
        results = topk_join(
            coll, k, similarity=load.similarity, options=options,
            stats=stats,
        )
        elapsed = time.perf_counter() - start
        if wall is None or elapsed < wall:
            wall = elapsed
    return {
        "dataset": name,
        "k": k,
        "accel": accel,
        "sig_bits": options.sig_bits,
        "wall_s": round(wall, 6),
        "events": stats.events,
        "events_per_s": round(stats.events / wall, 3) if wall > 0 else 0.0,
        "candidates": stats.candidates,
        "verifications": stats.verifications,
        "bitmap_checked": stats.bitmap_checked,
        "bitmap_pruned": stats.bitmap_pruned,
        "results": len(results),
    }


def measure_baseline(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    k_values: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Measure the baseline workload; returns the BENCH_3 structure.

    Every ``(dataset, k)`` cell is measured with acceleration on and off.
    *k_values* overrides each workload's standard k sweep (used by tests
    to keep runtime tiny).
    """
    entries: List[Dict[str, object]] = []
    for name in datasets:
        ks = list(k_values) if k_values is not None else workload(name).k_values
        for k in ks:
            for accel in ("off", "on"):
                entries.append(_run_once(name, k, accel))
    report: Dict[str, object] = {
        "schema": SCHEMA,
        "workload": "figure4-style smoke (synthetic stand-ins, see "
                    "repro.bench.workloads)",
        "datasets": list(datasets),
        "entries": entries,
    }
    ratio = speedup_of(report)
    if ratio is not None:
        report["speedup_default_k"] = round(ratio, 3)
    return report


def measure_parallel(
    workers: int,
    dataset: str = PARALLEL_DATASET,
    k: int = PARALLEL_K,
) -> Dict[str, object]:
    """Measure the sharded backend's multi-worker speedup, best-of-3.

    Both sides run the *same* sharded algorithm — ``workers=1`` executes
    the task plan serially in-process, *workers* executes it on a pool
    attached to the shared-memory segment — so the ratio isolates what
    the pool (and its data plane) buys, not shard-decomposition overhead.
    Pool start-up is deliberately inside the timed region: it is part of
    what a caller pays for ``--workers N``.
    """
    load = workload(dataset)
    coll = collection(dataset)
    options = TopkOptions(maxdepth=load.maxdepth)

    def best_of_3(worker_count: int) -> float:
        wall = None
        for __ in range(3):
            start = time.perf_counter()
            parallel_topk_join(
                coll, k, similarity=load.similarity, options=options,
                workers=worker_count,
            )
            elapsed = time.perf_counter() - start
            if wall is None or elapsed < wall:
                wall = elapsed
        return wall

    wall_serial = best_of_3(1)
    wall_parallel = best_of_3(workers)
    return {
        "workers": workers,
        "dataset": dataset,
        "k": k,
        "wall_serial_s": round(wall_serial, 6),
        "wall_parallel_s": round(wall_parallel, 6),
        "speedup": (
            round(wall_serial / wall_parallel, 3)
            if wall_parallel > 0 else 0.0
        ),
    }


def measure_stream(
    dataset: str = STREAM_DATASET,
    k: int = STREAM_K,
    window: int = STREAM_WINDOW,
    events: int = STREAM_EVENTS,
) -> Dict[str, object]:
    """Measure the incremental engine against per-event recompute.

    The same insert-only event stream (the workload's records in order)
    runs through both streaming modes over a full count window — the
    incremental engine probes the live index under the current bound and
    refills only when a top-k member dies, while ``mode="recompute"``
    re-runs the batch join after every mutation.  Both sides produce
    identical answers (the differential harness holds them to that), so
    the ratio isolates what incremental maintenance buys.  Best-of-3
    per side, engine construction inside the timed region.
    """
    from ..stream.engine import StreamingTopkEngine

    load = workload(dataset)
    coll = collection(dataset)
    token_lists = [
        list(record.tokens) for record in coll.records[:events]
    ]

    def best_of_3(mode: str) -> float:
        wall = None
        for __ in range(3):
            options = TopkOptions(
                window_size=window, window_policy="count"
            )
            start = time.perf_counter()
            engine = StreamingTopkEngine(
                k, similarity=load.similarity, options=options, mode=mode
            )
            with engine:
                for tokens in token_lists:
                    engine.insert(tokens)
            elapsed = time.perf_counter() - start
            if wall is None or elapsed < wall:
                wall = elapsed
        return wall

    wall_recompute = best_of_3("recompute")
    wall_incremental = best_of_3("incremental")
    return {
        "dataset": dataset,
        "k": k,
        "window": window,
        "events": len(token_lists),
        "wall_incremental_s": round(wall_incremental, 6),
        "wall_recompute_s": round(wall_recompute, 6),
        "speedup": (
            round(wall_recompute / wall_incremental, 3)
            if wall_incremental > 0 else 0.0
        ),
    }


def _off_scale(
    current: Dict[str, object], baseline: Dict[str, object]
) -> Optional[float]:
    """Machine-calibration ratio: current / committed ``accel="off"`` time.

    Summed over the off cells both reports measured; ``None`` when there
    is no overlap (the reports are not comparable).
    """
    current_map = _entry_map(current)
    baseline_map = _entry_map(baseline)
    common_off = [
        key for key in baseline_map
        if key[2] == "off" and key in current_map
    ]
    if not common_off:
        return None
    baseline_off = sum(baseline_map[key]["wall_s"] for key in common_off)
    if baseline_off <= 0:
        return None
    current_off = sum(current_map[key]["wall_s"] for key in common_off)
    return current_off / baseline_off


def carry_kernel2_reference(
    report: Dict[str, object],
    previous: Dict[str, object],
    dataset: str = KERNEL2_DATASET,
    k: int = KERNEL2_K,
) -> None:
    """Forward the frozen gen-1 kernel reference into a fresh *report*.

    The second-generation kernel's gate compares against the *replaced*
    kernel, whose accel-on k=500 time exists only as a committed number
    — re-measuring it is impossible once its code is gone.  So every
    re-record carries the reference forward: from *previous*'s own
    ``kernel2`` row when present, else (recording over the last schema-3
    baseline, i.e. the transition itself) from *previous*'s accel-on
    cell at ``(dataset, k)``, which schema 3 measured with the gen-1
    kernel.  Either way the reference is rescaled by the off-time
    calibration ratio between the two reports, so it stays expressed in
    the *recording* machine's clock and ``check_against_baseline`` can
    rescale it once more onto the checking machine.
    """
    kernel2 = previous.get("kernel2")
    if isinstance(kernel2, dict):
        gen1_wall = float(kernel2["gen1_wall_s"])
        dataset = str(kernel2.get("dataset", dataset))
        k = int(kernel2.get("k", k))
    else:
        entry = _entry_map(previous).get((dataset, k, "on"))
        if entry is None:
            return
        gen1_wall = float(entry["wall_s"])
    scale = _off_scale(report, previous)
    if scale is None:
        return
    row: Dict[str, object] = {
        "dataset": dataset,
        "k": k,
        "gen1_wall_s": round(gen1_wall * scale, 6),
    }
    current = _entry_map(report).get((dataset, k, "on"))
    if current is not None and current["wall_s"] > 0:
        row["speedup"] = round(
            row["gen1_wall_s"] / current["wall_s"], 3
        )
    report["kernel2"] = row


def _entry_map(report: Dict[str, object]) -> Dict[tuple, Dict[str, object]]:
    return {
        (e["dataset"], e["k"], e["accel"]): e
        for e in report.get("entries", [])
    }


def speedup_of(report: Dict[str, object]) -> Optional[float]:
    """Accel on-vs-off wall-time ratio at the first dataset's default k."""
    entries = report.get("entries", [])
    if not entries:
        return None
    first = entries[0]
    key_off = (first["dataset"], first["k"], "off")
    key_on = (first["dataset"], first["k"], "on")
    table = _entry_map(report)
    if key_off not in table or key_on not in table:
        return None
    on_wall = table[key_on]["wall_s"]
    if on_wall <= 0:
        return None
    return table[key_off]["wall_s"] / on_wall


def check_against_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    slowdown_limit: float = SLOWDOWN_LIMIT,
    min_speedup: float = MIN_SPEEDUP,
    min_parallel_speedup: float = MIN_PARALLEL_SPEEDUP,
    min_stream_speedup: float = MIN_STREAM_SPEEDUP,
    min_kernel2_speedup: float = MIN_KERNEL2_SPEEDUP,
) -> List[str]:
    """Gate *current* against the committed *baseline*; returns failures.

    Calibration: committed times are rescaled by the ratio of total
    ``accel="off"`` wall time (current / baseline) over the cells both
    reports measured, then each accelerated cell must stay within
    ``slowdown_limit`` of its rescaled committed time.  Additionally the
    on-vs-off speedup at the default k must reach *min_speedup*, and —
    when the current report carries a ``parallel`` row (it only does
    when measured with ``--workers``) — the multi-worker speedup must
    reach *min_parallel_speedup*; a ``stream`` row (measured with
    ``--stream``) must likewise reach *min_stream_speedup*.  These rows
    need no committed counterpart: each is a self-contained ratio on
    one machine.

    When the committed baseline carries a ``kernel2`` row, the current
    accel-on cell at that row's ``(dataset, k)`` must beat the frozen
    first-generation kernel reference (rescaled onto this machine) by
    *min_kernel2_speedup* — the second-generation scan kernel is gated
    against the kernel it replaced, not against itself.
    """
    failures: List[str] = []
    current_map = _entry_map(current)
    baseline_map = _entry_map(baseline)

    common_off = [
        key for key in baseline_map
        if key[2] == "off" and key in current_map
    ]
    if not common_off:
        return ["no overlapping accel='off' cells to calibrate against"]
    baseline_off = sum(baseline_map[key]["wall_s"] for key in common_off)
    current_off = sum(current_map[key]["wall_s"] for key in common_off)
    if baseline_off <= 0:
        return ["committed baseline has zero accel='off' wall time"]
    scale = current_off / baseline_off

    for key in sorted(baseline_map):
        if key[2] != "on" or key not in current_map:
            continue
        allowed = (
            baseline_map[key]["wall_s"] * scale * slowdown_limit
            + SLOWDOWN_NOISE_FLOOR_S
        )
        got = current_map[key]["wall_s"]
        if got > allowed:
            failures.append(
                "%s k=%s: accelerated wall %.3fs exceeds %.3fs "
                "(committed %.3fs x machine scale %.2f x limit %.2f "
                "+ %.2fs noise floor)"
                % (key[0], key[1], got, allowed,
                   baseline_map[key]["wall_s"], scale, slowdown_limit,
                   SLOWDOWN_NOISE_FLOOR_S)
            )

    ratio = speedup_of(current)
    if ratio is None:
        failures.append("current report has no default-k on/off pair")
    elif ratio < min_speedup:
        failures.append(
            "accel on-vs-off speedup %.2fx at default k is below the "
            "required %.2fx" % (ratio, min_speedup)
        )

    kernel2 = baseline.get("kernel2")
    if isinstance(kernel2, dict):
        key_on = (kernel2.get("dataset"), kernel2.get("k"), "on")
        entry = current_map.get(key_on)
        if entry is not None and entry["wall_s"] > 0:
            gen1_here = float(kernel2["gen1_wall_s"]) * scale
            kernel2_ratio = gen1_here / entry["wall_s"]
            if kernel2_ratio < min_kernel2_speedup:
                failures.append(
                    "second-gen kernel speedup %.2fx on %s k=%s (gen-1 "
                    "reference %.3fs x machine scale %.2f vs %.3fs "
                    "measured) is below the required %.2fx"
                    % (
                        kernel2_ratio, key_on[0], key_on[1],
                        kernel2["gen1_wall_s"], scale, entry["wall_s"],
                        min_kernel2_speedup,
                    )
                )

    parallel = current.get("parallel")
    if isinstance(parallel, dict):
        parallel_ratio = float(parallel.get("speedup", 0.0))
        if parallel_ratio < min_parallel_speedup:
            failures.append(
                "%s-worker parallel speedup %.2fx (%s k=%s: %.3fs serial "
                "vs %.3fs parallel) is below the required %.2fx"
                % (
                    parallel.get("workers", "?"), parallel_ratio,
                    parallel.get("dataset", "?"), parallel.get("k", "?"),
                    parallel.get("wall_serial_s", 0.0),
                    parallel.get("wall_parallel_s", 0.0),
                    min_parallel_speedup,
                )
            )

    stream = current.get("stream")
    if isinstance(stream, dict):
        stream_ratio = float(stream.get("speedup", 0.0))
        if stream_ratio < min_stream_speedup:
            failures.append(
                "stream incremental-vs-recompute speedup %.2fx (%s k=%s "
                "window=%s over %s events: %.3fs recompute vs %.3fs "
                "incremental) is below the required %.2fx"
                % (
                    stream_ratio,
                    stream.get("dataset", "?"), stream.get("k", "?"),
                    stream.get("window", "?"), stream.get("events", "?"),
                    stream.get("wall_recompute_s", 0.0),
                    stream.get("wall_incremental_s", 0.0),
                    min_stream_speedup,
                )
            )
    return failures


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    """Read a BENCH_3.json file (the committed one by default)."""
    target = Path(path) if path is not None else BASELINE_PATH
    with open(target, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_baseline(
    report: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write *report* as BENCH_3.json (to the committed path by default)."""
    target = Path(path) if path is not None else BASELINE_PATH
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return target
