"""Experiment drivers — one function per paper table/figure.

Each driver runs the workload(s) of one evaluation artifact and returns the
rows of the series the paper plots, plus wall-clock timings taken inside
the driver (so a single pytest-benchmark invocation yields every panel of
the figure).  The thin wrappers in ``benchmarks/`` call these and persist
the rendered tables under ``benchmarks/results/``.

Mapping (see DESIGN.md §3 and EXPERIMENTS.md):

========  ====================================================
Table I   :func:`table1_rows`
Fig. 2    :func:`figure2_series`
Fig. 3a   :func:`figure3a_rows`   (verification-opt ablation)
Fig. 3bc  :func:`figure3bc_rows`  (indexing-opt ablation)
Fig. 4    :func:`figure4_rows`    (topk-join vs pptopk)
Table II  :func:`table2_rows`     (pptopk per-round result sizes)
Fig. 5a   :func:`figure5a_rows`   (verifications per record)
Fig. 5bc  :func:`figure5bc_rows`  (progressive emission trace)
========  ====================================================
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from ..core.metrics import PptopkStats, TopkStats
from ..core.pptopk import pptopk_join
from ..core.topk_join import TopkOptions, topk_join
from ..data.stats import (
    dataset_statistics,
    log_binned,
    record_size_histogram,
    token_frequency_histogram,
)
from ..joins.ppjoin import ppjoin_plus
from .workloads import WORKLOADS, collection, workload

__all__ = [
    "table1_rows",
    "figure2_series",
    "figure3a_rows",
    "figure3bc_rows",
    "figure4_rows",
    "table2_rows",
    "figure5a_rows",
    "figure5bc_rows",
]


def _timed_topk(name: str, k: int, options: TopkOptions) -> Tuple[TopkStats, float]:
    bench = workload(name)
    stats = TopkStats()
    start = time.perf_counter()
    topk_join(
        collection(name), k, similarity=bench.similarity,
        options=options, stats=stats,
    )
    return stats, time.perf_counter() - start


def _timed_pptopk(name: str, k: int) -> Tuple[PptopkStats, float]:
    bench = workload(name)
    stats = PptopkStats()
    start = time.perf_counter()
    pptopk_join(
        collection(name), k, similarity=bench.similarity,
        maxdepth=bench.maxdepth, stats=stats,
    )
    return stats, time.perf_counter() - start


def table1_rows() -> List[Tuple[str, int, float, int]]:
    """Table I: N, average record size, universe size per dataset."""
    rows = []
    for name in WORKLOADS:
        stats = dataset_statistics(name, collection(name))
        rows.append(stats.row())
    return rows


def figure2_series(
    name: str,
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """Figure 2: log-binned token-frequency and record-size distributions."""
    coll = collection(name)
    token_series = log_binned(token_frequency_histogram(coll))
    size_series = log_binned(record_size_histogram(coll))
    return token_series, size_series


def figure3a_rows(
    k_values: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int, int]]:
    """Figure 3(a): hash-table entries, topk-join vs record-all (TREC, Jaccard).

    Rows: ``(k, hash_entries_optimized, hash_entries_record_all)``.
    """
    ks = list(k_values or workload("trec").k_values)
    maxdepth = workload("trec").maxdepth
    rows = []
    for k in ks:
        optimized, __ = _timed_topk(
            "trec", k,
            TopkOptions(verification_mode="optimized", maxdepth=maxdepth),
        )
        record_all, __ = _timed_topk(
            "trec", k,
            TopkOptions(verification_mode="all", maxdepth=maxdepth),
        )
        rows.append((k, optimized.hash_entries_peak, record_all.hash_entries_peak))
    return rows


def figure3bc_rows(
    k_values: Optional[Sequence[int]] = None,
) -> List[Tuple[int, int, int, float, float]]:
    """Figure 3(b, c): index entries and running time, with vs without the
    indexing optimisation (TREC, Jaccard).

    The paper measures the number of index entries "immediately after the
    insertion of index has stopped but before the index deletion is
    performed" — i.e. cumulative insertions, with the accessing-bound
    deletions excluded.  Rows: ``(k, inserted_opt, inserted_without,
    seconds_opt, seconds_without)``.
    """
    ks = list(k_values or workload("trec").k_values)
    maxdepth = workload("trec").maxdepth
    rows = []
    for k in ks:
        with_opt, seconds_opt = _timed_topk(
            "trec", k,
            TopkOptions(index_optimization=True, maxdepth=maxdepth),
        )
        without_opt, seconds_without = _timed_topk(
            "trec", k,
            TopkOptions(index_optimization=False, maxdepth=maxdepth),
        )
        rows.append(
            (
                k,
                with_opt.index_inserted,
                without_opt.index_inserted,
                seconds_opt,
                seconds_without,
            )
        )
    return rows


def figure4_rows(
    name: str, k_values: Optional[Sequence[int]] = None
) -> List[Tuple[int, int, int, float, float]]:
    """Figure 4: candidate size and running time, topk-join vs pptopk.

    Panels (a, d) use the DBLP workload with Jaccard, (b, e) TREC with
    Jaccard, (c, f) TREC-3GRAM with cosine — select via *name*.  Rows:
    ``(k, verified_topk, verified_pptopk, seconds_topk, seconds_pptopk)``.
    The paper's "candidate size" counts the pairs actually verified by the
    similarity function.
    """
    bench = workload(name)
    ks = list(k_values or bench.k_values)
    rows = []
    for k in ks:
        topk_stats, topk_seconds = _timed_topk(
            name, k, TopkOptions(maxdepth=bench.maxdepth)
        )
        pp_stats, pp_seconds = _timed_pptopk(name, k)
        rows.append(
            (
                k,
                topk_stats.verifications,
                pp_stats.verifications,
                topk_seconds,
                pp_seconds,
            )
        )
    return rows


def table2_rows(
    thresholds: Optional[Sequence[float]] = None,
) -> List[Tuple[float, int]]:
    """Table II: ppjoin+ result-set size per threshold round (TREC).

    The paper lists thresholds 0.95 down to 0.60 in steps of 0.05.
    """
    coll = collection("trec")
    bench = workload("trec")
    values = list(thresholds or [0.95 - 0.05 * i for i in range(8)])
    rows = []
    for threshold in values:
        results = ppjoin_plus(
            coll, threshold, similarity=bench.similarity,
            maxdepth=bench.maxdepth,
        )
        rows.append((threshold, len(results)))
    return rows


def figure5a_rows(
    k_values: Optional[Sequence[int]] = None,
) -> List[Tuple[int, float]]:
    """Figure 5(a): average verifications per record vs k (TREC, Jaccard).

    The paper's headline observation: far fewer than *k* verifications per
    record — better than a hypothetical Oracle-assisted scorer.
    """
    ks = list(k_values or workload("trec").k_values)
    coll = collection("trec")
    rows = []
    for k in ks:
        stats, __ = _timed_topk("trec", k, TopkOptions())
        rows.append((k, stats.verifications_per_record(len(coll))))
    return rows


def figure5bc_rows(
    name: str, k: int = 200
) -> List[Tuple[int, float, float, float, float]]:
    """Figure 5(b, c): per-result emission trace (3-gram datasets, k=200).

    Rows: ``(i, similarity_i, probing_upper_bound, s_k, elapsed_seconds)``
    recorded when the i-th final result was emitted.
    """
    bench = workload(name)
    stats, __ = _timed_topk(name, k, TopkOptions(maxdepth=bench.maxdepth))
    return [
        (e.index, e.similarity, e.upper_bound, e.s_k, e.elapsed)
        for e in stats.emits
    ]
