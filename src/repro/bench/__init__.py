"""Benchmark harness: workloads, experiment drivers, reporting."""

from .experiments import (
    figure2_series,
    figure3a_rows,
    figure3bc_rows,
    figure4_rows,
    figure5a_rows,
    figure5bc_rows,
    table1_rows,
    table2_rows,
)
from .plotting import ascii_chart
from .reporting import format_table, results_dir, write_report
from .workloads import WORKLOADS, BenchWorkload, collection, workload

__all__ = [
    "WORKLOADS",
    "BenchWorkload",
    "collection",
    "workload",
    "table1_rows",
    "figure2_series",
    "figure3a_rows",
    "figure3bc_rows",
    "figure4_rows",
    "table2_rows",
    "figure5a_rows",
    "figure5bc_rows",
    "format_table",
    "write_report",
    "results_dir",
    "ascii_chart",
]
