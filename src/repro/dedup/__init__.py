"""Near-duplicate clustering and deduplication (the paper's applications)."""

from .clusters import Clustering, cluster_by_threshold, cluster_topk, deduplicate
from .union_find import UnionFind

__all__ = [
    "UnionFind",
    "Clustering",
    "cluster_by_threshold",
    "cluster_topk",
    "deduplicate",
]
