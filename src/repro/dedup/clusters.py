"""Near-duplicate clustering and deduplication on top of the joins.

The paper's motivating applications — near-duplicate Web page detection,
data integration, record linkage (Section I) — don't stop at pairs: the
joined pairs are stitched into *clusters* of mutually similar records and
each cluster is collapsed to one representative.  This module provides
that application layer over both join flavours:

* :func:`cluster_by_threshold` — connected components of the
  ``sim >= t`` graph (single-linkage clustering via a threshold join);
* :func:`cluster_topk` — components of the top-k pair graph, for the
  threshold-free workflow the paper advocates;
* :func:`deduplicate` — pick one representative per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.topk_join import TopkOptions, topk_join
from ..data.records import RecordCollection
from ..joins import threshold_join
from ..result import JoinResult
from ..similarity.functions import SimilarityFunction
from .union_find import UnionFind

__all__ = ["Clustering", "cluster_by_threshold", "cluster_topk", "deduplicate"]


@dataclass(frozen=True)
class Clustering:
    """A partition of a collection's record ids."""

    #: Clusters sorted by decreasing size; singletons included.
    clusters: List[List[int]]
    #: Map record id -> index into :attr:`clusters`.
    cluster_of: Dict[int, int]

    @property
    def duplicate_groups(self) -> List[List[int]]:
        """Only the clusters with two or more members."""
        return [cluster for cluster in self.clusters if len(cluster) > 1]

    def representatives(self, collection: RecordCollection) -> List[int]:
        """One record id per cluster — the largest record wins ties.

        "Largest" keeps the most informative variant of a duplicate group,
        the common convention in near-duplicate suppression.
        """
        chosen = []
        for cluster in self.clusters:
            chosen.append(
                max(cluster, key=lambda rid: (len(collection[rid]), -rid))
            )
        return sorted(chosen)


def _components(
    record_count: int, pairs: Sequence[JoinResult]
) -> Clustering:
    union = UnionFind(record_count)
    for pair in pairs:
        union.union(pair.x, pair.y)
    clusters = [list(group) for group in union.groups()]
    cluster_of = {
        rid: index for index, cluster in enumerate(clusters) for rid in cluster
    }
    return Clustering(clusters=clusters, cluster_of=cluster_of)


def cluster_by_threshold(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    algorithm: str = "ppjoin+",
) -> Clustering:
    """Single-linkage clusters of the ``sim >= threshold`` graph."""
    pairs = threshold_join(
        collection, threshold, similarity=similarity, algorithm=algorithm
    )
    return _components(len(collection), pairs)


def cluster_topk(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    options: Optional[TopkOptions] = None,
    min_similarity: float = 0.0,
) -> Clustering:
    """Clusters induced by the top-k most similar pairs.

    *min_similarity* drops the tail of the top-k list before clustering —
    useful because the k-th pair may already be junk on clean data.
    """
    pairs = [
        pair
        for pair in topk_join(collection, k, similarity=similarity,
                              options=options)
        if pair.similarity > min_similarity
    ]
    return _components(len(collection), pairs)


def deduplicate(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
) -> List[int]:
    """Record ids surviving near-duplicate suppression at *threshold*."""
    clustering = cluster_by_threshold(
        collection, threshold, similarity=similarity
    )
    return clustering.representatives(collection)
