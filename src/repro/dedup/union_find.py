"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations

from typing import Dict, Iterator, List

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be >= 0, got %d" % size)
        self._parent = list(range(size))
        self._size = [1] * size
        self.components = size

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: int) -> int:
        """Representative of *element*'s set (with path compression)."""
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of *a* and *b*; returns False if already joined."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self.components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def set_size(self, element: int) -> int:
        """Size of the set containing *element*."""
        return self._size[self.find(element)]

    def groups(self) -> Iterator[List[int]]:
        """All sets with two or more members, then singletons, each sorted."""
        by_root: Dict[int, List[int]] = {}
        for element in range(len(self._parent)):
            by_root.setdefault(self.find(element), []).append(element)
        ordered = sorted(
            by_root.values(), key=lambda group: (-len(group), group[0])
        )
        return iter(ordered)
