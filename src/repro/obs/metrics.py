"""Metrics registry: counters, gauges and histograms for the join stack.

The per-run dataclasses of :mod:`repro.core.metrics` (``TopkStats``,
``JoinStats``) stay the algorithms' native counting surface — they are
cheap plain attributes the hot loops batch into.  This registry is the
*exported* surface built on top: :meth:`MetricsRegistry.absorb_topk_stats`
folds a finished run's counters into named metric families, adds the
derived gauges the raw dataclasses cannot express (bitmap hit rate,
index/hash footprints), and turns the per-emission trace into
histograms (emission latency, event upper-bound gap).  Exporters
(:mod:`repro.obs.exporters`) then render one registry as Prometheus
text exposition or JSON.

Aggregation follows the ``TopkStats.merge_from`` discipline: every
family type has a ``merge_from`` that folds another instance in
(counters and histograms add; gauges combine by their declared
``mode``), and the ``stats-drift`` static checker verifies both that
each family merges every field and that the absorb functions cover
every field of the stats dataclasses — a counter added to ``TopkStats``
but not absorbed here fails ``repro lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.metrics import JoinStats, ServeStats, StreamStats, TopkStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EMIT_LATENCY_BUCKETS",
    "BOUND_GAP_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
]

LabelSet = Tuple[Tuple[str, str], ...]

# fmt: off
#: Histogram bucket edges for per-emission latency (seconds since start).
EMIT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Histogram bucket edges for the event upper-bound gap (similarity):
#: how far above the emitted similarity the best remaining event bound
#: sat at emission time — the tightness of the progressive guarantee.
BOUND_GAP_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0,
)

#: Histogram bucket edges for daemon request latency (seconds from
#: enqueue to applied) — sub-millisecond engine work up to multi-second
#: queueing under backpressure.
SERVE_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)
# fmt: on

_GAUGE_MODES = ("sum", "max", "last")


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    help: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        if (self.name, self.labels) != (other.name, other.labels):
            raise ValueError(
                "cannot merge counter %r into %r" % (other.name, self.name)
            )
        if not self.help:
            self.help = other.help
        self.value += other.value


@dataclass
class Gauge:
    """A point-in-time value; ``mode`` declares how tasks aggregate.

    ``sum`` — concurrent footprints (peak table sizes) add up, matching
    ``TopkStats.merge_from``'s worst-case-simultaneous semantics;
    ``max`` — the best observation wins (``s_k``: each task's bound is a
    lower bound on the global one); ``last`` — the merged-in value
    replaces (final snapshot gauges).
    """

    name: str
    help: str
    mode: str = "last"
    labels: LabelSet = ()
    value: float = 0.0
    updated: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _GAUGE_MODES:
            raise ValueError(
                "gauge mode must be one of %s, got %r" % (_GAUGE_MODES, self.mode)
            )

    def set(self, value: float) -> None:
        if self.mode == "max":
            if not self.updated or value > self.value:
                self.value = value
        else:
            self.value = value
        self.updated = True

    def merge_from(self, other: "Gauge") -> None:
        if (self.name, self.labels) != (other.name, other.labels):
            raise ValueError("cannot merge gauge %r into %r" % (other.name, self.name))
        if self.mode != other.mode:
            raise ValueError(
                "gauge %r merge with conflicting modes %r / %r"
                % (self.name, self.mode, other.mode)
            )
        if not self.help:
            self.help = other.help
        if not other.updated:
            return
        if not self.updated:
            self.value = other.value
        elif self.mode == "sum":
            self.value += other.value
        elif self.mode == "max":
            self.value = max(self.value, other.value)
        else:  # "last"
            self.value = other.value
        self.updated = True


@dataclass
class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``edges`` are the inclusive upper edges of the finite buckets (the
    ``le`` labels of the exposition format); one implicit ``+Inf``
    bucket always exists, so ``bucket_counts`` has ``len(edges) + 1``
    entries.
    """

    name: str
    help: str
    edges: Tuple[float, ...] = ()
    labels: LabelSet = ()
    bucket_counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram bucket edges must be sorted")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.edges) + 1)
        if len(self.bucket_counts) != len(self.edges) + 1:
            raise ValueError(
                "histogram %r has %d bucket counts for %d edges"
                % (self.name, len(self.bucket_counts), len(self.edges))
            )

    def observe(self, value: float) -> None:
        index = 0
        for edge in self.edges:
            if value <= edge:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.total += value
        self.count += 1

    def merge_from(self, other: "Histogram") -> None:
        if (self.name, self.labels) != (other.name, other.labels):
            raise ValueError(
                "cannot merge histogram %r into %r" % (other.name, self.name)
            )
        if self.edges != other.edges:
            raise ValueError(
                "histogram %r merge with conflicting bucket edges" % self.name
            )
        if not self.help:
            self.help = other.help
        for index, bucket in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket
        self.total += other.total
        self.count += other.count


FamilyKey = Tuple[str, LabelSet]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Registry of named counters, gauges and histograms.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call fixes help text, gauge mode and histogram edges; later calls
    return the live instance, so hot paths can hoist the object once and
    update plain attributes.
    """

    def __init__(self) -> None:
        self._counters: Dict[FamilyKey, Counter] = {}
        self._gauges: Dict[FamilyKey, Gauge] = {}
        self._histograms: Dict[FamilyKey, Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
    ) -> Counter:
        key = (name, _label_key(labels))
        existing = self._counters.get(key)
        if existing is None:
            existing = Counter(name=name, help=help, labels=key[1])
            self._counters[key] = existing
        return existing

    def gauge(
        self,
        name: str,
        help: str = "",
        mode: str = "last",
        labels: Optional[Dict[str, str]] = None,
    ) -> Gauge:
        key = (name, _label_key(labels))
        existing = self._gauges.get(key)
        if existing is None:
            existing = Gauge(name=name, help=help, mode=mode, labels=key[1])
            self._gauges[key] = existing
        return existing

    def histogram(
        self,
        name: str,
        help: str = "",
        edges: Sequence[float] = (),
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        key = (name, _label_key(labels))
        existing = self._histograms.get(key)
        if existing is None:
            existing = Histogram(
                name=name, help=help, edges=tuple(edges), labels=key[1]
            )
            self._histograms[key] = existing
        return existing

    # ------------------------------------------------------------------
    # views

    def counters(self) -> List[Counter]:
        return [self._counters[key] for key in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[key] for key in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        return [self._histograms[key] for key in sorted(self._histograms)]

    # ------------------------------------------------------------------
    # stats absorption — the bridge from repro.core.metrics

    def absorb_topk_stats(
        self, stats: "TopkStats", record_count: Optional[int] = None
    ) -> None:
        """Fold one finished top-k run's counters into metric families.

        Reads **every** field of :class:`~repro.core.metrics.TopkStats`
        (the ``stats-drift`` checker enforces this statically, and the
        runtime round-trip test enforces it dynamically), so a counter
        added there cannot silently miss the exporters.
        """
        c = self.counter
        c(
            "repro_events_total",
            "Prefix events popped from the event heap.",
        ).inc(stats.events)
        c(
            "repro_candidates_total",
            "Candidate pairs generated by probing inverted lists.",
        ).inc(stats.candidates)
        c(
            "repro_verifications_total",
            "Exact similarity computations performed.",
        ).inc(stats.verifications)
        c(
            "repro_duplicates_skipped_total",
            "Candidate occurrences skipped as already verified.",
        ).inc(stats.duplicates_skipped)
        c(
            "repro_size_pruned_total",
            "Candidates rejected by size filtering.",
        ).inc(stats.size_pruned)
        c(
            "repro_bitmap_checked_total",
            "Candidates tested by the bitmap-signature prefilter.",
        ).inc(stats.bitmap_checked)
        c(
            "repro_bitmap_pruned_total",
            "Candidates rejected by the bitmap-signature prefilter.",
        ).inc(stats.bitmap_pruned)
        c(
            "repro_positional_pruned_total",
            "Candidates rejected by positional filtering.",
        ).inc(stats.positional_pruned)
        c(
            "repro_suffix_pruned_total",
            "Candidates rejected by suffix filtering.",
        ).inc(stats.suffix_pruned)
        c(
            "repro_index_inserted_total",
            "Postings inserted into the inverted index.",
        ).inc(stats.index_inserted)
        c(
            "repro_index_deleted_total",
            "Postings removed by the accessing-bound truncation.",
        ).inc(stats.index_deleted)
        c(
            "repro_index_insertions_skipped_total",
            "Index insertions skipped by the indexing bound.",
        ).inc(stats.index_insertions_skipped)
        c(
            "repro_results_emitted_total",
            "Results emitted (progressively or in the final drain).",
        ).inc(len(stats.emits))
        self.gauge(
            "repro_hash_entries_peak",
            "Peak size of the verified-pair hash table (Fig. 3a).",
            mode="sum",
        ).set(stats.hash_entries_peak)
        self.gauge(
            "repro_index_entries_peak",
            "Peak number of live inverted-index postings (Fig. 3b).",
            mode="sum",
        ).set(stats.index_entries_peak)
        if record_count:
            self.gauge(
                "repro_verifications_per_record",
                "Average verifications per record (Fig. 5a).",
            ).set(stats.verifications_per_record(record_count))

        latency = self.histogram(
            "repro_emit_latency_seconds",
            "Seconds from join start to each progressive emission.",
            edges=EMIT_LATENCY_BUCKETS,
        )
        gap = self.histogram(
            "repro_event_bound_gap",
            "Best remaining event bound minus emitted similarity.",
            edges=BOUND_GAP_BUCKETS,
        )
        for emit in stats.emits:
            latency.observe(emit.elapsed)
            gap.observe(max(0.0, emit.upper_bound - emit.similarity))
        self.finalize_derived()

    def absorb_join_stats(self, stats: "JoinStats") -> None:
        """Fold one threshold-join run's counters into metric families.

        Reads every field of :class:`~repro.core.metrics.JoinStats`
        (statically enforced, see :meth:`absorb_topk_stats`).
        """
        c = self.counter
        c(
            "repro_threshold_candidates_total",
            "Candidate pairs that reached the verification phase.",
        ).inc(stats.candidates)
        c(
            "repro_threshold_verifications_total",
            "Exact similarity computations performed.",
        ).inc(stats.verifications)
        c(
            "repro_threshold_results_total",
            "Results returned by the threshold join.",
        ).inc(stats.results)
        c(
            "repro_threshold_index_entries_total",
            "Postings inserted into the inverted index.",
        ).inc(stats.index_entries)
        c(
            "repro_threshold_positional_pruned_total",
            "Candidates rejected by positional filtering.",
        ).inc(stats.positional_pruned)
        c(
            "repro_threshold_suffix_pruned_total",
            "Candidates rejected by suffix filtering.",
        ).inc(stats.suffix_pruned)
        c(
            "repro_threshold_size_pruned_total",
            "Postings skipped or removed by size filtering.",
        ).inc(stats.size_pruned)
        c(
            "repro_threshold_bitmap_pruned_total",
            "Candidates rejected by the bitmap-signature prefilter.",
        ).inc(stats.bitmap_pruned)

    def absorb_stream_stats(self, stats: "StreamStats") -> None:
        """Fold a streaming engine's lifetime counters into metric families.

        Reads every field of :class:`~repro.core.metrics.StreamStats`
        (statically enforced, see :meth:`absorb_topk_stats`).
        """
        c = self.counter
        c(
            "repro_stream_inserts_total",
            "Records inserted into the sliding window.",
        ).inc(stats.inserts)
        c(
            "repro_stream_expirations_total",
            "Records expired out of the sliding window.",
        ).inc(stats.expirations)
        c(
            "repro_stream_advances_total",
            "Window advance operations applied.",
        ).inc(stats.advances)
        c(
            "repro_stream_refills_total",
            "Bound-relaxation refill passes after a top-k member died.",
        ).inc(stats.refills)
        c(
            "repro_stream_probe_candidates_total",
            "Candidate records produced by probing the live index.",
        ).inc(stats.probe_candidates)
        c(
            "repro_stream_probe_verifications_total",
            "Exact similarity computations on arrival.",
        ).inc(stats.probe_verifications)
        c(
            "repro_stream_size_pruned_total",
            "Arrival candidates rejected by size filtering.",
        ).inc(stats.size_pruned)
        c(
            "repro_stream_bitmap_checked_total",
            "Arrival candidates tested by the bitmap-signature prefilter.",
        ).inc(stats.bitmap_checked)
        c(
            "repro_stream_bitmap_pruned_total",
            "Arrival candidates rejected by the bitmap-signature prefilter.",
        ).inc(stats.bitmap_pruned)
        c(
            "repro_stream_pairs_entered_total",
            "Pairs that entered the live top-k result set.",
        ).inc(stats.pairs_entered)
        c(
            "repro_stream_pairs_left_total",
            "Pairs that left the live top-k result set.",
        ).inc(stats.pairs_left)
        self.gauge(
            "repro_stream_window_peak",
            "Peak number of live records in the sliding window.",
            mode="sum",
        ).set(stats.window_peak)
        self.gauge(
            "repro_stream_index_entries_peak",
            "Peak number of live postings in the streaming index.",
            mode="sum",
        ).set(stats.index_entries_peak)

    def absorb_serve_stats(self, stats: "ServeStats") -> None:
        """Fold a serving daemon's lifetime counters into metric families.

        Reads every field of :class:`~repro.core.metrics.ServeStats`
        (statically enforced, see :meth:`absorb_topk_stats`).
        """
        c = self.counter
        c(
            "repro_serve_connections_total",
            "Client connections accepted by the daemon.",
        ).inc(stats.connections)
        c(
            "repro_serve_requests_total",
            "Request frames received (well-formed or not).",
        ).inc(stats.requests)
        c(
            "repro_serve_errors_total",
            "Structured error replies sent.",
        ).inc(stats.errors)
        c(
            "repro_serve_malformed_total",
            "Frames rejected as unparseable.",
        ).inc(stats.malformed)
        c(
            "repro_serve_oversized_total",
            "Frames rejected for exceeding the byte cap.",
        ).inc(stats.oversized)
        c(
            "repro_serve_accepted_total",
            "Ingestion events admitted to the bounded queue.",
        ).inc(stats.accepted)
        c(
            "repro_serve_rejected_total",
            "Ingestion events refused under the reject policy.",
        ).inc(stats.rejected)
        c(
            "repro_serve_shed_total",
            "Ingestion events dropped under the shed policy.",
        ).inc(stats.shed)
        c(
            "repro_serve_deltas_pushed_total",
            "Delta notifications written to subscriber outboxes.",
        ).inc(stats.deltas_pushed)
        c(
            "repro_serve_idle_evictions_total",
            "Connections closed for idling past the idle timeout.",
        ).inc(stats.idle_evictions)
        c(
            "repro_serve_read_timeouts_total",
            "Connections closed for stalling mid-frame.",
        ).inc(stats.read_timeouts)
        c(
            "repro_serve_subscriber_evictions_total",
            "Subscribers evicted for overflowing their outbox.",
        ).inc(stats.subscriber_evictions)
        self.gauge(
            "repro_serve_queue_peak",
            "Peak depth of the bounded ingestion queue.",
            mode="sum",
        ).set(stats.queue_peak)
        self.gauge(
            "repro_serve_subscribers_peak",
            "Peak number of simultaneous subscribers.",
            mode="sum",
        ).set(stats.subscribers_peak)

    def finalize_derived(self) -> None:
        """Recompute gauges derived from counters (safe to call repeatedly).

        The bitmap hit rate cannot merge as a gauge (a ratio of sums is
        not a sum of ratios), so it is re-derived from the merged
        counters whenever totals change.
        """
        checked = self._counters.get(("repro_bitmap_checked_total", ()))
        pruned = self._counters.get(("repro_bitmap_pruned_total", ()))
        if checked is not None and checked.value > 0:
            hits = pruned.value if pruned is not None else 0.0
            self.gauge(
                "repro_bitmap_hit_rate",
                "Fraction of bitmap-tested candidates the prefilter pruned.",
            ).set(hits / checked.value)

    # ------------------------------------------------------------------
    # merge / serialization

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters/histograms add, gauges by
        mode), then refresh the derived gauges."""
        for key, counter in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                self._counters[key] = Counter(
                    name=counter.name,
                    help=counter.help,
                    labels=counter.labels,
                    value=counter.value,
                )
            else:
                mine.merge_from(counter)
        for key, gauge in other._gauges.items():
            mine_g = self._gauges.get(key)
            if mine_g is None:
                self._gauges[key] = Gauge(
                    name=gauge.name,
                    help=gauge.help,
                    mode=gauge.mode,
                    labels=gauge.labels,
                    value=gauge.value,
                    updated=gauge.updated,
                )
            else:
                mine_g.merge_from(gauge)
        for key, histogram in other._histograms.items():
            mine_h = self._histograms.get(key)
            if mine_h is None:
                self._histograms[key] = Histogram(
                    name=histogram.name,
                    help=histogram.help,
                    edges=histogram.edges,
                    labels=histogram.labels,
                    bucket_counts=list(histogram.bucket_counts),
                    total=histogram.total,
                    count=histogram.count,
                )
            else:
                mine_h.merge_from(histogram)
        self.finalize_derived()

    def export(self) -> Dict[str, Any]:
        """Plain JSON-able snapshot (the cross-process wire format)."""
        return {
            "counters": [
                {
                    "name": item.name,
                    "help": item.help,
                    "labels": dict(item.labels),
                    "value": item.value,
                }
                for item in self.counters()
            ],
            "gauges": [
                {
                    "name": item.name,
                    "help": item.help,
                    "mode": item.mode,
                    "labels": dict(item.labels),
                    "value": item.value,
                    "updated": item.updated,
                }
                for item in self.gauges()
            ],
            "histograms": [
                {
                    "name": item.name,
                    "help": item.help,
                    "edges": list(item.edges),
                    "labels": dict(item.labels),
                    "bucket_counts": list(item.bucket_counts),
                    "total": item.total,
                    "count": item.count,
                }
                for item in self.histograms()
            ],
        }

    def absorb_export(self, payload: Dict[str, Any]) -> None:
        """Merge an :meth:`export` payload in (the other end of the wire)."""
        other = MetricsRegistry()
        for raw in payload.get("counters", []):
            other.counter(
                raw["name"], raw.get("help", ""), labels=raw.get("labels")
            ).inc(float(raw["value"]))
        for raw in payload.get("gauges", []):
            gauge = other.gauge(
                raw["name"],
                raw.get("help", ""),
                mode=raw.get("mode", "last"),
                labels=raw.get("labels"),
            )
            if raw.get("updated", True):
                gauge.set(float(raw["value"]))
        for raw in payload.get("histograms", []):
            histogram = other.histogram(
                raw["name"],
                raw.get("help", ""),
                edges=tuple(raw.get("edges", ())),
                labels=raw.get("labels"),
            )
            raw_counts = raw.get("bucket_counts", [])
            if raw_counts:
                histogram.bucket_counts = [int(x) for x in raw_counts]
            histogram.total = float(raw.get("total", 0.0))
            histogram.count = int(raw.get("count", 0))
        self.merge_from(other)
