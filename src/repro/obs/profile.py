"""Sampling profiler hook: attribute wall time to phases for free.

Instrumenting every inner call of the join would distort the thing being
measured; a *sampling* profiler instead wakes a daemon thread every few
milliseconds, snapshots each thread's open-span stack from the tracer,
and charges one sample to the innermost open span (or ``<untraced>``
when a thread has no span open).  Sample counts converge to the wall
time distribution across phases without touching the hot loops at all.

Activation is environment-driven so production runs can flip it on
without code changes::

    REPRO_PROFILE=1 python -m repro trace --workload dblp --k 100

The CLI calls :func:`maybe_profile` around the traced join; library
users can run :class:`SamplingProfiler` directly.  On ``stop()`` the
sample counts fold into ``tracer.profile_samples`` and export through
every exporter as ``repro_profile_samples_total{phase=...}``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from .tracer import Tracer

__all__ = [
    "PROFILE_ENV",
    "SamplingProfiler",
    "maybe_profile",
    "profiling_enabled",
]

#: Environment variable that switches the sampling profiler on.
PROFILE_ENV = "REPRO_PROFILE"

#: Default seconds between samples (~200 Hz: fine enough for phases that
#: live tens of milliseconds, coarse enough to stay invisible in cost).
DEFAULT_INTERVAL = 0.005


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` requests the sampling profiler."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() in ("1", "true", "yes", "on")


class SamplingProfiler:
    """Samples a tracer's open-span stacks from a daemon thread."""

    def __init__(self, tracer: Tracer, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive, got %r" % interval)
        self.tracer = tracer
        self.interval = interval
        self.samples: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> Dict[str, int]:
        """Stop sampling and fold the counts into the tracer."""
        if self._thread is None:
            return dict(self.samples)
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self.samples:
            self.tracer.add_profile_samples(self.samples)
        return dict(self.samples)

    def _sample_once(self) -> None:
        stacks = self.tracer.active_stacks()
        own = threading.get_ident()
        charged = False
        for ident, names in stacks.items():
            if ident == own or not names:
                continue
            leaf = names[-1]
            self.samples[leaf] = self.samples.get(leaf, 0) + 1
            charged = True
        if not charged:
            self.samples["<untraced>"] = self.samples.get("<untraced>", 0) + 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample_once()


@contextmanager
def maybe_profile(
    tracer: Optional[Tracer], interval: float = DEFAULT_INTERVAL
) -> Iterator[Optional[SamplingProfiler]]:
    """Run a sampling profiler around the block iff ``REPRO_PROFILE`` asks.

    No-op (yields ``None``) when profiling is disabled or there is no
    tracer to attribute samples to — the common production path costs
    one environment lookup.
    """
    if tracer is None or not profiling_enabled():
        yield None
        return
    profiler = SamplingProfiler(tracer, interval=interval)
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
