"""Observability for the join stack: spans, metrics, exporters, profiling.

The event-driven top-k join is a long-running, progressive computation —
a service in miniature — so this package gives it the three pillars a
service gets: **tracing** (:class:`Tracer` span records at the phase
boundaries of every backend), **metrics** (:class:`MetricsRegistry`
counters/gauges/histograms absorbed from the per-run stats dataclasses),
and **profiling** (:class:`SamplingProfiler`, activated by
``REPRO_PROFILE=1``).  Everything is stdlib-only and costs one
``is not None`` test per hook site when disabled.

Entry points::

    from repro.obs import Tracer
    from repro import TopkOptions, topk_join

    tracer = Tracer()
    topk_join(collection, k=10, options=TopkOptions(trace=tracer))
    print(render_phase_tree(tracer))          # where the time went
    print(to_prometheus_text(tracer))         # scrapeable exposition

or from the command line: ``repro trace``, ``repro topk --trace``.
See ``docs/OBSERVABILITY.md`` for the span model and metric catalog.
"""

from .exporters import (
    phase_tree,
    render_phase_tree,
    to_json,
    to_prometheus_text,
)
from .metrics import (
    BOUND_GAP_BUCKETS,
    EMIT_LATENCY_BUCKETS,
    SERVE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import (
    PROFILE_ENV,
    SamplingProfiler,
    maybe_profile,
    profiling_enabled,
)
from .tracer import TRACE_SCHEMA, SpanRecord, Tracer

__all__ = [
    "TRACE_SCHEMA",
    "SpanRecord",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EMIT_LATENCY_BUCKETS",
    "BOUND_GAP_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
    "phase_tree",
    "render_phase_tree",
    "to_json",
    "to_prometheus_text",
    "PROFILE_ENV",
    "SamplingProfiler",
    "maybe_profile",
    "profiling_enabled",
]
