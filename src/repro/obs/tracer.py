"""Span-based tracing for the join stack.

The event-driven top-k join behaves like a service, not a batch call:
results stream out progressively while ``s_k`` rises and the event heap
drains.  A :class:`Tracer` makes that lifecycle observable without
changing it — phase boundaries (seeding, the event loop, the final
drain, per-task sub-joins) become nested :class:`SpanRecord` entries on
a monotonic clock, and hot inner phases that are too frequent for
per-call spans (the kernel posting scans) accumulate into named *phase
timers* instead.

Design constraints, in order:

* **Zero cost when absent.**  Instrumented code paths hold a tracer
  reference that is ``None`` by default; every hook site pays one
  ``is not None`` test and nothing else.  There is no global tracer and
  no monkey-patching — the tracer travels explicitly via
  ``TopkOptions.trace``.
* **Monotonic clocks.**  All timestamps are ``time.perf_counter``
  deltas against the tracer's epoch; wall-clock adjustments can never
  produce negative spans.
* **Thread-safe buffers.**  Span completion, phase accumulation and
  metric updates take a lock; the per-thread *active-span stacks* are
  only mutated by their own thread and snapshotted by the sampling
  profiler (:mod:`repro.obs.profile`).
* **Process-safe by value.**  A tracer object is never shipped across
  processes (it holds a lock).  Workers build their own tracer, call
  :meth:`Tracer.export` (plain JSON-able dicts), and the parent folds
  the payload back in with :meth:`Tracer.absorb` — mirroring how
  ``TopkStats.merge_from`` aggregates per-task counters.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = ["SpanRecord", "Tracer", "TRACE_SCHEMA"]

#: Version stamp of the :meth:`Tracer.export` payload layout.
TRACE_SCHEMA = 1

MetaValue = Union[str, int, float]


@dataclass
class SpanRecord:
    """One completed span: a named, timed, possibly nested phase."""

    #: Phase name (``topk_join``, ``seed``, ``event_loop``, ``task-3``…).
    name: str
    #: Seconds since the tracer epoch at which the span started.
    start: float
    #: Wall-clock seconds from enter to exit (monotonic clock).
    duration: float
    #: ``span_id`` of the enclosing span, 0 for roots.
    parent: int
    #: Unique id within one tracer (absorb re-numbers to keep it unique).
    span_id: int
    #: Small static annotations (k, record count, task coordinates…).
    meta: Dict[str, MetaValue] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "parent": self.parent,
            "id": self.span_id,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            start=float(payload["start_s"]),
            duration=float(payload["duration_s"]),
            parent=int(payload["parent"]),
            span_id=int(payload["id"]),
            meta=dict(payload.get("meta", {})),
        )


class Tracer:
    """Collects spans, phase timers and metrics for one join run.

    The tracer owns a :class:`~repro.obs.metrics.MetricsRegistry`
    (``tracer.metrics``) so one object carries the whole observability
    state of a run; exporters (:mod:`repro.obs.exporters`) consume the
    tracer directly.
    """

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: List[SpanRecord] = []
        #: thread ident -> stack of ``(span_id, name)`` currently open.
        self._stacks: Dict[int, List[Tuple[int, str]]] = {}
        #: phase name -> ``[total_seconds, call_count]`` (hot-path timers).
        self._phases: Dict[str, List[float]] = {}
        #: profiler phase name -> sample count (see repro.obs.profile).
        self.profile_samples: Dict[str, int] = {}
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # clocks

    def now(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return self._clock() - self._epoch

    # ------------------------------------------------------------------
    # spans

    @contextmanager
    def span(self, name: str, **meta: MetaValue) -> Iterator[int]:
        """Open a nested span; records a :class:`SpanRecord` on exit.

        Nesting is per-thread: the innermost open span of the calling
        thread becomes the parent.  The span id is yielded for callers
        that want to reference it, though most ignore it.
        """
        ident = threading.get_ident()
        stack = self._stacks.setdefault(ident, [])
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1][0] if stack else 0
        start = self.now()
        stack.append((span_id, name))
        try:
            yield span_id
        finally:
            stack.pop()
            record = SpanRecord(
                name=name,
                start=start,
                duration=self.now() - start,
                parent=parent,
                span_id=span_id,
                meta=dict(meta),
            )
            with self._lock:
                self.spans.append(record)

    def active_stacks(self) -> Dict[int, List[str]]:
        """Snapshot of every thread's open-span name stack (for sampling).

        Reading foreign stacks relies on list append/pop atomicity under
        the GIL; a sampler tolerates the rare off-by-one-frame snapshot.
        """
        return {
            ident: [name for __, name in stack]
            for ident, stack in list(self._stacks.items())
            if stack
        }

    # ------------------------------------------------------------------
    # hot-path phase timers

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Accumulate one timed call into the named micro-phase.

        For inner phases called thousands of times per run (the kernel
        posting scan), a span per call would dominate the measurement;
        an accumulator records ``(total seconds, call count)`` instead.
        """
        with self._lock:
            entry = self._phases.get(name)
            if entry is None:
                self._phases[name] = [seconds, 1.0]
            else:
                entry[0] += seconds
                entry[1] += 1.0

    def phase_times(self) -> Dict[str, Tuple[float, int]]:
        """``name -> (total seconds, call count)`` for every micro-phase."""
        with self._lock:
            return {
                name: (entry[0], int(entry[1]))
                for name, entry in self._phases.items()
            }

    # ------------------------------------------------------------------
    # profiler samples

    def add_profile_samples(self, samples: Dict[str, int]) -> None:
        """Fold sampling-profiler counts in (see :mod:`repro.obs.profile`)."""
        with self._lock:
            for name, count in samples.items():
                self.profile_samples[name] = self.profile_samples.get(name, 0) + count

    # ------------------------------------------------------------------
    # cross-process merge

    def export(self) -> Dict[str, Any]:
        """The tracer's whole state as plain JSON-able dicts.

        This is the only form that crosses process boundaries: worker
        tasks return it alongside their :class:`TopkStats`, and the
        parent folds it back with :meth:`absorb`.
        """
        with self._lock:
            spans = [record.as_dict() for record in self.spans]
            phases = {
                name: {"total_s": entry[0], "count": int(entry[1])}
                for name, entry in self._phases.items()
            }
            profile = dict(self.profile_samples)
        return {
            "schema": TRACE_SCHEMA,
            "spans": spans,
            "phases": phases,
            "profile": profile,
            "metrics": self.metrics.export(),
        }

    def absorb(self, payload: Dict[str, Any], prefix: str) -> None:
        """Merge an exported tracer payload under a labeled container span.

        The payload's root spans are re-parented under a synthetic span
        named *prefix* (one per absorbed payload, so per-task subtrees
        stay distinguishable in the phase tree); span ids are shifted to
        stay unique.  Phase timers, profiler samples and metrics merge
        additively — the same discipline as ``TopkStats.merge_from``.
        Child span ``start`` offsets stay relative to the child's own
        epoch (worker clocks are not synchronized with the parent's).
        """
        if payload.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                "unsupported trace schema %r (expected %r)"
                % (payload.get("schema"), TRACE_SCHEMA)
            )
        records = [SpanRecord.from_dict(raw) for raw in payload.get("spans", [])]
        child_extent = max(
            (record.start + record.duration for record in records),
            default=0.0,
        )
        with self._lock:
            offset = self._next_id
            container = SpanRecord(
                name=prefix,
                start=self.now(),
                duration=child_extent,
                parent=0,
                span_id=offset,
                meta={"absorbed_spans": len(records)},
            )
            self._next_id += 1 + len(records)
            self.spans.append(container)
            for record in records:
                record.span_id += offset
                record.parent = (
                    container.span_id if record.parent == 0 else record.parent + offset
                )
                self.spans.append(record)
            for name, entry in payload.get("phases", {}).items():
                mine = self._phases.get(name)
                if mine is None:
                    self._phases[name] = [
                        float(entry["total_s"]), float(entry["count"])
                    ]
                else:
                    mine[0] += float(entry["total_s"])
                    mine[1] += float(entry["count"])
            for name, count in payload.get("profile", {}).items():
                self.profile_samples[name] = (
                    self.profile_samples.get(name, 0) + int(count)
                )
        self.metrics.absorb_export(payload.get("metrics", {}))
