"""Exporters: Prometheus text exposition, JSON, and a phase-time tree.

Three renderings of one :class:`~repro.obs.tracer.Tracer`:

* :func:`to_prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): metric families with ``# HELP`` / ``# TYPE``
  headers, histogram ``_bucket``/``_sum``/``_count`` series, plus span
  durations, micro-phase timers and sampling-profiler counts as labeled
  families.  Suitable for a textfile-collector scrape.
* :func:`to_json` — the tracer's full export payload plus the nested
  phase tree, for machine post-processing and CI artifacts.
* :func:`render_phase_tree` — a human-readable tree of where the wall
  time went, aggregated by span name per nesting level.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .tracer import Tracer

__all__ = [
    "phase_tree",
    "render_phase_tree",
    "to_json",
    "to_prometheus_text",
]


# ----------------------------------------------------------------------
# Prometheus text exposition


def _prom_name(name: str) -> str:
    """Sanitize to the Prometheus metric-name alphabet."""
    cleaned = [
        ch if (ch.isalnum() and ch.isascii()) or ch in "_:" else "_"
        for ch in name
    ]
    if cleaned and cleaned[0].isdigit():
        cleaned.insert(0, "_")
    return "".join(cleaned) or "_"


def _prom_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    parts = [
        '%s="%s"' % (_prom_name(key), _prom_label_value(str(value)))
        for key, value in sorted(labels.items())
    ]
    return "{%s}" % ",".join(parts)


def _prom_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(tracer: Tracer) -> str:
    """Render the tracer's metrics as Prometheus text exposition."""
    lines: List[str] = []
    seen_headers = set()

    def header(name: str, help_text: str, kind: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append("# HELP %s %s" % (name, help_text.replace("\n", " ")))
        lines.append("# TYPE %s %s" % (name, kind))

    registry = tracer.metrics
    for counter in registry.counters():
        name = _prom_name(counter.name)
        header(name, counter.help, "counter")
        lines.append(
            "%s%s %s"
            % (name, _prom_labels(dict(counter.labels)), _prom_number(counter.value))
        )
    for gauge in registry.gauges():
        name = _prom_name(gauge.name)
        header(name, gauge.help, "gauge")
        lines.append(
            "%s%s %s"
            % (name, _prom_labels(dict(gauge.labels)), _prom_number(gauge.value))
        )
    for histogram in registry.histograms():
        name = _prom_name(histogram.name)
        header(name, histogram.help, "histogram")
        labels = dict(histogram.labels)
        cumulative = 0
        for edge, bucket in zip(histogram.edges, histogram.bucket_counts):
            cumulative += bucket
            bucket_labels = dict(labels)
            bucket_labels["le"] = _prom_number(edge)
            lines.append(
                "%s_bucket%s %d" % (name, _prom_labels(bucket_labels), cumulative)
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            "%s_bucket%s %d" % (name, _prom_labels(inf_labels), histogram.count)
        )
        lines.append(
            "%s_sum%s %s" % (name, _prom_labels(labels), _prom_number(histogram.total))
        )
        lines.append("%s_count%s %d" % (name, _prom_labels(labels), histogram.count))

    # Span durations, aggregated by phase path.
    span_totals = _span_totals(tracer)
    if span_totals:
        header(
            "repro_span_seconds_total",
            "Wall seconds spent inside each span, by phase path.",
            "counter",
        )
        for path, (total, __) in sorted(span_totals.items()):
            lines.append(
                "repro_span_seconds_total%s %s"
                % (_prom_labels({"phase": path}), _prom_number(total))
            )
        header(
            "repro_span_calls_total",
            "Number of completed spans per phase path.",
            "counter",
        )
        for path, (__, count) in sorted(span_totals.items()):
            lines.append(
                "repro_span_calls_total%s %d" % (_prom_labels({"phase": path}), count)
            )

    phases = tracer.phase_times()
    if phases:
        header(
            "repro_phase_seconds_total",
            "Accumulated wall seconds of hot micro-phases.",
            "counter",
        )
        for name_, (total, __) in sorted(phases.items()):
            lines.append(
                "repro_phase_seconds_total%s %s"
                % (_prom_labels({"phase": name_}), _prom_number(total))
            )
        header(
            "repro_phase_calls_total",
            "Accumulated call counts of hot micro-phases.",
            "counter",
        )
        for name_, (__, count) in sorted(phases.items()):
            lines.append(
                "repro_phase_calls_total%s %d" % (_prom_labels({"phase": name_}), count)
            )

    if tracer.profile_samples:
        header(
            "repro_profile_samples_total",
            "Sampling-profiler hits attributed to the innermost open span.",
            "counter",
        )
        for name_, count in sorted(tracer.profile_samples.items()):
            lines.append(
                "repro_profile_samples_total%s %d"
                % (_prom_labels({"phase": name_}), count)
            )

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Phase tree


def _span_totals(tracer: Tracer) -> Dict[str, Tuple[float, int]]:
    """``phase path -> (total seconds, span count)`` over all spans.

    The path is the ``/``-joined span-name chain from the root, so two
    ``seed`` spans under different parents stay distinct.
    """
    by_id = {record.span_id: record for record in tracer.spans}

    def path_of(span_id: int) -> str:
        names: List[str] = []
        seen = set()
        current = by_id.get(span_id)
        while current is not None and current.span_id not in seen:
            seen.add(current.span_id)
            names.append(current.name)
            current = by_id.get(current.parent)
        return "/".join(reversed(names))

    totals: Dict[str, Tuple[float, int]] = {}
    for record in tracer.spans:
        path = path_of(record.span_id)
        total, count = totals.get(path, (0.0, 0))
        totals[path] = (total + record.duration, count + 1)
    return totals


def phase_tree(tracer: Tracer) -> Dict[str, Any]:
    """The spans as a nested tree, aggregated by name per level.

    Each node: ``{"name", "total_s", "count", "children": [...]}`` with
    children sorted by descending total time.  Top-level phase timers
    and profiler samples ride along so the JSON artifact is
    self-contained.
    """
    children_of: Dict[int, List[int]] = {}
    by_id = {record.span_id: record for record in tracer.spans}
    for record in tracer.spans:
        parent = record.parent if record.parent in by_id else 0
        children_of.setdefault(parent, []).append(record.span_id)

    def build(parent: int) -> List[Dict[str, Any]]:
        grouped: Dict[str, Dict[str, Any]] = {}
        for span_id in children_of.get(parent, []):
            record = by_id[span_id]
            node = grouped.get(record.name)
            if node is None:
                node = {
                    "name": record.name,
                    "total_s": 0.0,
                    "count": 0,
                    "children": [],
                }
                grouped[record.name] = node
            node["total_s"] += record.duration
            node["count"] += 1
            node["children"].extend(build(span_id))
        merged: Dict[str, Dict[str, Any]] = {}
        ordered: List[Dict[str, Any]] = []
        for node in grouped.values():
            collapsed: Dict[str, Dict[str, Any]] = {}
            for child in node["children"]:
                existing = collapsed.get(child["name"])
                if existing is None:
                    collapsed[child["name"]] = child
                else:
                    existing["total_s"] += child["total_s"]
                    existing["count"] += child["count"]
                    existing["children"].extend(child["children"])
            node["children"] = sorted(collapsed.values(), key=lambda n: -n["total_s"])
            merged[node["name"]] = node
            ordered.append(node)
        return sorted(ordered, key=lambda n: -n["total_s"])

    return {
        "roots": build(0),
        "phases": {
            name: {"total_s": total, "count": count}
            for name, (total, count) in tracer.phase_times().items()
        },
        "profile_samples": dict(tracer.profile_samples),
    }


def render_phase_tree(tracer: Tracer) -> str:
    """Human-readable phase-time tree (``repro trace`` default output)."""
    tree = phase_tree(tracer)
    roots = tree["roots"]
    grand_total = sum(node["total_s"] for node in roots) or 1.0
    lines: List[str] = []

    def label(node: Dict[str, Any], width: int) -> str:
        percent = 100.0 * node["total_s"] / grand_total
        suffix = " x%d" % node["count"] if node["count"] > 1 else ""
        return "%-*s %9.3fs %5.1f%%%s" % (
            width, node["name"], node["total_s"], percent, suffix
        )

    def render(node: Dict[str, Any], prefix: str, last: bool) -> None:
        branch = "└─ " if last else "├─ "
        lines.append(prefix + branch + label(node, 24))
        child_prefix = prefix + ("   " if last else "│  ")
        for index, child in enumerate(node["children"]):
            render(child, child_prefix, index == len(node["children"]) - 1)

    for root in roots:
        lines.append(label(root, 27))
        for child_index, child in enumerate(root["children"]):
            render(child, "", child_index == len(root["children"]) - 1)

    phases = tree["phases"]
    if phases:
        lines.append("")
        lines.append("hot micro-phases (accumulated):")
        for name, entry in sorted(phases.items(), key=lambda item: -item[1]["total_s"]):
            lines.append(
                "  %-24s %9.3fs over %d calls"
                % (name, entry["total_s"], entry["count"])
            )
    samples = tree["profile_samples"]
    if samples:
        total_samples = sum(samples.values()) or 1
        lines.append("")
        lines.append("profiler samples (REPRO_PROFILE):")
        for name, count in sorted(samples.items(), key=lambda kv: -kv[1]):
            lines.append(
                "  %-24s %6d (%5.1f%%)" % (name, count, 100.0 * count / total_samples)
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON


def to_json(tracer: Tracer, indent: int = 2) -> str:
    """The full trace payload plus the nested phase tree, as JSON."""
    payload = tracer.export()
    payload["phase_tree"] = phase_tree(tracer)
    return json.dumps(payload, indent=indent, sort_keys=False) + "\n"
