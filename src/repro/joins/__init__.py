"""Threshold similarity joins: naive, All-Pairs, ppjoin, ppjoin+."""

from typing import List, Optional

from ..core.metrics import JoinStats
from ..data.records import RecordCollection
from ..result import JoinResult
from ..similarity.functions import SimilarityFunction
from .all_pairs import all_pairs_join
from .filters import (
    DEFAULT_MAXDEPTH,
    positional_admits,
    positional_max_overlap,
    suffix_admits,
    suffix_hamming_lower_bound,
)
from .naive import naive_threshold_join
from .ppjoin import ppjoin, ppjoin_plus
from .rs import threshold_join_rs, threshold_join_tagged

__all__ = [
    "threshold_join",
    "threshold_join_rs",
    "threshold_join_tagged",
    "naive_threshold_join",
    "all_pairs_join",
    "ppjoin",
    "ppjoin_plus",
    "positional_admits",
    "positional_max_overlap",
    "suffix_admits",
    "suffix_hamming_lower_bound",
    "DEFAULT_MAXDEPTH",
]

_ALGORITHMS = {
    "naive": naive_threshold_join,
    "all-pairs": all_pairs_join,
    "ppjoin": ppjoin,
    "ppjoin+": ppjoin_plus,
}


def threshold_join(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    algorithm: str = "ppjoin+",
    stats: Optional[JoinStats] = None,
) -> List[JoinResult]:
    """Dispatch a threshold self-join to one of the implemented algorithms.

    *algorithm* is one of ``naive``, ``all-pairs``, ``ppjoin``, ``ppjoin+``.
    All return identical result sets; they differ only in speed.
    """
    try:
        join = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            "unknown algorithm %r (choose from %s)"
            % (algorithm, ", ".join(sorted(_ALGORITHMS)))
        ) from None
    return join(collection, threshold, similarity=similarity, stats=stats)
