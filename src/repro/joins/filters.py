"""Candidate filters: size, positional, and suffix filtering.

These are the pruning techniques of ppjoin / ppjoin+ (Xiao et al., WWW'08)
that Section V-A of the top-k paper integrates, with the growing k-th
temporary similarity ``s_k`` standing in for the fixed threshold.

* **Size filtering** — records whose sizes cannot reach the threshold are
  skipped (Line 12 of Algorithm 3).  Implemented exactly via
  ``SimilarityFunction.size_compatible``.

* **Positional filtering** — knowing the 1-based positions ``(i, j)`` of a
  common token, the overlap can be at most ``1 + min(|x|-i, |y|-j)``
  (everything strictly after the common token, plus the token itself);
  compare against the required overlap α.

* **Suffix filtering** — the threshold is converted into a Hamming-distance
  budget on the record suffixes, and a recursive divide-and-conquer probe
  computes a lower bound of the true Hamming distance; pairs whose bound
  exceeds the budget are pruned before verification.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

from ..similarity.functions import SimilarityFunction

__all__ = [
    "positional_max_overlap",
    "positional_admits",
    "suffix_hamming_lower_bound",
    "suffix_admits",
    "DEFAULT_MAXDEPTH",
]

#: Recursion depth limit for suffix filtering.  The paper uses MAXDEPTH = 2
#: for word-token datasets (DBLP, TREC) and 4 for 3-gram datasets.
DEFAULT_MAXDEPTH = 2


def positional_max_overlap(
    size_x: int, size_y: int, pos_x: int, pos_y: int
) -> int:
    """Upper bound on ``|x ∩ y|`` given a common token at 1-based positions.

    Valid whenever no common token precedes ``(pos_x, pos_y)`` — true for
    the first common token found through prefix probing.
    """
    return 1 + min(size_x - pos_x, size_y - pos_y)


def positional_admits(
    similarity: SimilarityFunction,
    threshold: float,
    size_x: int,
    size_y: int,
    pos_x: int,
    pos_y: int,
    seen_overlap: int = 1,
) -> bool:
    """Positional filter: can the pair still reach *threshold*?

    *seen_overlap* counts common tokens already confirmed up to (and
    including) the current one; ppjoin's candidate accumulation passes its
    running count, the top-k join passes 1.
    """
    alpha = similarity.required_overlap(threshold, size_x, size_y)
    best = seen_overlap - 1 + positional_max_overlap(size_x, size_y, pos_x, pos_y)
    return best >= alpha


def _windowed_hamming_bound(
    x: Sequence[int],
    x_lo: int,
    x_hi: int,
    y: Sequence[int],
    y_lo: int,
    y_hi: int,
    budget: int,
    depth: int,
    maxdepth: int,
) -> int:
    """Recursive core of the suffix filter over index windows.

    Operating on ``x[x_lo:x_hi]`` / ``y[y_lo:y_hi]`` without materialising
    the slices — this runs once per surviving candidate, so allocations
    matter.  See :func:`suffix_hamming_lower_bound` for the algorithm.
    """
    size_x = x_hi - x_lo
    size_y = y_hi - y_lo
    if size_x > size_y:
        x, x_lo, x_hi, y, y_lo, y_hi = y, y_lo, y_hi, x, x_lo, x_hi
        size_x, size_y = size_y, size_x
    if size_x == 0:
        return size_y
    if depth > maxdepth:
        return size_y - size_x

    mid = y_lo + (size_y - 1) // 2
    pivot = y[mid]

    position = bisect_left(x, pivot, x_lo, x_hi)
    if position < x_hi and x[position] == pivot:
        x_split, unmatched = position + 1, 0
    else:
        x_split, unmatched = position, 1

    left_skew = abs((position - x_lo) - (mid - y_lo))
    right_skew = abs((x_hi - x_split) - (y_hi - mid - 1))
    bound = left_skew + right_skew + unmatched
    if bound > budget:
        return bound

    left_bound = _windowed_hamming_bound(
        x, x_lo, position, y, y_lo, mid,
        budget - right_skew - unmatched, depth + 1, maxdepth,
    )
    bound = left_bound + right_skew + unmatched
    if bound > budget:
        return bound
    right_bound = _windowed_hamming_bound(
        x, x_split, x_hi, y, mid + 1, y_hi,
        budget - left_bound - unmatched, depth + 1, maxdepth,
    )
    return left_bound + right_bound + unmatched


def suffix_hamming_lower_bound(
    x: Sequence[int],
    y: Sequence[int],
    budget: int,
    depth: int = 1,
    maxdepth: int = DEFAULT_MAXDEPTH,
) -> int:
    """Lower bound on the Hamming distance ``|x| + |y| - 2 |x ∩ y|``.

    Recursive partition probe from the ppjoin+ suffix filter: pick the
    middle token ``w`` of the longer array, split both arrays around ``w``
    (binary search in the shorter one — both are sorted), and recurse on the
    halves.  Tokens on opposite sides of the split can never match, so the
    per-half size differences already lower-bound the distance.  Recursion
    stops at *maxdepth* or as soon as the bound exceeds *budget* (the caller
    only needs to know whether the budget is blown).
    """
    return _windowed_hamming_bound(
        x, 0, len(x), y, 0, len(y), budget, depth, maxdepth
    )


def suffix_admits(
    similarity: SimilarityFunction,
    threshold: float,
    x: Sequence[int],
    y: Sequence[int],
    pos_x: int,
    pos_y: int,
    seen_overlap: int = 1,
    maxdepth: int = DEFAULT_MAXDEPTH,
    alpha: Optional[int] = None,
) -> bool:
    """Suffix filter: admit the pair only if its suffixes can still reach α.

    ``(pos_x, pos_y)`` are the 1-based positions of the common token that
    generated the candidate; the suffixes strictly after it must contribute
    at least ``α - seen_overlap`` more common tokens, which translates into
    the Hamming budget ``|xs| + |ys| - 2 (α - seen_overlap)``.  Callers that
    already computed the required overlap pass it as *alpha*.
    """
    if alpha is None:
        alpha = similarity.required_overlap(threshold, len(x), len(y))
    needed = alpha - seen_overlap
    if needed <= 0:
        return True
    suffix_x = len(x) - pos_x
    suffix_y = len(y) - pos_y
    budget = suffix_x + suffix_y - 2 * needed
    if budget < 0:
        return False
    bound = _windowed_hamming_bound(
        x, pos_x, len(x), y, pos_y, len(y), budget, 1, maxdepth
    )
    return bound <= budget
