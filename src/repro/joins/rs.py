"""Threshold similarity joins between two collections (R ⋈ S).

The R-S counterpart of the self-joins in this package: return all cross
pairs ``(r, s)`` with ``sim(r, s) >= t``.  The standard prefix-filtering
recipe applies with one asymmetry: index one side (S) under its *probing*
prefix — the index-reduction of Lemma 2 needs a size order between probe
and posting, which cross joins do not guarantee — then stream the other
side (R), probing with its probing prefix, size/positional filtering, and
verifying survivors.

Both sides must share a token universe; build them together with
:class:`repro.core.rs_join.TaggedCollection` or pass two collections whose
integer ranks are already aligned (e.g. both built from
``from_integer_sets`` over the same vocabulary).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.metrics import JoinStats
from ..core.rs_join import TaggedCollection
from ..data.records import RecordCollection
from ..index.inverted import InvertedIndex
from ..result import JoinResult
from ..similarity.functions import Jaccard, SimilarityFunction
from .filters import positional_max_overlap

__all__ = ["threshold_join_rs", "threshold_join_tagged"]


def threshold_join_rs(
    left: RecordCollection,
    right: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    stats: Optional[JoinStats] = None,
) -> List[JoinResult]:
    """All cross pairs with ``sim >= threshold``.

    Results carry ``(x, y) = (rid in left, rid in right)`` — note that
    unlike self-join results the two ids index *different* collections.
    Token ranks must be aligned across the two collections.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    sim = similarity or Jaccard()

    # Index the smaller side in full probing prefixes.
    index_side, probe_side, swapped = right, left, False
    if len(left) < len(right):
        index_side, probe_side, swapped = left, right, True

    index = InvertedIndex()
    for record in index_side:
        prefix = sim.probing_prefix_length(len(record), threshold)
        for position in range(prefix):
            index.add(record.tokens[position], record.rid, position + 1)
        if stats is not None:
            stats.index_entries += prefix

    results: List[JoinResult] = []
    for record in probe_side:
        size_x = len(record)
        tokens_x = record.tokens
        prefix = sim.probing_prefix_length(size_x, threshold)
        seen: Dict[int, bool] = {}
        for i in range(1, prefix + 1):
            for rid, j in index.postings(tokens_x[i - 1]):
                if rid in seen:
                    continue
                other = index_side[rid]
                size_y = len(other)
                alpha = sim.required_overlap(threshold, size_x, size_y)
                if alpha > (size_x if size_x < size_y else size_y):
                    seen[rid] = False
                    if stats is not None:
                        stats.size_pruned += 1
                    continue
                if positional_max_overlap(size_x, size_y, i, j) < alpha:
                    seen[rid] = False
                    if stats is not None:
                        stats.positional_pruned += 1
                    continue
                seen[rid] = True
                if stats is not None:
                    stats.candidates += 1
                    stats.verifications += 1
                value = sim.verify(tokens_x, other.tokens, threshold)
                if value >= threshold:
                    if swapped:
                        results.append(JoinResult(rid, record.rid, value))
                    else:
                        results.append(JoinResult(record.rid, rid, value))

    results.sort(key=lambda pair: (-pair.similarity, pair.x, pair.y))
    if stats is not None:
        stats.results = len(results)
    return results


def threshold_join_tagged(
    tagged: TaggedCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    stats: Optional[JoinStats] = None,
) -> List[JoinResult]:
    """Threshold join over a :class:`TaggedCollection` (cross pairs only).

    Runs a self-join over the union and filters to cross-side pairs —
    convenient when the sides were canonicalized jointly; results use the
    tagged collection's record ids.
    """
    from .ppjoin import ppjoin_plus

    pairs = ppjoin_plus(
        tagged.collection, threshold, similarity=similarity, stats=stats
    )
    return [
        pair for pair in pairs if tagged.side(pair.x) != tagged.side(pair.y)
    ]