"""ppjoin and ppjoin+ (Xiao, Wang, Lin, Yu — WWW'08).

The state-of-the-art threshold joins the paper builds on and benchmarks
against (as the engine inside ``pptopk``).  On top of All-Pairs they add:

* **positional filtering** — candidate accumulation keeps, per candidate,
  the number of prefix tokens matched so far; a new match at positions
  ``(i, j)`` only survives if ``A[y] + 1 + min(|x|-i, |y|-j)`` can still
  reach the required overlap α;
* **lazy size-based posting removal** — posting lists are filled in record
  size order, so once a posting's record is too small for the current
  (larger) probe it is too small forever and the list head is trimmed;
* **suffix filtering** (``plus=True`` — i.e. ppjoin+) — the first match of
  a candidate is additionally screened by the Hamming-distance suffix probe
  of :func:`repro.joins.filters.suffix_admits` with depth ``maxdepth``.

This implementation adds the **bitmap prefilter** of the accelerated
top-k kernels (``bitmap=True``, see
:func:`repro.data.records.signature_overlap_bound`): a candidate's first
prefix match checks the signature Hamming bound against α before the
suffix probe, discarding most doomed candidates for one XOR + popcount.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.metrics import JoinStats
from ..data.records import RecordCollection, signature_overlap_bound
from ..index.inverted import InvertedIndex
from ..result import JoinResult, sort_results
from ..similarity.functions import Jaccard, SimilarityFunction
from .filters import DEFAULT_MAXDEPTH, positional_max_overlap, suffix_admits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.tracer import Tracer

__all__ = ["ppjoin", "ppjoin_plus"]

#: Sentinel accumulator value marking a positionally pruned candidate.
_PRUNED = -(10**9)


def ppjoin(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    plus: bool = False,
    maxdepth: int = DEFAULT_MAXDEPTH,
    stats: Optional[JoinStats] = None,
    bitmap: bool = True,
    tracer: Optional["Tracer"] = None,
) -> List[JoinResult]:
    """Self-join returning all pairs with ``sim >= threshold``.

    With ``plus=True`` this is ppjoin+ (suffix filtering enabled).  With
    ``bitmap=True`` (default) each candidate's first match also checks
    the exact-safe bitmap-signature overlap bound — set ``False`` to
    reproduce the historical WWW'08 filter chain only.  *tracer* wraps
    the run in a ``ppjoin`` span and absorbs the run's
    :class:`~repro.core.metrics.JoinStats` into its metrics registry.
    """
    if tracer is not None:
        run_stats = stats if stats is not None else JoinStats()
        with tracer.span(
            "ppjoin", threshold=threshold, plus=plus, records=len(collection)
        ):
            results = _ppjoin_run(
                collection, threshold, similarity, plus, maxdepth,
                run_stats, bitmap,
            )
        tracer.metrics.absorb_join_stats(run_stats)
        return results
    return _ppjoin_run(
        collection, threshold, similarity, plus, maxdepth, stats, bitmap
    )


def _ppjoin_run(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction],
    plus: bool,
    maxdepth: int,
    stats: Optional[JoinStats],
    bitmap: bool,
) -> List[JoinResult]:
    """The WWW'08 join proper; see :func:`ppjoin` for the contract."""
    sim = similarity or Jaccard()
    index = InvertedIndex()
    results: List[JoinResult] = []
    signatures = collection.signatures if bitmap else None

    for x in collection:
        size_x = len(x)
        tokens_x = x.tokens
        probing_length = sim.probing_prefix_length(size_x, threshold)
        accumulated: Dict[int, int] = {}

        for i in range(1, probing_length + 1):
            token = tokens_x[i - 1]
            postings = index.postings(token)

            # Lazy size filtering: postings arrive in increasing record
            # size, so the undersized head can be dropped permanently.
            trim = 0
            while trim < len(postings) and not sim.size_compatible(
                threshold, size_x, len(collection[postings[trim][0]])
            ):
                trim += 1
            if trim:
                index.trim_head(token, trim)
                if stats is not None:
                    stats.size_pruned += trim

            for rid, j in postings:
                seen = accumulated.get(rid, 0)
                if seen == _PRUNED:
                    continue
                y = collection[rid]
                size_y = len(y)
                alpha = sim.required_overlap(threshold, size_x, size_y)
                best = seen + positional_max_overlap(size_x, size_y, i, j)
                if best < alpha:
                    accumulated[rid] = _PRUNED
                    if stats is not None:
                        stats.positional_pruned += 1
                    continue
                if signatures is not None and seen == 0:
                    # Bitmap prefilter on first encounter: one XOR +
                    # popcount bounds the overlap; below α the pair can
                    # never reach the threshold.
                    if (
                        signature_overlap_bound(
                            signatures[x.rid], signatures[rid],
                            size_x, size_y,
                        )
                        < alpha
                    ):
                        accumulated[rid] = _PRUNED
                        if stats is not None:
                            stats.bitmap_pruned += 1
                        continue
                if plus and seen == 0:
                    if not suffix_admits(
                        sim, threshold, tokens_x, y.tokens, i, j,
                        seen_overlap=1, maxdepth=maxdepth,
                    ):
                        accumulated[rid] = _PRUNED
                        if stats is not None:
                            stats.suffix_pruned += 1
                        continue
                accumulated[rid] = seen + 1

        for rid, seen in accumulated.items():
            if seen == _PRUNED or seen <= 0:
                continue
            y = collection[rid]
            if stats is not None:
                stats.candidates += 1
                stats.verifications += 1
            value = sim.verify(tokens_x, y.tokens, threshold)
            if value >= threshold:
                results.append(JoinResult.make(x.rid, y.rid, value))

        indexing_length = sim.indexing_prefix_length(size_x, threshold)
        for i in range(indexing_length):
            index.add(tokens_x[i], x.rid, i + 1)
        if stats is not None:
            stats.index_entries += indexing_length

    if stats is not None:
        stats.results = len(results)
    return sort_results(results)


def ppjoin_plus(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    maxdepth: int = DEFAULT_MAXDEPTH,
    stats: Optional[JoinStats] = None,
    tracer: Optional["Tracer"] = None,
) -> List[JoinResult]:
    """ppjoin+ — ppjoin with suffix filtering (the paper's `pptopk` engine)."""
    return ppjoin(
        collection,
        threshold,
        similarity=similarity,
        plus=True,
        maxdepth=maxdepth,
        stats=stats,
        tracer=tracer,
    )
