"""Naive O(n²) joins — the correctness oracle and the paper's strawman.

``naive_threshold_join`` scores every pair; it is what Section I calls the
"naïve algorithm" and what every optimized algorithm must agree with.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.metrics import JoinStats
from ..data.records import RecordCollection
from ..result import JoinResult, sort_results
from ..similarity.functions import Jaccard, SimilarityFunction

__all__ = ["naive_threshold_join"]


def naive_threshold_join(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    stats: Optional[JoinStats] = None,
) -> List[JoinResult]:
    """Self-join by scoring all pairs; returns pairs with ``sim >= threshold``.

    Quadratic — intended for tests and small baselines only.
    """
    sim = similarity or Jaccard()
    results: List[JoinResult] = []
    records = collection.records
    for a in range(len(records)):
        x = records[a]
        for b in range(a + 1, len(records)):
            y = records[b]
            if stats is not None:
                stats.candidates += 1
                stats.verifications += 1
            value = sim.similarity(x.tokens, y.tokens)
            if value >= threshold:
                results.append(JoinResult.make(x.rid, y.rid, value))
    if stats is not None:
        stats.results = len(results)
    return sort_results(results)
