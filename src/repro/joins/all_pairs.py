"""All-Pairs (Bayardo, Ma, Srikant — WWW'07), Algorithms 1–2 of the paper.

The canonical prefix-filtering threshold join: iterate records in increasing
size order, probe the inverted index with each record's *probing prefix* to
collect candidates, verify them, then index the record's *indexing prefix*
(the index-reduction of Lemma 2 applies because every later probe comes from
a record at least as large).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.metrics import JoinStats
from ..data.records import RecordCollection
from ..index.inverted import InvertedIndex
from ..result import JoinResult, sort_results
from ..similarity.functions import Jaccard, SimilarityFunction

__all__ = ["all_pairs_join"]


def all_pairs_join(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    stats: Optional[JoinStats] = None,
) -> List[JoinResult]:
    """Self-join returning all pairs with ``sim >= threshold``.

    The collection must be size-sorted, which :class:`RecordCollection`
    guarantees.  Candidates are accumulated per probed record (Lines 8–11 of
    Algorithm 1) with size filtering; each candidate is verified once.
    """
    sim = similarity or Jaccard()
    index = InvertedIndex()
    results: List[JoinResult] = []

    for x in collection:
        size_x = len(x)
        probing_length = sim.probing_prefix_length(size_x, threshold)
        overlap_count: Dict[int, int] = {}
        for i in range(probing_length):
            token = x.tokens[i]
            for rid, __ in index.postings(token):
                y = collection[rid]
                if not sim.size_compatible(threshold, size_x, len(y)):
                    if stats is not None:
                        stats.size_pruned += 1
                    continue
                overlap_count[rid] = overlap_count.get(rid, 0) + 1

        for rid in overlap_count:
            y = collection[rid]
            if stats is not None:
                stats.candidates += 1
                stats.verifications += 1
            value = sim.verify(x.tokens, y.tokens, threshold)
            if value >= threshold:
                results.append(JoinResult.make(x.rid, y.rid, value))

        indexing_length = sim.indexing_prefix_length(size_x, threshold)
        for i in range(indexing_length):
            index.add(x.tokens[i], x.rid, i + 1)
        if stats is not None:
            stats.index_entries += indexing_length

    if stats is not None:
        stats.results = len(results)
    return sort_results(results)
