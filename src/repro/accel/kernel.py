"""Kernelized posting-scan for the event-driven top-k join.

:func:`repro.core.topk_join._process_event` pays full Python object
overhead per posting scanned.  This module consolidates the per-posting
filter chain — size / bitmap / positional / suffix, with the α and
probing-prefix caches — into two interchangeable kernels:

* :class:`PythonScanKernel` — a pure-Python loop over the flat posting
  columns of :class:`repro.index.inverted.BoundedInvertedIndex`.  Same
  shape as the historical loop plus the **bitmap prefilter**: one
  XOR + popcount per candidate that passes the size filter bounds the
  true overlap from above (see
  :func:`repro.data.records.signature_overlap_bound`), so most doomed
  candidates never reach the suffix filter or the O(|x|+|y|) merge.

* :class:`NumpyScanKernel` — the batch path.  The whole posting list is
  prefiltered with vectorized size / bitmap / positional tests (the
  columns are viewed zero-copy via the buffer protocol), and only the
  survivors go through the sequential suffix-filter / merge / buffer
  machinery.  Used automatically by ``TopkOptions.accel = "on"`` when
  NumPy is importable.

Both kernels are *exact*: every test they add is a conservative upper
bound, so a candidate they prune can never reach the required overlap α.
The differential oracle (``repro fuzz``) cross-checks all kernels against
the brute-force reference, and the runtime invariants (``REPRO_CHECK=1``)
hold with acceleration on.

The α cache is keyed by ``(|x|, |y|)`` and the probing-prefix cache by
record size; both are shared across events and invalidated whenever
``s_k`` rises — the same discipline the historical loop applied per
event, amortized across the whole join.
"""

from __future__ import annotations

import time
from types import ModuleType
from typing import TYPE_CHECKING, Any, List, Optional, Set, Tuple, Union

from ..data.records import RecordCollection, popcount
from ..joins.filters import suffix_admits
from ..similarity.functions import SimilarityFunction
from ..similarity.overlap import overlap_with_common_positions as _merge

if TYPE_CHECKING:
    from ..core.metrics import TopkStats
    from ..core.results import TopKBuffer
    from ..core.topk_join import TopkOptions
    from ..core.verification import VerificationRegistry
    from ..index.inverted import BoundedInvertedIndex, PostingColumns
    from ..obs.tracer import Tracer
    from ..oracle.invariants import CheckHooks

Pair = Tuple[int, int]

__all__ = [
    "ACCEL_MODES",
    "make_kernel",
    "numpy_available",
    "resolve_accel_mode",
    "PythonScanKernel",
    "NumpyScanKernel",
]

#: Accepted values of ``TopkOptions.accel``.
ACCEL_MODES = ("on", "python", "numpy", "off")

_SIG_WORD_MASK = 0xFFFFFFFFFFFFFFFF

_np: Optional[ModuleType] = None
_np_checked = False


def _numpy() -> Optional[ModuleType]:
    """Import NumPy once, lazily; ``None`` when unavailable."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is a test dep
            numpy = None
        _np = numpy
    return _np


def numpy_available() -> bool:
    """Whether the NumPy batch kernel can run in this interpreter."""
    return _numpy() is not None


def resolve_accel_mode(mode: str) -> str:
    """Normalize ``TopkOptions.accel`` to ``"python"|"numpy"|"off"``.

    ``"on"`` selects the best available implementation (NumPy batch
    kernel when importable, pure-Python kernel otherwise); ``"numpy"``
    demands NumPy and raises when it is missing.
    """
    if mode not in ACCEL_MODES:
        raise ValueError("accel must be one of %s, got %r" % (ACCEL_MODES, mode))
    if mode == "on":
        return "numpy" if numpy_available() else "python"
    if mode == "numpy" and not numpy_available():
        raise ValueError("accel='numpy' requested but NumPy is not importable")
    return mode


def make_kernel(
    collection: RecordCollection,
    similarity: SimilarityFunction,
    options: "TopkOptions",
    buffer: "TopKBuffer",
    registry: "VerificationRegistry",
    seen_pairs: Optional[Set[Pair]],
    stats: "TopkStats",
    checks: Optional["CheckHooks"] = None,
) -> Optional[Union["PythonScanKernel", "_TracedKernel"]]:
    """Build the scan kernel for one join run (``None`` when accel is off).

    *seen_pairs* is the live verified-pair set of *registry* (or ``None``
    when verification dedup is off); it is captured once per join instead
    of once per event.  With ``options.trace`` set the kernel comes back
    wrapped in a timing proxy — the choice is made here, once, so the
    untraced hot path never tests a flag.
    """
    mode = resolve_accel_mode(options.accel)
    if mode == "off":
        return None
    cls = NumpyScanKernel if mode == "numpy" else PythonScanKernel
    kernel = cls(
        collection, similarity, options, buffer, registry, seen_pairs, stats, checks
    )
    tracer = options.trace
    if tracer is not None:
        return _TracedKernel(kernel, tracer)
    return kernel


class _TracedKernel:
    """Timing proxy around a scan kernel, chosen once at construction.

    Charges every posting scan to the tracer's ``kernel_scan``
    micro-phase accumulator.  A span per scan would swamp the span
    buffer (there is one scan per record per event), so only the
    ``(total seconds, call count)`` pair is kept; it exports as
    ``repro_phase_seconds_total{phase="kernel_scan"}``.
    """

    __slots__ = ("kernel", "_tracer")

    def __init__(self, kernel: "PythonScanKernel", tracer: "Tracer") -> None:
        self.kernel = kernel
        self._tracer = tracer

    def scan(
        self,
        probe_index: "BoundedInvertedIndex",
        token: int,
        rid: int,
        prefix: int,
        bound: float,
        external: float,
    ) -> None:
        begin = time.perf_counter()
        self.kernel.scan(probe_index, token, rid, prefix, bound, external)
        self._tracer.add_phase_time("kernel_scan", time.perf_counter() - begin)


class PythonScanKernel:
    """Pure-Python scan kernel: flat columns + bitmap prefilter."""

    def __init__(
        self,
        collection: RecordCollection,
        similarity: SimilarityFunction,
        options: "TopkOptions",
        buffer: "TopKBuffer",
        registry: "VerificationRegistry",
        seen_pairs: Optional[Set[Pair]],
        stats: "TopkStats",
        checks: Optional["CheckHooks"] = None,
    ) -> None:
        self.records = collection.records
        self.signatures = collection.signatures
        self.sim = similarity
        self.buffer = buffer
        self.registry = registry
        self.seen_pairs = seen_pairs
        self.stats = stats
        self.checks = checks
        self.positional_on = options.positional_filter
        self.suffix_on = options.suffix_filter
        self.maxdepth = options.maxdepth
        self.access_on = options.access_optimization
        # s_k-keyed caches shared across events (cleared whenever s_k
        # rises): α by (|x|, |y|), probing prefix length by size.
        self._cache_s_k = -1.0
        self._alpha_cache: dict = {}
        self._prefix_cache: dict = {}

    # ------------------------------------------------------------------

    def _sync_caches(self, s_k: float) -> None:
        # s_k is monotone non-decreasing over a run, so "changed" is
        # exactly "rose" — no float equality needed.
        if s_k > self._cache_s_k:
            self._cache_s_k = s_k
            self._alpha_cache.clear()
            self._prefix_cache.clear()

    # ------------------------------------------------------------------

    def scan(
        self,
        probe_index: "BoundedInvertedIndex",
        token: int,
        rid: int,
        prefix: int,
        bound: float,
        external: float,
    ) -> None:
        """Probe one posting list for record *rid* at prefix position.

        Mirrors the historical loop of ``_process_event`` with the bitmap
        prefilter inserted between the size filter and the positional
        filter, reading the flat posting columns directly.
        """
        columns = probe_index.columns(token)
        if columns is None:
            return
        col_rids = columns.rids
        total = len(col_rids)
        if total == 0:
            return
        col_positions = columns.positions
        col_bounds = columns.bounds

        records = self.records
        signatures = self.signatures
        sim = self.sim
        buffer = self.buffer
        registry = self.registry
        seen_pairs = self.seen_pairs
        checks = self.checks
        positional_on = self.positional_on
        suffix_on = self.suffix_on
        maxdepth = self.maxdepth
        access_on = self.access_on

        x = records[rid]
        tokens_x = x.tokens
        size_x = len(tokens_x)
        sig_x = signatures[rid]
        rest_x = size_x - prefix
        from_overlap = sim.from_overlap
        merge = _merge

        full = buffer.full
        s_k = buffer.s_k
        if external > 0.0:
            full = True
            if external > s_k:
                s_k = external
        self._sync_caches(s_k)
        alpha_cache = self._alpha_cache
        prefix_cache = self._prefix_cache
        required_overlap = sim.required_overlap
        prefix_length = sim.probing_prefix_length
        access_cutoff = (
            sim.accessing_cutoff(bound, s_k) if (access_on and full) else -1.0
        )

        candidates = duplicates = size_pruned = 0
        bitmap_checked = bitmap_pruned = 0
        positional_pruned = suffix_pruned = verifications = 0

        for position in range(total):
            bound_y = col_bounds[position]

            # Accessing-bound truncation (Algorithms 9-10): entries from
            # here on were inserted with even smaller bounds, and future
            # probes come with even smaller ``bound`` — the tail is dead
            # forever.  The cutoff is a conservative closed-form inverse;
            # the exact bound confirms before anything is deleted.
            if bound_y <= access_cutoff:
                if sim.accessing_upper_bound(bound, bound_y) <= s_k:
                    probe_index.truncate(token, position)
                    break

            candidates += 1
            rid_y = col_rids[position]
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if seen_pairs is not None and pair in seen_pairs:
                duplicates += 1
                continue

            tokens_y = records[rid_y].tokens
            size_y = len(tokens_y)
            if full:
                key = (size_x, size_y)
                alpha = alpha_cache.get(key)
                if alpha is None:
                    alpha = required_overlap(s_k, size_x, size_y)
                    alpha_cache[key] = alpha
            else:
                alpha = 0

            # Size filter: no partner of this size can reach s_k.
            if alpha > (size_x if size_x < size_y else size_y):
                size_pruned += 1
                continue
            if alpha > 0:
                # Bitmap prefilter: the signature Hamming bound caps the
                # overlap; below α the pair can never reach s_k.
                bitmap_checked += 1
                delta = popcount(sig_x ^ signatures[rid_y])
                if size_x + size_y - delta < 2 * alpha:
                    bitmap_pruned += 1
                    continue
            if positional_on:
                j = col_positions[position]
                rest_y = size_y - j
                best = 1 + (rest_x if rest_x < rest_y else rest_y)
                if best < alpha:
                    positional_pruned += 1
                    continue
            if suffix_on and alpha > 1:
                if not suffix_admits(
                    sim,
                    s_k,
                    tokens_x,
                    tokens_y,
                    prefix,
                    col_positions[position],
                    seen_overlap=1,
                    maxdepth=maxdepth,
                    alpha=alpha,
                ):
                    suffix_pruned += 1
                    continue

            # Let the merge cover the maximum prefixes before aborting so
            # the verification registry can decide re-generability exactly
            # (see OverlapProbe.scanned_x / scanned_y).
            scan_x = prefix_cache.get(size_x)
            if scan_x is None:
                scan_x = prefix_length(size_x, s_k)
                prefix_cache[size_x] = scan_x
            scan_y = prefix_cache.get(size_y)
            if scan_y is None:
                scan_y = prefix_length(size_y, s_k)
                prefix_cache[size_y] = scan_y

            probe = merge(tokens_x, tokens_y, alpha, scan_x, scan_y)
            verifications += 1
            if checks is not None:
                checks.on_verified(pair)
            if not probe.aborted:
                value = from_overlap(probe.overlap, size_x, size_y)
                if buffer.add(pair, value):
                    new_s_k = buffer.s_k
                    if external > new_s_k:
                        new_s_k = external
                    if new_s_k > s_k or not full:
                        s_k = new_s_k
                        full = buffer.full or external > 0.0
                        self._sync_caches(s_k)
                        access_cutoff = (
                            sim.accessing_cutoff(bound, s_k)
                            if (access_on and full)
                            else -1.0
                        )
            registry.record(pair, probe, size_x, size_y, s_k)

        stats = self.stats
        stats.candidates += candidates
        stats.duplicates_skipped += duplicates
        stats.size_pruned += size_pruned
        stats.bitmap_checked += bitmap_checked
        stats.bitmap_pruned += bitmap_pruned
        stats.positional_pruned += positional_pruned
        stats.suffix_pruned += suffix_pruned
        stats.verifications += verifications


class NumpyScanKernel(PythonScanKernel):
    """Batch scan kernel: vectorized size/bitmap/positional prefilter.

    The cheap per-posting tests run as NumPy array operations over the
    whole (truncation-bounded) posting list at once; only survivors enter
    the sequential suffix/merge/buffer loop.  All vector thresholds use
    the ``s_k`` captured at batch start, which is conservative: ``s_k``
    only rises, so a stale threshold prunes *less*, never more — the
    merge for each survivor still aborts against the current α.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        np = _numpy()
        if np is None:  # pragma: no cover - guarded by resolve_accel_mode
            raise RuntimeError("NumpyScanKernel requires NumPy")
        self._np = np
        records = self.records
        self._sizes_np = np.array(
            [len(record.tokens) for record in records], dtype=np.int64
        )
        self._present_sizes = (
            [int(s) for s in np.unique(self._sizes_np)] if records else []
        )
        self._max_size = self._present_sizes[-1] if self._present_sizes else 0
        # Signatures as (n, 2) uint64 words so XOR + popcount vectorize.
        sig_words = np.zeros((len(records), 2), dtype=np.uint64)
        for i, signature in enumerate(self.signatures):
            sig_words[i, 0] = signature & _SIG_WORD_MASK
            sig_words[i, 1] = (signature >> 64) & _SIG_WORD_MASK
        self._sig_words = sig_words
        if hasattr(np, "bitwise_count"):
            self._row_popcount = self._row_popcount_native
        else:  # NumPy < 2.0 (the 3.9 CI lane): 256-entry LUT on bytes.
            self._popcount_lut = np.array(
                [bin(i).count("1") for i in range(256)], dtype=np.uint8
            )
            self._row_popcount = self._row_popcount_lut
        self._alpha_table = None
        self._alpha_table_key = None

    # ------------------------------------------------------------------

    def _row_popcount_native(self, xor_words: Any) -> Any:
        np = self._np
        return np.bitwise_count(xor_words).sum(axis=1, dtype=np.int64)

    def _row_popcount_lut(self, xor_words: Any) -> Any:
        np = self._np
        as_bytes = xor_words.view(np.uint8).reshape(len(xor_words), -1)
        return self._popcount_lut[as_bytes].sum(axis=1, dtype=np.int64)

    def _alphas_for(self, size_x: int, s_k: float) -> Any:
        """α per partner size as an int64 table indexed by ``|y|``.

        Rebuilt only when ``(|x|, s_k)`` changes; only sizes actually
        present in the collection are filled (absent entries stay 0,
        which never prunes).
        """
        key = (size_x, s_k)
        if self._alpha_table_key != key:
            np = self._np
            table = np.zeros(self._max_size + 1, dtype=np.int64)
            required_overlap = self.sim.required_overlap
            for size in self._present_sizes:
                table[size] = required_overlap(s_k, size_x, size)
            self._alpha_table = table
            self._alpha_table_key = key
        return self._alpha_table

    # ------------------------------------------------------------------

    def scan(
        self,
        probe_index: "BoundedInvertedIndex",
        token: int,
        rid: int,
        prefix: int,
        bound: float,
        external: float,
    ) -> None:
        columns = probe_index.columns(token)
        if columns is None:
            return
        total = len(columns.rids)
        if total == 0:
            return

        buffer = self.buffer
        full = buffer.full
        s_k = buffer.s_k
        if external > 0.0:
            full = True
            if external > s_k:
                s_k = external
        if not full:
            # No threshold yet — nothing to prefilter; run the plain loop.
            PythonScanKernel.scan(
                self, probe_index, token, rid, prefix, bound, external
            )
            return

        np = self._np
        sim = self.sim
        col_bounds = columns.bounds

        # Accessing-bound truncation point: the exact accessing bound is
        # non-increasing along the (bound-sorted) list, so the first
        # failing posting is found by binary search — everything from it
        # on is dead for this and every future probe.
        batch = total
        if self.access_on and (
            sim.accessing_upper_bound(bound, col_bounds[total - 1]) <= s_k
        ):
            low, high = 0, total - 1
            while low < high:
                mid = (low + high) // 2
                if sim.accessing_upper_bound(bound, col_bounds[mid]) <= s_k:
                    high = mid
                else:
                    low = mid + 1
            batch = low

        stats = self.stats
        stats.candidates += batch
        if batch == 0:
            probe_index.truncate(token, 0)
            return

        records = self.records
        x = records[rid]
        tokens_x = x.tokens
        size_x = len(tokens_x)
        rest_x = size_x - prefix

        rids_np = np.frombuffer(columns.rids, dtype=np.int64)[:batch]
        sizes_y = self._sizes_np[rids_np]
        alphas = self._alphas_for(size_x, s_k)[sizes_y]

        # Size filter: α above min(|x|, |y|) is unreachable.
        ok = alphas <= np.minimum(sizes_y, size_x)
        passed_size = int(ok.sum())
        stats.size_pruned += batch - passed_size
        stats.bitmap_checked += passed_size

        # Bitmap prefilter: vectorized XOR + popcount Hamming bound.
        sig_x = self.signatures[rid]
        x_words = np.array(
            [sig_x & _SIG_WORD_MASK, (sig_x >> 64) & _SIG_WORD_MASK],
            dtype=np.uint64,
        )
        hamming = self._row_popcount(self._sig_words[rids_np] ^ x_words)
        ok_bitmap = size_x + sizes_y - hamming >= 2 * alphas
        stats.bitmap_pruned += int((ok & ~ok_bitmap).sum())
        ok &= ok_bitmap

        # Positional filter (Section V-A), vectorized.
        if self.positional_on:
            positions = np.frombuffer(columns.positions, dtype=np.int64)[:batch]
            best = 1 + np.minimum(rest_x, sizes_y - positions)
            ok_positional = best >= alphas
            stats.positional_pruned += int((ok & ~ok_positional).sum())
            ok &= ok_positional
            del positions

        # Drop the zero-copy views before any column mutation: a live
        # buffer export would make the tail cut a BufferError.
        del rids_np

        survivors = np.nonzero(ok)[0]
        if len(survivors):
            self._process_survivors(
                survivors.tolist(),
                columns,
                rid,
                tokens_x,
                size_x,
                prefix,
                external,
                full,
                s_k,
            )
        if batch < total:
            probe_index.truncate(token, batch)

    # ------------------------------------------------------------------

    def _process_survivors(
        self,
        survivors: List[int],
        columns: "PostingColumns",
        rid: int,
        tokens_x: Tuple[int, ...],
        size_x: int,
        prefix: int,
        external: float,
        full: bool,
        s_k: float,
    ) -> None:
        """Sequential tail for prefilter survivors: suffix, merge, buffer.

        Runs under the *current* ``s_k`` (which may rise mid-loop): α is
        re-read from the shared cache per survivor, so late survivors are
        still size-checked against the newest threshold before the merge.
        """
        records = self.records
        sim = self.sim
        buffer = self.buffer
        registry = self.registry
        seen_pairs = self.seen_pairs
        checks = self.checks
        suffix_on = self.suffix_on
        maxdepth = self.maxdepth
        col_rids = columns.rids
        col_positions = columns.positions
        self._sync_caches(s_k)
        alpha_cache = self._alpha_cache
        prefix_cache = self._prefix_cache
        required_overlap = sim.required_overlap
        prefix_length = sim.probing_prefix_length
        from_overlap = sim.from_overlap
        merge = _merge

        duplicates = size_pruned = suffix_pruned = verifications = 0

        for index in survivors:
            rid_y = col_rids[index]
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if seen_pairs is not None and pair in seen_pairs:
                duplicates += 1
                continue
            tokens_y = records[rid_y].tokens
            size_y = len(tokens_y)
            key = (size_x, size_y)
            alpha = alpha_cache.get(key)
            if alpha is None:
                alpha = required_overlap(s_k, size_x, size_y)
                alpha_cache[key] = alpha
            # s_k may have risen since the vector prefilter ran; re-apply
            # the size test so impossible merges are not attempted.
            if alpha > (size_x if size_x < size_y else size_y):
                size_pruned += 1
                continue
            if suffix_on and alpha > 1:
                if not suffix_admits(
                    sim,
                    s_k,
                    tokens_x,
                    tokens_y,
                    prefix,
                    col_positions[index],
                    seen_overlap=1,
                    maxdepth=maxdepth,
                    alpha=alpha,
                ):
                    suffix_pruned += 1
                    continue
            scan_x = prefix_cache.get(size_x)
            if scan_x is None:
                scan_x = prefix_length(size_x, s_k)
                prefix_cache[size_x] = scan_x
            scan_y = prefix_cache.get(size_y)
            if scan_y is None:
                scan_y = prefix_length(size_y, s_k)
                prefix_cache[size_y] = scan_y

            probe = merge(tokens_x, tokens_y, alpha, scan_x, scan_y)
            verifications += 1
            if checks is not None:
                checks.on_verified(pair)
            if not probe.aborted:
                value = from_overlap(probe.overlap, size_x, size_y)
                if buffer.add(pair, value):
                    new_s_k = buffer.s_k
                    if external > new_s_k:
                        new_s_k = external
                    if new_s_k > s_k:
                        s_k = new_s_k
                        self._sync_caches(s_k)
            registry.record(pair, probe, size_x, size_y, s_k)

        stats = self.stats
        stats.duplicates_skipped += duplicates
        stats.size_pruned += size_pruned
        stats.suffix_pruned += suffix_pruned
        stats.verifications += verifications
