"""Kernelized posting-scan for the event-driven top-k join.

:func:`repro.core.topk_join._process_event` pays full Python object
overhead per posting scanned.  This module consolidates the per-posting
filter chain — size / bitmap / positional / suffix, with the α and
probing-prefix caches — into two interchangeable kernels:

* :class:`PythonScanKernel` — a pure-Python loop over the flat posting
  columns of :class:`repro.index.inverted.BoundedInvertedIndex`.  Same
  shape as the historical loop plus the **bitmap prefilter**: one
  XOR + popcount per candidate that passes the size filter bounds the
  true overlap from above (see
  :func:`repro.data.records.signature_overlap_bound`), so most doomed
  candidates never reach the suffix filter or the O(|x|+|y|) merge.

* :class:`NumpyScanKernel` — the batch path.  The whole posting list is
  prefiltered with vectorized size / bitmap / positional tests (the
  columns are viewed zero-copy via the buffer protocol), and only the
  survivors go through the sequential suffix-filter / merge / buffer
  machinery.  Used automatically by ``TopkOptions.accel = "on"`` when
  NumPy is importable.

Both kernels are *exact*: every test they add is a conservative upper
bound, so a candidate they prune can never reach the required overlap α.
The differential oracle (``repro fuzz``) cross-checks all kernels against
the brute-force reference, and the runtime invariants (``REPRO_CHECK=1``)
hold with acceleration on.

The α cache is keyed by ``(|x|, |y|)`` and the probing-prefix cache by
record size; both are shared across events and invalidated whenever
``s_k`` rises — the same discipline the historical loop applied per
event, amortized across the whole join.
"""

from __future__ import annotations

import time
from types import ModuleType
from typing import TYPE_CHECKING, Any, List, Optional, Set, Tuple, Union

from ..data.records import RecordCollection, popcount, signature_width
from ..joins.filters import suffix_admits
from ..similarity.functions import SimilarityFunction
from ..similarity.overlap import OverlapProbe
from ..similarity.overlap import overlap_with_common_positions as _merge

if TYPE_CHECKING:
    from ..core.metrics import TopkStats
    from ..core.results import TopKBuffer
    from ..core.topk_join import TopkOptions
    from ..core.verification import VerificationRegistry
    from ..index.inverted import BoundedInvertedIndex, PostingColumns
    from ..obs.tracer import Tracer
    from ..oracle.invariants import CheckHooks

Pair = Tuple[int, int]

__all__ = [
    "ACCEL_MODES",
    "make_kernel",
    "native_available",
    "numpy_available",
    "resolve_accel_mode",
    "PythonScanKernel",
    "NumpyScanKernel",
]

#: Accepted values of ``TopkOptions.accel``.
ACCEL_MODES = ("on", "native", "numpy", "python", "off")

_SIG_WORD_MASK = 0xFFFFFFFFFFFFFFFF

#: Sentinel threshold meaning "size filter already killed this |y|"
#: (no reachable Hamming bound ever satisfies it).
_TAB_INF = 1 << 62

#: Batch verification keeps one int64 position map over the token
#: universe; above this many distinct tokens the map would dominate the
#: working set, so the kernel falls back to the sequential tail.
_BATCH_UNIVERSE_LIMIT = 1 << 24

_np: Optional[ModuleType] = None
_np_checked = False


def _numpy() -> Optional[ModuleType]:
    """Import NumPy once, lazily; ``None`` when unavailable."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is a test dep
            numpy = None
        _np = numpy
    return _np


def numpy_available() -> bool:
    """Whether the NumPy batch kernel can run in this interpreter."""
    return _numpy() is not None


def native_available() -> bool:
    """Whether the numba-compiled kernel can run in this interpreter.

    True only when numba imports *and* a probe function actually
    compiles — platforms where the JIT backend is broken fall off the
    escalation ladder the same way a missing install does.
    """
    from .native import native_usable

    return native_usable()


def resolve_accel_mode(mode: str) -> str:
    """Normalize ``TopkOptions.accel`` to ``"native"|"numpy"|"python"|"off"``.

    ``"on"`` selects the best always-available implementation (NumPy
    batch kernel when importable, pure-Python kernel otherwise);
    ``"native"`` opts into the numba-compiled kernel and *falls back*
    down the same ladder (NumPy, then pure Python) when numba is
    missing or cannot compile — the compiled path is an accelerator,
    never a dependency.  ``"numpy"`` demands NumPy and raises when it
    is missing.
    """
    if mode not in ACCEL_MODES:
        raise ValueError("accel must be one of %s, got %r" % (ACCEL_MODES, mode))
    if mode == "native":
        if native_available():
            return "native"
        mode = "on"
    if mode == "on":
        return "numpy" if numpy_available() else "python"
    if mode == "numpy" and not numpy_available():
        raise ValueError("accel='numpy' requested but NumPy is not importable")
    return mode


def make_kernel(
    collection: RecordCollection,
    similarity: SimilarityFunction,
    options: "TopkOptions",
    buffer: "TopKBuffer",
    registry: "VerificationRegistry",
    seen_pairs: Optional[Set[Pair]],
    stats: "TopkStats",
    checks: Optional["CheckHooks"] = None,
) -> Optional[Union["PythonScanKernel", "_TracedKernel"]]:
    """Build the scan kernel for one join run (``None`` when accel is off).

    *seen_pairs* is the live verified-pair set of *registry* (or ``None``
    when verification dedup is off); it is captured once per join instead
    of once per event.  With ``options.trace`` set the kernel comes back
    wrapped in a timing proxy — the choice is made here, once, so the
    untraced hot path never tests a flag.
    """
    mode = resolve_accel_mode(options.accel)
    if mode == "off":
        return None
    if mode == "native":
        from .native import NativeScanKernel

        cls: type = NativeScanKernel
    elif mode == "numpy":
        cls = NumpyScanKernel
    else:
        cls = PythonScanKernel
    kernel = cls(
        collection, similarity, options, buffer, registry, seen_pairs, stats, checks
    )
    tracer = options.trace
    if tracer is not None:
        return _TracedKernel(kernel, tracer)
    return kernel


class _TracedKernel:
    """Timing proxy around a scan kernel, chosen once at construction.

    Charges every posting scan to the tracer's ``kernel_scan``
    micro-phase accumulator.  A span per scan would swamp the span
    buffer (there is one scan per record per event), so only the
    ``(total seconds, call count)`` pair is kept; it exports as
    ``repro_phase_seconds_total{phase="kernel_scan"}``.
    """

    __slots__ = ("kernel", "_tracer")

    def __init__(self, kernel: "PythonScanKernel", tracer: "Tracer") -> None:
        self.kernel = kernel
        self._tracer = tracer

    def scan(
        self,
        probe_index: "BoundedInvertedIndex",
        token: int,
        rid: int,
        prefix: int,
        bound: float,
        external: float,
    ) -> None:
        begin = time.perf_counter()
        self.kernel.scan(probe_index, token, rid, prefix, bound, external)
        self._tracer.add_phase_time("kernel_scan", time.perf_counter() - begin)


class PythonScanKernel:
    """Pure-Python scan kernel: flat columns + bitmap prefilter."""

    def __init__(
        self,
        collection: RecordCollection,
        similarity: SimilarityFunction,
        options: "TopkOptions",
        buffer: "TopKBuffer",
        registry: "VerificationRegistry",
        seen_pairs: Optional[Set[Pair]],
        stats: "TopkStats",
        checks: Optional["CheckHooks"] = None,
    ) -> None:
        self.records = collection.records
        self.sig_bits = signature_width(options.sig_bits)
        self.signatures = collection.signatures_at(self.sig_bits)
        self.universe_size = collection.universe_size
        self.sim = similarity
        self.buffer = buffer
        self.registry = registry
        self.seen_pairs = seen_pairs
        self.stats = stats
        self.checks = checks
        self.positional_on = options.positional_filter
        self.suffix_on = options.suffix_filter
        self.maxdepth = options.maxdepth
        self.access_on = options.access_optimization
        #: Second-generation batch verification (only the batch kernels
        #: read it; the pure-Python loop always merges sequentially).
        self.batch_verify = options.batch_verify
        # s_k-keyed caches shared across events (cleared whenever s_k
        # rises): α by (|x|, |y|), probing prefix length by size.
        self._cache_s_k = -1.0
        self._alpha_cache: dict = {}
        self._prefix_cache: dict = {}

    # ------------------------------------------------------------------

    def _sync_caches(self, s_k: float) -> None:
        # s_k is monotone non-decreasing over a run, so "changed" is
        # exactly "rose" — no float equality needed.
        if s_k > self._cache_s_k:
            self._cache_s_k = s_k
            self._alpha_cache.clear()
            self._prefix_cache.clear()

    # ------------------------------------------------------------------

    def scan(
        self,
        probe_index: "BoundedInvertedIndex",
        token: int,
        rid: int,
        prefix: int,
        bound: float,
        external: float,
    ) -> None:
        """Probe one posting list for record *rid* at prefix position.

        Mirrors the historical loop of ``_process_event`` with the bitmap
        prefilter inserted between the size filter and the positional
        filter, reading the flat posting columns directly.
        """
        columns = probe_index.columns(token)
        if columns is None:
            return
        col_rids = columns.rids
        total = len(col_rids)
        if total == 0:
            return
        col_positions = columns.positions
        col_bounds = columns.bounds

        records = self.records
        signatures = self.signatures
        sim = self.sim
        buffer = self.buffer
        registry = self.registry
        seen_pairs = self.seen_pairs
        checks = self.checks
        positional_on = self.positional_on
        suffix_on = self.suffix_on
        maxdepth = self.maxdepth
        access_on = self.access_on

        x = records[rid]
        tokens_x = x.tokens
        size_x = len(tokens_x)
        sig_x = signatures[rid]
        rest_x = size_x - prefix
        from_overlap = sim.from_overlap
        merge = _merge

        full = buffer.full
        s_k = buffer.s_k
        if external > 0.0:
            full = True
            if external > s_k:
                s_k = external
        self._sync_caches(s_k)
        alpha_cache = self._alpha_cache
        prefix_cache = self._prefix_cache
        required_overlap = sim.required_overlap
        prefix_length = sim.probing_prefix_length
        access_cutoff = (
            sim.accessing_cutoff(bound, s_k) if (access_on and full) else -1.0
        )

        candidates = duplicates = size_pruned = 0
        bitmap_checked = bitmap_pruned = 0
        positional_pruned = suffix_pruned = verifications = 0

        for position in range(total):
            bound_y = col_bounds[position]

            # Accessing-bound truncation (Algorithms 9-10): entries from
            # here on were inserted with even smaller bounds, and future
            # probes come with even smaller ``bound`` — the tail is dead
            # forever.  The cutoff is a conservative closed-form inverse;
            # the exact bound confirms before anything is deleted.
            if bound_y <= access_cutoff:
                if sim.accessing_upper_bound(bound, bound_y) <= s_k:
                    probe_index.truncate(token, position)
                    break

            candidates += 1
            rid_y = col_rids[position]
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if seen_pairs is not None and pair in seen_pairs:
                duplicates += 1
                continue

            tokens_y = records[rid_y].tokens
            size_y = len(tokens_y)
            if full:
                key = (size_x, size_y)
                alpha = alpha_cache.get(key)
                if alpha is None:
                    alpha = required_overlap(s_k, size_x, size_y)
                    alpha_cache[key] = alpha
            else:
                alpha = 0

            # Size filter: no partner of this size can reach s_k.
            if alpha > (size_x if size_x < size_y else size_y):
                size_pruned += 1
                continue
            if alpha > 0:
                # Bitmap prefilter: the signature Hamming bound caps the
                # overlap; below α the pair can never reach s_k.
                bitmap_checked += 1
                delta = popcount(sig_x ^ signatures[rid_y])
                if size_x + size_y - delta < 2 * alpha:
                    bitmap_pruned += 1
                    continue
            if positional_on:
                j = col_positions[position]
                rest_y = size_y - j
                best = 1 + (rest_x if rest_x < rest_y else rest_y)
                if best < alpha:
                    positional_pruned += 1
                    continue
            if suffix_on and alpha > 1:
                if not suffix_admits(
                    sim,
                    s_k,
                    tokens_x,
                    tokens_y,
                    prefix,
                    col_positions[position],
                    seen_overlap=1,
                    maxdepth=maxdepth,
                    alpha=alpha,
                ):
                    suffix_pruned += 1
                    continue

            # Let the merge cover the maximum prefixes before aborting so
            # the verification registry can decide re-generability exactly
            # (see OverlapProbe.scanned_x / scanned_y).
            scan_x = prefix_cache.get(size_x)
            if scan_x is None:
                scan_x = prefix_length(size_x, s_k)
                prefix_cache[size_x] = scan_x
            scan_y = prefix_cache.get(size_y)
            if scan_y is None:
                scan_y = prefix_length(size_y, s_k)
                prefix_cache[size_y] = scan_y

            probe = merge(tokens_x, tokens_y, alpha, scan_x, scan_y)
            verifications += 1
            if checks is not None:
                checks.on_verified(pair)
            if not probe.aborted:
                value = from_overlap(probe.overlap, size_x, size_y)
                if buffer.add(pair, value):
                    new_s_k = buffer.s_k
                    if external > new_s_k:
                        new_s_k = external
                    if new_s_k > s_k or not full:
                        s_k = new_s_k
                        full = buffer.full or external > 0.0
                        self._sync_caches(s_k)
                        access_cutoff = (
                            sim.accessing_cutoff(bound, s_k)
                            if (access_on and full)
                            else -1.0
                        )
            registry.record(pair, probe, size_x, size_y, s_k)

        stats = self.stats
        stats.candidates += candidates
        stats.duplicates_skipped += duplicates
        stats.size_pruned += size_pruned
        stats.bitmap_checked += bitmap_checked
        stats.bitmap_pruned += bitmap_pruned
        stats.positional_pruned += positional_pruned
        stats.suffix_pruned += suffix_pruned
        stats.verifications += verifications


class NumpyScanKernel(PythonScanKernel):
    """Batch scan kernel: vectorized prefilter plus batched verification.

    The cheap per-posting tests — size, word-parallel bitmap (at any
    supported signature width), positional — run as NumPy array
    operations over the whole (truncation-bounded) posting list at once.
    Survivors are then *verified in one vectorized pass* over the flat
    token columns (``batch_verify``, the second-generation default): a
    position map over the token universe marks the probing record's
    tokens, one gather over the survivors' concatenated token slices
    counts exact overlaps and recovers the first/second common-token
    positions Algorithm 6's dedup rule needs, and only the buffer/
    registry feed stays sequential.  With ``batch_verify=False`` the
    first-generation tail runs instead: per-survivor Python
    suffix-filter + early-abort merge.

    All vector thresholds use the ``s_k`` captured at batch start, which
    is conservative: ``s_k`` only rises, so a stale threshold prunes
    *less*, never more; every survivor is verified exactly, so a stale
    α can never cost correctness either.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        np = _numpy()
        if np is None:  # pragma: no cover - guarded by resolve_accel_mode
            raise RuntimeError("NumpyScanKernel requires NumPy")
        self._np = np
        records = self.records
        self._sizes_np = np.array(
            [len(record.tokens) for record in records], dtype=np.int64
        )
        self._present_sizes = (
            [int(s) for s in np.unique(self._sizes_np)] if records else []
        )
        self._max_size = self._present_sizes[-1] if self._present_sizes else 0
        # Signatures as (n, words) uint64 so XOR + popcount vectorize at
        # the configured width (sig_bits // 64 words per record).
        words = self.sig_bits // 64
        self._sig_word_count = words
        sig_words = np.zeros((len(records), words), dtype=np.uint64)
        signatures = self.signatures
        for w in range(words):
            shift = 64 * w
            sig_words[:, w] = [
                (signature >> shift) & _SIG_WORD_MASK
                for signature in signatures
            ]
        self._sig_words = sig_words
        # At one or two words (64/128-bit) a per-word contiguous column
        # beats the (n, words) row gather: np.take on a flat array plus
        # a uint8 popcount add, no axis reduction.  Word popcounts are
        # <= 64 so a two-word uint8 sum cannot overflow; wider widths
        # could (4 * 64 = 256), so they keep the row-matrix path.
        has_bitwise_count = hasattr(np, "bitwise_count")
        self._sig_cols = (
            [np.ascontiguousarray(sig_words[:, w]) for w in range(words)]
            if has_bitwise_count and words <= 2
            else None
        )
        if has_bitwise_count:
            self._row_popcount = self._row_popcount_native
        else:  # NumPy < 2.0 (the 3.9 CI lane): 256-entry LUT on bytes.
            self._popcount_lut = np.array(
                [bin(i).count("1") for i in range(256)], dtype=np.uint8
            )
            self._row_popcount = self._row_popcount_lut
        # Per-(|x|, s_k) packed threshold tables (see _threshold_tab);
        # a dict, not a single slot: the event queue interleaves
        # records of different sizes, and a one-entry cache would
        # rebuild the table on nearly every event.
        self._tab_cache: dict = {}
        # Batched-verification state, built lazily on the first batch
        # (a join whose buffer never fills pays nothing for it).
        self._batch_on = (
            self.batch_verify and self.universe_size <= _BATCH_UNIVERSE_LIMIT
        )
        self._tok_offsets: Any = None
        self._tok_flat: Any = None
        self._pos_map: Any = None

    def _sync_caches(self, s_k: float) -> None:
        if s_k > self._cache_s_k:
            self._tab_cache.clear()
        PythonScanKernel._sync_caches(self, s_k)

    def _ensure_batch_state(self) -> None:
        """Flatten the token columns + allocate the universe position map."""
        if self._tok_flat is not None:
            return
        np = self._np
        records = self.records
        offsets = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(self._sizes_np, out=offsets[1:])
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        for i, record in enumerate(records):
            flat[offsets[i] : offsets[i + 1]] = record.tokens
        self._tok_offsets = offsets
        self._tok_flat = flat
        self._pos_map = np.zeros(self.universe_size, dtype=np.int64)

    # ------------------------------------------------------------------

    def _row_popcount_native(self, xor_words: Any) -> Any:
        np = self._np
        return np.bitwise_count(xor_words).sum(axis=1, dtype=np.int64)

    def _row_popcount_lut(self, xor_words: Any) -> Any:
        np = self._np
        as_bytes = xor_words.view(np.uint8).reshape(len(xor_words), -1)
        return self._popcount_lut[as_bytes].sum(axis=1, dtype=np.int64)

    def _threshold_tab(self, size_x: int, s_k: float) -> Any:
        """Packed per-``|y|`` thresholds: one gather serves every filter.

        Returns two int64 tables of length ``max_size + 1`` indexed by
        partner size.  The first holds the bitmap threshold ``2α - |x|``
        (a candidate passes iff ``|y| - hamming >= tab0[|y|]``), with
        :data:`_TAB_INF` standing in whenever the size filter already
        rules the pair out (``α > min(|x|, |y|)``) — no reachable
        Hamming bound satisfies it, so the size filter costs nothing
        extra.  The second holds ``α - 1``, the positional-filter
        threshold: ``min(rest_x, |y| - position) >= α - 1`` splits into
        two scalar compares.  Only sizes present in the collection are
        filled; absent entries keep the sentinel (they can never be
        gathered).
        """
        key = (size_x, s_k)
        tab = self._tab_cache.get(key)
        if tab is None:
            np = self._np
            tab0 = np.full(self._max_size + 1, _TAB_INF, dtype=np.int64)
            tab1 = np.full(self._max_size + 1, _TAB_INF, dtype=np.int64)
            required_overlap = self.sim.required_overlap
            for size in self._present_sizes:
                alpha = required_overlap(s_k, size_x, size)
                if alpha <= (size if size < size_x else size_x):
                    tab0[size] = 2 * alpha - size_x
                    tab1[size] = alpha - 1
            tab = (tab0, tab1)
            self._tab_cache[key] = tab
        return tab

    # ------------------------------------------------------------------

    def scan(
        self,
        probe_index: "BoundedInvertedIndex",
        token: int,
        rid: int,
        prefix: int,
        bound: float,
        external: float,
    ) -> None:
        columns = probe_index.columns(token)
        if columns is None:
            return
        total = len(columns.rids)
        if total == 0:
            return

        buffer = self.buffer
        full = buffer.full
        s_k = buffer.s_k
        if external > 0.0:
            full = True
            if external > s_k:
                s_k = external
        if not full:
            # No threshold yet — nothing to prefilter; run the plain loop.
            PythonScanKernel.scan(
                self, probe_index, token, rid, prefix, bound, external
            )
            return

        np = self._np
        sim = self.sim
        col_bounds = columns.bounds

        # Accessing-bound truncation point: the exact accessing bound is
        # non-increasing along the (bound-sorted) list, so the first
        # failing posting is found by binary search — everything from it
        # on is dead for this and every future probe.
        batch = total
        if self.access_on and (
            sim.accessing_upper_bound(bound, col_bounds[total - 1]) <= s_k
        ):
            low, high = 0, total - 1
            while low < high:
                mid = (low + high) // 2
                if sim.accessing_upper_bound(bound, col_bounds[mid]) <= s_k:
                    high = mid
                else:
                    low = mid + 1
            batch = low

        stats = self.stats
        stats.candidates += batch
        if batch == 0:
            probe_index.truncate(token, 0)
            return

        records = self.records
        x = records[rid]
        tokens_x = x.tokens
        size_x = len(tokens_x)
        rest_x = size_x - prefix

        rids_np = np.frombuffer(columns.rids, dtype=np.int64)[:batch]
        sizes_y = self._sizes_np.take(rids_np, mode="clip")
        tab = self._threshold_tab(size_x, s_k)
        positions = (
            np.frombuffer(columns.positions, dtype=np.int64)[:batch]
            if self.positional_on
            else None
        )

        ok, passed_size, passed_bitmap = self._prefilter_core(
            rid, rids_np, sizes_y, positions, tab, rest_x
        )
        survivors = ok.nonzero()[0]
        # Derive first-killing-filter attribution from the pass counts,
        # matching the sequential loop's accounting.
        stats.size_pruned += batch - passed_size
        stats.bitmap_checked += passed_size
        stats.bitmap_pruned += passed_size - passed_bitmap
        stats.positional_pruned += passed_bitmap - len(survivors)
        # Fancy indexing copies, so survivor rids stay valid after the
        # zero-copy views below are dropped.
        survivor_rids = rids_np[survivors] if len(survivors) else None

        # Drop the zero-copy views before any column mutation: a live
        # buffer export would make the tail cut a BufferError.
        del rids_np, positions

        if survivor_rids is not None:
            if self._batch_on:
                self._verify_survivors_batched(
                    survivor_rids, rid, tokens_x, size_x, external, s_k
                )
            else:
                self._process_survivors(
                    survivors.tolist(),
                    columns,
                    rid,
                    tokens_x,
                    size_x,
                    prefix,
                    external,
                    full,
                    s_k,
                )
        if batch < total:
            probe_index.truncate(token, batch)

    # ------------------------------------------------------------------

    def _prefilter_core(
        self,
        rid: int,
        rids_np: Any,
        sizes_y: Any,
        positions: Any,
        tab: Any,
        rest_x: int,
    ) -> Tuple[Any, int, int]:
        """Size / bitmap / positional tests over one posting batch.

        *tab* is the packed :meth:`_threshold_tab` for the probing
        record.  Returns ``(ok_mask, passed_size, passed_bitmap)``: the
        survivor mask plus how many candidates passed the size filter
        and how many also passed the bitmap filter, from which the
        caller derives first-killing-filter attribution.  The native
        kernel overrides exactly this method with one fused compiled
        loop; everything around it (candidate set, truncation,
        verification) is shared.
        """
        np = self._np
        # Bound-method takes with mode="clip": the module-level np.take
        # goes through two layers of dispatch per call, which at ~8.5k
        # small batches per join is real time; "clip" skips the bounds
        # check (every index here is a valid rid / record size).
        t_bitmap = tab[0].take(sizes_y, mode="clip")
        # The size filter is folded into the bitmap compare: size-killed
        # partner sizes carry the _TAB_INF sentinel, which no Hamming
        # bound can reach.
        passed_size = len(sizes_y) - int(np.count_nonzero(t_bitmap == _TAB_INF))

        # Bitmap prefilter: word-parallel XOR + popcount Hamming bound;
        # |x| + |y| - hamming >= 2α rearranged as |y| - hamming >= 2α - |x|.
        cols = self._sig_cols
        if cols is not None:
            # 64/128-bit fast path: flat per-word takes, uint8 popcount
            # add — no row gather, no axis reduction.
            bitwise_count = np.bitwise_count
            col = cols[0]
            hamming = bitwise_count(col.take(rids_np, mode="clip") ^ col[rid])
            if len(cols) == 2:
                col = cols[1]
                hamming += bitwise_count(col.take(rids_np, mode="clip") ^ col[rid])
        else:
            hamming = self._row_popcount(
                self._sig_words[rids_np] ^ self._sig_words[rid]
            )
        ok = sizes_y - hamming >= t_bitmap
        passed_bitmap = int(np.count_nonzero(ok))

        # Positional filter (Section V-A): min(rest_x, |y| - position)
        # >= α - 1 as two scalar-threshold compares (rest_x is scalar).
        if positions is not None:
            t_pos = tab[1].take(sizes_y, mode="clip")
            ok &= sizes_y - positions >= t_pos
            ok &= t_pos <= rest_x
        return ok, passed_size, passed_bitmap

    # ------------------------------------------------------------------

    def _segment_overlaps(
        self, starts: Any, lengths: Any
    ) -> Tuple[Any, Any, Any, Any, Any]:
        """Exact overlap + common-token positions per survivor segment.

        *starts*/*lengths* delimit each survivor's slice of the flat
        token column; :attr:`_pos_map` must already hold the probing
        record's 1-based token positions (0 elsewhere).  Returns five
        equal-length lists — ``overlap``, and the 1-based first/second
        common-token positions in x and in y (0 = absent) that
        Algorithm 6's re-generability rule needs.  The gather is
        vectorized; the hit walk is a Python loop, which is cheap
        because hits are rare — surviving candidates are few and their
        common tokens fewer.  The native kernel overrides this with one
        fused compiled loop.
        """
        np = self._np
        cum = lengths.cumsum()
        total = int(cum[-1])
        seg_starts = cum - lengths
        # Gather every survivor's token slice in one shot: global flat
        # index = slice start + offset within the segment.
        gather = np.arange(total, dtype=np.int64) + (
            (starts - seg_starts).repeat(lengths)
        )
        x_pos = self._pos_map.take(
            self._tok_flat.take(gather, mode="clip"), mode="clip"
        )
        hit_slots = x_pos.nonzero()[0]

        count = len(lengths)
        overlaps = [0] * count
        first_x = [0] * count
        first_y = [0] * count
        second_x = [0] * count
        second_y = [0] * count
        if len(hit_slots):
            segs = seg_starts.searchsorted(hit_slots, side="right") - 1
            seg_start_list = seg_starts.tolist()
            for slot, seg, xp in zip(
                hit_slots.tolist(), segs.tolist(), x_pos[hit_slots].tolist()
            ):
                rank = overlaps[seg]
                overlaps[seg] = rank + 1
                if rank == 0:
                    first_x[seg] = xp
                    first_y[seg] = slot - seg_start_list[seg] + 1
                elif rank == 1:
                    second_x[seg] = xp
                    second_y[seg] = slot - seg_start_list[seg] + 1
        return overlaps, first_x, first_y, second_x, second_y

    def _verify_survivors_batched(
        self,
        survivor_rids: Any,
        rid: int,
        tokens_x: Tuple[int, ...],
        size_x: int,
        external: float,
        s_k: float,
    ) -> None:
        """Verify every prefilter survivor exactly, in one vectorized pass.

        Replaces the per-survivor Python suffix-filter + early-abort
        merge: the full overlap of each survivor is computed against the
        probing record's universe position map, so no merge can abort —
        every survivor yields a final, exact similarity.  Verifying a
        candidate the suffix filter would have skipped is safe (it is
        still verified at most once, and the registry records it), and
        strictly more informative: the probe covers both records
        entirely, so Algorithm 6's re-generability decision is always
        decisive.  Only the buffer/registry feed below is sequential,
        and it re-reads ``s_k`` as it rises.
        """
        np = self._np
        self._ensure_batch_state()
        posmap = self._pos_map
        tok_x = np.asarray(tokens_x, dtype=np.int64)
        posmap[tok_x] = np.arange(1, size_x + 1, dtype=np.int64)
        try:
            starts = self._tok_offsets.take(survivor_rids, mode="clip")
            lengths = self._sizes_np.take(survivor_rids, mode="clip")
            overlaps, first_x, first_y, second_x, second_y = (
                self._segment_overlaps(starts, lengths)
            )
        finally:
            posmap[tok_x] = 0

        buffer = self.buffer
        registry = self.registry
        seen_pairs = self.seen_pairs
        checks = self.checks
        from_overlap = self.sim.from_overlap
        rid_list = survivor_rids.tolist()
        size_list = lengths.tolist()

        duplicates = verifications = 0
        for i in range(len(rid_list)):
            rid_y = rid_list[i]
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if seen_pairs is not None and pair in seen_pairs:
                duplicates += 1
                continue
            size_y = size_list[i]
            verifications += 1
            if checks is not None:
                checks.on_verified(pair)
            value = from_overlap(overlaps[i], size_x, size_y)
            if buffer.add(pair, value):
                new_s_k = buffer.s_k
                if external > new_s_k:
                    new_s_k = external
                if new_s_k > s_k:
                    s_k = new_s_k
                    self._sync_caches(s_k)
            probe = OverlapProbe(
                overlaps[i],
                first_x[i] or None,
                first_y[i] or None,
                second_x[i] or None,
                second_y[i] or None,
                False,
                size_x,
                size_y,
            )
            registry.record(pair, probe, size_x, size_y, s_k)

        stats = self.stats
        stats.duplicates_skipped += duplicates
        stats.verifications += verifications

    # ------------------------------------------------------------------

    def _process_survivors(
        self,
        survivors: List[int],
        columns: "PostingColumns",
        rid: int,
        tokens_x: Tuple[int, ...],
        size_x: int,
        prefix: int,
        external: float,
        full: bool,
        s_k: float,
    ) -> None:
        """Sequential tail for prefilter survivors: suffix, merge, buffer.

        Runs under the *current* ``s_k`` (which may rise mid-loop): α is
        re-read from the shared cache per survivor, so late survivors are
        still size-checked against the newest threshold before the merge.
        """
        records = self.records
        sim = self.sim
        buffer = self.buffer
        registry = self.registry
        seen_pairs = self.seen_pairs
        checks = self.checks
        suffix_on = self.suffix_on
        maxdepth = self.maxdepth
        col_rids = columns.rids
        col_positions = columns.positions
        self._sync_caches(s_k)
        alpha_cache = self._alpha_cache
        prefix_cache = self._prefix_cache
        required_overlap = sim.required_overlap
        prefix_length = sim.probing_prefix_length
        from_overlap = sim.from_overlap
        merge = _merge

        duplicates = size_pruned = suffix_pruned = verifications = 0

        for index in survivors:
            rid_y = col_rids[index]
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if seen_pairs is not None and pair in seen_pairs:
                duplicates += 1
                continue
            tokens_y = records[rid_y].tokens
            size_y = len(tokens_y)
            key = (size_x, size_y)
            alpha = alpha_cache.get(key)
            if alpha is None:
                alpha = required_overlap(s_k, size_x, size_y)
                alpha_cache[key] = alpha
            # s_k may have risen since the vector prefilter ran; re-apply
            # the size test so impossible merges are not attempted.
            if alpha > (size_x if size_x < size_y else size_y):
                size_pruned += 1
                continue
            if suffix_on and alpha > 1:
                if not suffix_admits(
                    sim,
                    s_k,
                    tokens_x,
                    tokens_y,
                    prefix,
                    col_positions[index],
                    seen_overlap=1,
                    maxdepth=maxdepth,
                    alpha=alpha,
                ):
                    suffix_pruned += 1
                    continue
            scan_x = prefix_cache.get(size_x)
            if scan_x is None:
                scan_x = prefix_length(size_x, s_k)
                prefix_cache[size_x] = scan_x
            scan_y = prefix_cache.get(size_y)
            if scan_y is None:
                scan_y = prefix_length(size_y, s_k)
                prefix_cache[size_y] = scan_y

            probe = merge(tokens_x, tokens_y, alpha, scan_x, scan_y)
            verifications += 1
            if checks is not None:
                checks.on_verified(pair)
            if not probe.aborted:
                value = from_overlap(probe.overlap, size_x, size_y)
                if buffer.add(pair, value):
                    new_s_k = buffer.s_k
                    if external > new_s_k:
                        new_s_k = external
                    if new_s_k > s_k:
                        s_k = new_s_k
                        self._sync_caches(s_k)
            registry.record(pair, probe, size_x, size_y, s_k)

        stats = self.stats
        stats.duplicates_skipped += duplicates
        stats.size_pruned += size_pruned
        stats.suffix_pruned += suffix_pruned
        stats.verifications += verifications
