"""Optional numba-compiled scan kernel — the ``accel="native"`` tier.

The NumPy kernel (:class:`repro.accel.kernel.NumpyScanKernel`) spends
its time in a handful of whole-array passes, each allocating temporary
arrays.  This module fuses the two hottest of them into single compiled
loops:

* the **posting-scan prefilter** — size, word-parallel bitmap popcount
  and positional tests in one pass per batch, no temporaries;
* the **batch-verify segment walk** — exact overlap plus the
  first/second common-token positions per survivor, straight off the
  flat token column and the universe position map.

Everything around the two loops (candidate batching, truncation, the
buffer/registry feed, every exactness decision) is inherited unchanged
from :class:`NumpyScanKernel`, so the compiled tier can only be faster,
never differently-answered.

Feature gating: numba is an *optional* accelerator, never a dependency.
``native_usable()`` imports numba lazily and force-compiles both loops
once against probe arrays; any failure — numba missing, an unsupported
platform, a broken LLVM backend — makes ``accel="native"`` fall back
down the ladder (NumPy, then pure Python) inside
:func:`repro.accel.kernel.resolve_accel_mode`.  The loop bodies are
plain Python functions jitted at probe time, so the test suite verifies
their semantics against the vectorized implementations even on
interpreters without numba.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from .kernel import _TAB_INF, NumpyScanKernel, _numpy

__all__ = ["NativeScanKernel", "native_usable"]

#: Jitted entry points, filled by the one-shot compile probe.
_JITTED: Dict[str, Any] = {}
_PROBE_RESULT: Optional[bool] = None


def _prefilter_impl(
    rids: Any,
    sizes_y: Any,
    positions: Any,
    has_positions: bool,
    tab0: Any,
    tab1: Any,
    sig_words: Any,
    rid: int,
    rest_x: int,
    ok_out: Any,
) -> Tuple[int, int]:
    """Fused size / bitmap / positional prefilter over one batch.

    Mirrors :meth:`NumpyScanKernel._prefilter_core` exactly:
    *tab0*/*tab1* are the packed per-size threshold tables (*tab0* the
    bitmap threshold, ``_TAB_INF`` when the size filter already killed
    that partner size; *tab1* the positional threshold ``alpha - 1``).  Kept
    numba-``njit`` compatible (no Python objects, popcount via
    Kernighan's loop so no unsigned overflow is ever provoked).
    Returns ``(passed_size, passed_bitmap)`` and fills *ok_out* with
    the survivor mask.
    """
    passed_size = 0
    passed_bitmap = 0
    words = sig_words.shape[1]
    for i in range(rids.shape[0]):
        size_y = sizes_y[i]
        t_bitmap = tab0[size_y]
        if t_bitmap >= _TAB_INF:
            ok_out[i] = False
            continue
        passed_size += 1
        rid_y = rids[i]
        hamming = 0
        for w in range(words):
            v = sig_words[rid_y, w] ^ sig_words[rid, w]
            while v:
                v &= v - 1
                hamming += 1
        if size_y - hamming < t_bitmap:
            ok_out[i] = False
            continue
        passed_bitmap += 1
        if has_positions:
            t_pos = tab1[size_y]
            if size_y - positions[i] < t_pos or t_pos > rest_x:
                ok_out[i] = False
                continue
        ok_out[i] = True
    return passed_size, passed_bitmap


def _segment_overlaps_impl(
    starts: Any,
    lengths: Any,
    tok_flat: Any,
    pos_map: Any,
    overlaps_out: Any,
    first_x_out: Any,
    first_y_out: Any,
    second_x_out: Any,
    second_y_out: Any,
) -> None:
    """Fused batch-verify walk: exact overlap + common-token positions.

    Mirrors :meth:`NumpyScanKernel._segment_overlaps`: for survivor *i*
    the tokens are ``tok_flat[starts[i] : starts[i] + lengths[i]]`` and
    *pos_map* holds the probing record's 1-based token positions (0 =
    absent).  No gather temporaries, no reduceat — one read per token.
    """
    for i in range(starts.shape[0]):
        begin = starts[i]
        count = 0
        fx = 0
        fy = 0
        sx = 0
        sy = 0
        for j in range(lengths[i]):
            p = pos_map[tok_flat[begin + j]]
            if p > 0:
                count += 1
                if count == 1:
                    fx = p
                    fy = j + 1
                elif count == 2:
                    sx = p
                    sy = j + 1
        overlaps_out[i] = count
        first_x_out[i] = fx
        first_y_out[i] = fy
        second_x_out[i] = sx
        second_y_out[i] = sy


def _try_compile() -> bool:  # pragma: no cover - needs a numba install
    """Import numba and force-compile both loops against probe arrays.

    Compiling eagerly (instead of on the first real batch) turns an
    unsupported platform into a clean ``False`` — the resolve ladder
    then falls back — rather than an exception mid-join.
    """
    np = _numpy()
    if np is None:
        return False
    try:
        import numba
    except ImportError:
        return False
    try:
        prefilter = numba.njit(cache=True, nogil=True)(_prefilter_impl)
        segment_overlaps = numba.njit(cache=True, nogil=True)(
            _segment_overlaps_impl
        )
        one = np.ones(1, dtype=np.int64)
        prefilter(
            np.zeros(1, dtype=np.int64),
            one,
            np.zeros(1, dtype=np.int64),
            True,
            np.zeros(2, dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            np.zeros((1, 2), dtype=np.uint64),
            0,
            1,
            np.zeros(1, dtype=np.bool_),
        )
        segment_overlaps(
            np.zeros(1, dtype=np.int64),
            one,
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )
    except Exception:
        # Anything — a missing LLVM backend, an unsupported CPU, a numba
        # /NumPy version clash — disqualifies the tier; the caller falls
        # back to the NumPy kernel, which computes identical answers.
        return False
    _JITTED["prefilter"] = prefilter
    _JITTED["segment_overlaps"] = segment_overlaps
    return True


def native_usable() -> bool:
    """Whether the compiled kernel is importable *and* compiles here."""
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        _PROBE_RESULT = _try_compile()
    return _PROBE_RESULT


class NativeScanKernel(NumpyScanKernel):  # pragma: no cover - needs numba
    """The NumPy batch kernel with both hot loops numba-compiled.

    Constructed only when :func:`native_usable` already returned true
    (``resolve_accel_mode`` guarantees it), so the jitted entry points
    exist and are warm.  Only the two override methods differ from the
    parent — all candidate bookkeeping, exactness decisions and stats
    accounting are inherited.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if not native_usable():
            raise RuntimeError(
                "NativeScanKernel requires a working numba install; "
                "resolve_accel_mode should have fallen back"
            )
        self._jit_prefilter = _JITTED["prefilter"]
        self._jit_segment_overlaps = _JITTED["segment_overlaps"]
        self._no_positions = self._np.empty(0, dtype=self._np.int64)

    def _prefilter_core(
        self,
        rid: int,
        rids_np: Any,
        sizes_y: Any,
        positions: Any,
        tab: Any,
        rest_x: int,
    ) -> Tuple[Any, int, int]:
        np = self._np
        ok = np.empty(len(sizes_y), dtype=np.bool_)
        has_positions = positions is not None
        passed_size, passed_bitmap = self._jit_prefilter(
            np.ascontiguousarray(rids_np),
            sizes_y,
            np.ascontiguousarray(positions)
            if has_positions
            else self._no_positions,
            has_positions,
            tab[0],
            tab[1],
            self._sig_words,
            rid,
            rest_x,
            ok,
        )
        return ok, int(passed_size), int(passed_bitmap)

    def _segment_overlaps(
        self, starts: Any, lengths: Any
    ) -> Tuple[Any, Any, Any, Any, Any]:
        np = self._np
        count = len(lengths)
        overlaps = np.empty(count, dtype=np.int64)
        first_x = np.empty(count, dtype=np.int64)
        first_y = np.empty(count, dtype=np.int64)
        second_x = np.empty(count, dtype=np.int64)
        second_y = np.empty(count, dtype=np.int64)
        self._jit_segment_overlaps(
            np.ascontiguousarray(starts),
            np.ascontiguousarray(lengths),
            self._tok_flat,
            self._pos_map,
            overlaps,
            first_x,
            first_y,
            second_x,
            second_y,
        )
        return (
            overlaps.tolist(),
            first_x.tolist(),
            first_y.tolist(),
            second_x.tolist(),
            second_y.tolist(),
        )
