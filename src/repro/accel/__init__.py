"""Accelerated hot-path kernels for the top-k join.

See :mod:`repro.accel.kernel` for the scan kernels and
``docs/PERFORMANCE.md`` for the design write-up.
"""

from .kernel import make_kernel, numpy_available, resolve_accel_mode

__all__ = ["make_kernel", "numpy_available", "resolve_accel_mode"]
