"""Correctness harness: oracles, invariants, metamorphic relations, fuzzing.

The value of ``topk-join`` is that its pruning is *exact* — one off-by-one
in a bound silently drops pairs.  This package is the safety net every
backend (sequential, parallel/sharded, R-S bipartite, weighted, pptopk)
is held against:

* :mod:`.reference` — brute-force oracles (:func:`naive_topk`,
  :func:`naive_threshold`) and tie-aware comparators that accept any
  valid tie-break of a top-k answer;
* :mod:`.invariants` — :class:`CheckHooks`, a runtime invariant layer
  wired into the core event loop behind ``TopkOptions.check_invariants``
  (or ``REPRO_CHECK=1``), zero-cost when off;
* :mod:`.metamorphic` — answer-preserving input transformations (token
  renaming, record shuffling, duplicate injection) and k-monotonicity;
* :mod:`.differential` — one case, every backend, compared to the oracle;
* :mod:`.fuzz` — adversarial generators, a shrinking fuzzer, and the
  ``tests/corpus/`` regression corpus (``python -m repro fuzz``);
* :mod:`.faults` — deliberately broken similarity functions used to prove
  the harness actually catches the bugs it exists for.

The eager imports below are leaf modules only; :mod:`.differential` and
friends import the join backends, so they are loaded lazily to keep
``repro.core`` → ``repro.oracle.invariants`` free of import cycles.
"""

from __future__ import annotations

from .invariants import (
    CheckHooks,
    InvariantViolation,
    StreamCheckHooks,
    invariant_checks_enabled,
)
from .reference import (
    assert_topk_equivalent,
    assert_valid_topk,
    naive_threshold,
    naive_topk,
    naive_window_topk,
    topk_multiset,
)

__all__ = [
    "CheckHooks",
    "InvariantViolation",
    "StreamCheckHooks",
    "invariant_checks_enabled",
    "naive_topk",
    "naive_threshold",
    "naive_window_topk",
    "topk_multiset",
    "assert_topk_equivalent",
    "assert_valid_topk",
    # lazily loaded (see __getattr__):
    "DifferentialCase",
    "StreamCase",
    "run_differential",
    "run_stream_differential",
    "available_backends",
    "available_stream_backends",
    "sockets_usable",
    "FuzzReport",
    "StreamFuzzReport",
    "ServeFuzzReport",
    "ServeCase",
    "SERVE_CASE_SCHEMA",
    "fuzz_run",
    "fuzz_stream_run",
    "fuzz_serve_run",
    "shrink_case",
    "shrink_stream_case",
    "shrink_serve_case",
    "save_corpus_case",
    "load_corpus_case",
    "save_stream_case",
    "load_stream_case",
    "save_serve_case",
    "load_serve_case",
    "replay_corpus",
    "metamorphic_failures",
    "stream_metamorphic_failures",
    "split_advances",
]

_LAZY = {
    "DifferentialCase": "differential",
    "StreamCase": "differential",
    "run_differential": "differential",
    "run_stream_differential": "differential",
    "available_backends": "differential",
    "available_stream_backends": "differential",
    "sockets_usable": "differential",
    "FuzzReport": "fuzz",
    "StreamFuzzReport": "fuzz",
    "ServeFuzzReport": "fuzz",
    "ServeCase": "fuzz",
    "SERVE_CASE_SCHEMA": "fuzz",
    "fuzz_run": "fuzz",
    "fuzz_stream_run": "fuzz",
    "fuzz_serve_run": "fuzz",
    "shrink_case": "fuzz",
    "shrink_stream_case": "fuzz",
    "shrink_serve_case": "fuzz",
    "save_corpus_case": "fuzz",
    "load_corpus_case": "fuzz",
    "save_stream_case": "fuzz",
    "load_stream_case": "fuzz",
    "save_serve_case": "fuzz",
    "load_serve_case": "fuzz",
    "replay_corpus": "fuzz",
    "metamorphic_failures": "metamorphic",
    "stream_metamorphic_failures": "metamorphic",
    "split_advances": "metamorphic",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    module = importlib.import_module("." + module_name, __name__)
    return getattr(module, name)
