"""Metamorphic relations for top-k joins.

A metamorphic test needs no oracle: it transforms the input in a way
whose effect on the *answer* is known and checks that the backend agrees.
The relations here hold for every similarity function in the package:

* **token renaming** — similarity depends only on set overlap, so any
  bijective relabelling of the token universe preserves the similarity
  multiset (record ids may change: renaming changes the canonical
  ordering);
* **record shuffling** — input order is irrelevant after
  canonicalization;
* **duplicate injection** — adding records can only improve the top-k
  pointwise, and each injected exact copy contributes a pair at the
  copied record's self-similarity (1.0 for normalized functions);
* **k-monotonicity** — the top-k multiset is a prefix of the
  top-(k+1) multiset (pairs only ever get *added* as k grows).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from ..result import JoinResult
from ..similarity.functions import SimilarityFunction, similarity_by_name
from .reference import topk_multiset

__all__ = [
    "rename_tokens",
    "shuffle_records",
    "inject_duplicates",
    "metamorphic_failures",
]

TokenLists = Sequence[Sequence[int]]
#: A backend under metamorphic test: ``(token_lists, k, similarity) ->
#: results``.  Token lists are raw integer sets; the backend owns
#: canonicalization, so the transformations below exercise it too.
Backend = Callable[[TokenLists, int, SimilarityFunction], List[JoinResult]]


def rename_tokens(
    token_lists: TokenLists, rng: random.Random
) -> List[List[int]]:
    """Apply one random bijection of the token universe to every record."""
    universe = sorted({t for tokens in token_lists for t in tokens})
    shuffled = list(universe)
    rng.shuffle(shuffled)
    mapping = dict(zip(universe, shuffled))
    return [[mapping[t] for t in tokens] for tokens in token_lists]


def shuffle_records(
    token_lists: TokenLists, rng: random.Random
) -> List[List[int]]:
    """Permute the record order (and each record's token order)."""
    out = [list(tokens) for tokens in token_lists]
    rng.shuffle(out)
    for tokens in out:
        rng.shuffle(tokens)
    return out


def inject_duplicates(
    token_lists: TokenLists, rng: random.Random, copies: int = 2
) -> Tuple[List[List[int]], int]:
    """Append exact copies of random non-empty records.

    Returns ``(new_lists, injected)`` where *injected* counts the copies
    actually added (0 when every record is empty).
    """
    out = [list(tokens) for tokens in token_lists]
    nonempty = [tokens for tokens in token_lists if tokens]
    injected = 0
    for __ in range(copies):
        if not nonempty:
            break
        out.append(list(rng.choice(nonempty)))
        injected += 1
    return out, injected


def metamorphic_failures(
    backend: Backend,
    token_lists: TokenLists,
    k: int,
    similarity: "SimilarityFunction | str",
    rng: random.Random,
    digits: int = 9,
) -> List[str]:
    """Run every metamorphic relation; return failure descriptions.

    An empty list means all relations held.  *backend* is invoked on the
    raw token lists, so collection construction is inside the tested
    surface.
    """
    sim = (
        similarity_by_name(similarity)
        if isinstance(similarity, str)
        else similarity
    )
    failures: List[str] = []
    base = topk_multiset(backend(token_lists, k, sim), digits)

    renamed = topk_multiset(
        backend(rename_tokens(token_lists, rng), k, sim), digits
    )
    if renamed != base:
        failures.append(
            "token renaming changed the top-%d multiset: %r -> %r"
            % (k, base[:8], renamed[:8])
        )

    shuffled = topk_multiset(
        backend(shuffle_records(token_lists, rng), k, sim), digits
    )
    if shuffled != base:
        failures.append(
            "record shuffling changed the top-%d multiset: %r -> %r"
            % (k, base[:8], shuffled[:8])
        )

    duplicated, injected = inject_duplicates(token_lists, rng)
    if injected:
        enriched = topk_multiset(backend(duplicated, k, sim), digits)
        # Adding records can only improve the answer pointwise.
        for rank, (before, after) in enumerate(zip(base, enriched)):
            if after < before:
                failures.append(
                    "injecting %d duplicates worsened rank %d: %r -> %r"
                    % (injected, rank + 1, before, after)
                )
                break

    bigger = topk_multiset(backend(token_lists, k + 1, sim), digits)
    if bigger[:k] != base[:k] or len(bigger) < len(base):
        failures.append(
            "top-%d is not a prefix of top-%d: %r vs %r"
            % (k, k + 1, base[:8], bigger[: 8])
        )

    return failures
