"""Metamorphic relations for top-k joins.

A metamorphic test needs no oracle: it transforms the input in a way
whose effect on the *answer* is known and checks that the backend agrees.
The relations here hold for every similarity function in the package:

* **token renaming** — similarity depends only on set overlap, so any
  bijective relabelling of the token universe preserves the similarity
  multiset (record ids may change: renaming changes the canonical
  ordering);
* **record shuffling** — input order is irrelevant after
  canonicalization;
* **duplicate injection** — adding records can only improve the top-k
  pointwise, and each injected exact copy contributes a pair at the
  copied record's self-similarity (1.0 for normalized functions);
* **k-monotonicity** — the top-k multiset is a prefix of the
  top-(k+1) multiset (pairs only ever get *added* as k grows).

The streaming relations (:func:`stream_metamorphic_failures`) hold the
sliding-window engine to the batch join and to itself:

* **final-window equivalence** — after the whole event trace, the
  engine's live top-k must be tie-equivalent to a *batch* join over the
  records still in the window (replayed independently of the engine's
  own window bookkeeping);
* **replay determinism** — running the same trace twice must produce
  byte-identical result rows *and* byte-identical delta streams;
* **advance splitting** — replacing every ``advance(a)`` with
  ``advance(a/2); advance(a/2)`` (or ``1 + (n-1)`` under the count
  policy) must leave the final engine state byte-identical: window
  advancement is additive.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Sequence, Tuple

from ..core.topk_join import TopkOptions, topk_join
from ..data.records import RecordCollection
from ..result import JoinResult, sort_results
from ..similarity.functions import SimilarityFunction, similarity_by_name
from ..stream.engine import StreamDelta, StreamingTopkEngine
from ..stream.events import ADVANCE, EXPIRE, INSERT, StreamEvent
from .reference import assert_topk_equivalent, topk_multiset

if TYPE_CHECKING:
    from .differential import StreamCase

__all__ = [
    "rename_tokens",
    "shuffle_records",
    "inject_duplicates",
    "metamorphic_failures",
    "split_advances",
    "stream_metamorphic_failures",
]

TokenLists = Sequence[Sequence[int]]
#: A backend under metamorphic test: ``(token_lists, k, similarity) ->
#: results``.  Token lists are raw integer sets; the backend owns
#: canonicalization, so the transformations below exercise it too.
Backend = Callable[[TokenLists, int, SimilarityFunction], List[JoinResult]]


def rename_tokens(
    token_lists: TokenLists, rng: random.Random
) -> List[List[int]]:
    """Apply one random bijection of the token universe to every record."""
    universe = sorted({t for tokens in token_lists for t in tokens})
    shuffled = list(universe)
    rng.shuffle(shuffled)
    mapping = dict(zip(universe, shuffled))
    return [[mapping[t] for t in tokens] for tokens in token_lists]


def shuffle_records(
    token_lists: TokenLists, rng: random.Random
) -> List[List[int]]:
    """Permute the record order (and each record's token order)."""
    out = [list(tokens) for tokens in token_lists]
    rng.shuffle(out)
    for tokens in out:
        rng.shuffle(tokens)
    return out


def inject_duplicates(
    token_lists: TokenLists, rng: random.Random, copies: int = 2
) -> Tuple[List[List[int]], int]:
    """Append exact copies of random non-empty records.

    Returns ``(new_lists, injected)`` where *injected* counts the copies
    actually added (0 when every record is empty).
    """
    out = [list(tokens) for tokens in token_lists]
    nonempty = [tokens for tokens in token_lists if tokens]
    injected = 0
    for __ in range(copies):
        if not nonempty:
            break
        out.append(list(rng.choice(nonempty)))
        injected += 1
    return out, injected


def metamorphic_failures(
    backend: Backend,
    token_lists: TokenLists,
    k: int,
    similarity: "SimilarityFunction | str",
    rng: random.Random,
    digits: int = 9,
) -> List[str]:
    """Run every metamorphic relation; return failure descriptions.

    An empty list means all relations held.  *backend* is invoked on the
    raw token lists, so collection construction is inside the tested
    surface.
    """
    sim = (
        similarity_by_name(similarity)
        if isinstance(similarity, str)
        else similarity
    )
    failures: List[str] = []
    base = topk_multiset(backend(token_lists, k, sim), digits)

    renamed = topk_multiset(
        backend(rename_tokens(token_lists, rng), k, sim), digits
    )
    if renamed != base:
        failures.append(
            "token renaming changed the top-%d multiset: %r -> %r"
            % (k, base[:8], renamed[:8])
        )

    shuffled = topk_multiset(
        backend(shuffle_records(token_lists, rng), k, sim), digits
    )
    if shuffled != base:
        failures.append(
            "record shuffling changed the top-%d multiset: %r -> %r"
            % (k, base[:8], shuffled[:8])
        )

    duplicated, injected = inject_duplicates(token_lists, rng)
    if injected:
        enriched = topk_multiset(backend(duplicated, k, sim), digits)
        # Adding records can only improve the answer pointwise.
        for rank, (before, after) in enumerate(zip(base, enriched)):
            if after < before:
                failures.append(
                    "injecting %d duplicates worsened rank %d: %r -> %r"
                    % (injected, rank + 1, before, after)
                )
                break

    bigger = topk_multiset(backend(token_lists, k + 1, sim), digits)
    if bigger[:k] != base[:k] or len(bigger) < len(base):
        failures.append(
            "top-%d is not a prefix of top-%d: %r vs %r"
            % (k, k + 1, base[:8], bigger[: 8])
        )

    return failures


# ----------------------------------------------------------------------
# Streaming relations
# ----------------------------------------------------------------------


def split_advances(events: Sequence[StreamEvent]) -> List[StreamEvent]:
    """Split every ``advance`` into two half-steps (the additive relation).

    ``advance(a); advance(b)`` must equal ``advance(a + b)`` under both
    window policies, so replacing ``advance(a)`` with two halves may not
    change the final state.  Count-policy amounts split as ``1 + (n-1)``
    to stay integral; time amounts split as ``a/2 + (a - a/2)``, which
    sums back to exactly ``a`` in floating point.
    """
    out: List[StreamEvent] = []
    for event in events:
        if event.kind != ADVANCE or event.amount == 0:
            out.append(event)
            continue
        if event.amount == int(event.amount) and event.amount >= 2:
            out.append(StreamEvent.advance(1.0))
            out.append(StreamEvent.advance(event.amount - 1.0))
        elif event.amount != int(event.amount):
            half = event.amount / 2.0
            out.append(StreamEvent.advance(half))
            out.append(StreamEvent.advance(event.amount - half))
        else:
            out.append(event)
    return out


def _stream_run(
    case: "StreamCase",
    events: Sequence[StreamEvent],
    sim: SimilarityFunction,
) -> Tuple[List[Tuple[int, int, float]], List[StreamDelta]]:
    """Drive one incremental engine; return (final rows, all deltas)."""
    options = TopkOptions(
        window_size=case.window, window_policy=case.policy
    )
    engine = StreamingTopkEngine(case.k, similarity=sim, options=options)
    deltas: List[StreamDelta] = []
    with engine:
        for event in events:
            deltas.extend(engine.apply(event))
        rows = [(r.x, r.y, r.similarity) for r in engine.results()]
    return rows, deltas


def _final_live_window(
    case: "StreamCase",
) -> List[Tuple[int, Tuple[int, ...]]]:
    """Replay the window semantics independently; the final live set."""
    live: List[Tuple[int, float, Tuple[int, ...]]] = []
    next_sid = 0
    clock = 0.0
    for event in case.events:
        if event.kind == INSERT:
            if case.policy == "count" and case.window > 0:
                while len(live) >= case.window:
                    live.pop(0)
            live.append(
                (next_sid, clock, tuple(sorted(set(event.tokens))))
            )
            next_sid += 1
        elif event.kind == EXPIRE or case.policy == "count":
            del live[: min(int(event.amount), len(live))]
        else:
            clock += event.amount
            if case.window > 0:
                while live and live[0][1] <= clock - case.window:
                    live.pop(0)
    return [(sid, tokens) for sid, __, tokens in live if tokens]


def stream_metamorphic_failures(
    case: "StreamCase", digits: int = 9
) -> List[str]:
    """Run every streaming metamorphic relation; failure descriptions.

    An empty list means all three relations held (final-window batch
    equivalence, replay determinism, advance splitting).
    """
    sim = similarity_by_name(case.similarity)
    failures: List[str] = []

    rows, deltas = _stream_run(case, case.events, sim)

    # Relation 1: the final state equals a batch join over the final
    # live window (mapped back to stream ids).
    live = _final_live_window(case)
    expected: List[JoinResult] = []
    if len(live) >= 2:
        collection = RecordCollection.from_integer_sets(
            [list(tokens) for __, tokens in live], dedupe=False
        )
        batch = topk_join(collection, case.k, similarity=sim)
        sid_by_source = [sid for sid, __ in live]
        records = collection.records
        for r in batch:
            a = sid_by_source[records[r.x].source_id]
            b = sid_by_source[records[r.y].source_id]
            expected.append(
                JoinResult(min(a, b), max(a, b), r.similarity)
            )
        expected = sort_results(expected)
    try:
        assert_topk_equivalent(
            [JoinResult(x, y, value) for x, y, value in rows],
            expected,
            digits=digits,
            context="final window",
        )
    except AssertionError as mismatch:
        failures.append(
            "streaming state diverges from the batch join over the "
            "final window: %s" % mismatch
        )

    # Relation 2: replay determinism — rows and deltas byte-identical.
    rows_again, deltas_again = _stream_run(case, case.events, sim)
    if rows_again != rows:
        failures.append(
            "replay nondeterminism: %r != %r"
            % (rows_again[:8], rows[:8])
        )
    if deltas_again != deltas:
        failures.append(
            "replayed delta stream differs: %d deltas vs %d"
            % (len(deltas_again), len(deltas))
        )

    # Relation 3: advance splitting — the final state is unchanged.
    split_rows, __ = _stream_run(case, split_advances(case.events), sim)
    if split_rows != rows:
        failures.append(
            "splitting advances changed the final state: %r != %r"
            % (split_rows[:8], rows[:8])
        )

    return failures
