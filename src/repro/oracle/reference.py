"""Brute-force reference oracles and tie-aware answer comparators.

The quadratic oracles here score *every* pair of the pair space, so their
answers are correct by construction — they are the ground truth every
optimized backend is compared against.  A top-k answer is unique only up
to permutations of pairs tied at the k-th similarity, so the comparators
accept any valid tie-break: the similarity multiset must match exactly
and every pair strictly above the boundary must be present, but which of
the boundary-tied pairs made the cut is left free.

These functions intentionally depend only on :mod:`repro.data`,
:mod:`repro.result` and :mod:`repro.similarity` (no join machinery), so
the core algorithms can import them without cycles.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Set, Tuple

from ..data.records import RecordCollection
from ..result import JoinResult, sort_results
from ..similarity.functions import Jaccard, SimilarityFunction

__all__ = [
    "naive_topk",
    "naive_threshold",
    "naive_window_topk",
    "topk_multiset",
    "assert_topk_equivalent",
    "assert_valid_topk",
]

#: Rounding applied before comparing similarities: every backend computes
#: values through ``from_overlap`` on identical integers, so anything
#: differing past the 9th digit is a float-noise artifact, not a bug.
DIGITS = 9


def _pair_space(
    n: int, sides: Optional[Sequence[int]]
) -> "list[Tuple[int, int]]":
    """All unordered record-id pairs, restricted to cross pairs by *sides*."""
    if sides is None:
        return [(a, b) for a in range(n) for b in range(a + 1, n)]
    return [
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if sides[a] != sides[b]
    ]


def naive_topk(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    sides: Optional[Sequence[int]] = None,
) -> List[JoinResult]:
    """The exact top-k pairs by exhaustive scoring (quadratic — tests only).

    With *sides* (0/1 labels per rid) only cross pairs are eligible — the
    R-S join's pair space.  Returns ``min(k, |pair space|)`` results, best
    first, ties broken by ascending ``(x, y)`` — mirroring the padding
    contract of :func:`repro.core.topk_join.topk_join` (pairs sharing no
    token simply score 0 here instead of being padded in).
    """
    if k < 1:
        raise ValueError("k must be >= 1, got %d" % k)
    sim = similarity or Jaccard()
    records = collection.records
    heap: List[Tuple[float, Tuple[int, int]]] = []
    for a, b in _pair_space(len(records), sides):
        value = sim.similarity(records[a].tokens, records[b].tokens)
        # Max-heap order on (similarity, then *reversed* pair ids) so that
        # among boundary ties the smallest (x, y) pairs are retained —
        # the documented deterministic tie policy.
        item = (value, (-a, -b))
        if len(heap) < k:
            heapq.heappush(heap, item)
        elif item > heap[0]:
            heapq.heappushpop(heap, item)
    return sort_results(
        JoinResult(-na, -nb, value) for value, (na, nb) in heap
    )


def naive_window_topk(
    live: Sequence[Tuple[int, Sequence[int]]],
    k: int,
    similarity: Optional[SimilarityFunction] = None,
) -> List[JoinResult]:
    """The exact top-k over a live window snapshot (quadratic — tests only).

    *live* is ``(sid, tokens)`` per live record; records with no tokens
    are excluded from the pair space (they occupy a window slot but join
    no pairs), matching the streaming engine's and the batch join's
    treatment of empty records.  Pairs are reported by stream ids with
    the same tie policy as :func:`naive_topk`: best first, boundary ties
    resolved toward the smallest ``(x, y)``.
    """
    if k < 1:
        raise ValueError("k must be >= 1, got %d" % k)
    sim = similarity or Jaccard()
    members = [(sid, tuple(tokens)) for sid, tokens in live if tokens]
    heap: List[Tuple[float, Tuple[int, int]]] = []
    for index, (a, tokens_a) in enumerate(members):
        for b, tokens_b in members[index + 1 :]:
            value = sim.similarity(tokens_a, tokens_b)
            x, y = (a, b) if a < b else (b, a)
            item = (value, (-x, -y))
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heappushpop(heap, item)
    return sort_results(
        [JoinResult(-nx, -ny, value) for value, (nx, ny) in heap]
    )


def naive_threshold(
    collection: RecordCollection,
    threshold: float,
    similarity: Optional[SimilarityFunction] = None,
    sides: Optional[Sequence[int]] = None,
) -> List[JoinResult]:
    """All pairs with ``sim >= threshold``, best first (quadratic oracle)."""
    sim = similarity or Jaccard()
    records = collection.records
    results = []
    for a, b in _pair_space(len(records), sides):
        value = sim.similarity(records[a].tokens, records[b].tokens)
        if value >= threshold:
            results.append(JoinResult(a, b, value))
    return sort_results(results)


def topk_multiset(
    results: Sequence[JoinResult], digits: int = DIGITS
) -> List[float]:
    """Descending similarity multiset, rounded for float-safe comparison."""
    return sorted((round(r.similarity, digits) for r in results), reverse=True)


def _boundary_pairs(
    results: Sequence[JoinResult], digits: int
) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int]]]:
    """Split a top-k answer into (strictly-above-boundary, boundary) pairs.

    The boundary is the smallest reported similarity; pairs tied at it are
    interchangeable with unreported pairs of the same similarity, so only
    the strictly-above set is comparable across valid answers.
    """
    if not results:
        return set(), set()
    floor = min(round(r.similarity, digits) for r in results)
    above = set()
    tied = set()
    for r in results:
        if round(r.similarity, digits) > floor:
            above.add((r.x, r.y))
        else:
            tied.add((r.x, r.y))
    return above, tied


def assert_topk_equivalent(
    actual: Sequence[JoinResult],
    expected: Sequence[JoinResult],
    digits: int = DIGITS,
    context: str = "",
) -> None:
    """Assert two top-k answers are equal up to boundary tie-breaking.

    Checks (1) equal result counts, (2) identical rounded similarity
    multisets, (3) identical pair sets strictly above the k-th similarity.
    Pairs tied at the boundary may differ — any of them is a valid k-th
    result.  Raises ``AssertionError`` with a diff-style message.
    """
    prefix = context + ": " if context else ""
    if len(actual) != len(expected):
        raise AssertionError(
            "%sresult count mismatch: got %d, expected %d"
            % (prefix, len(actual), len(expected))
        )
    got = topk_multiset(actual, digits)
    want = topk_multiset(expected, digits)
    if got != want:
        for index, (g, w) in enumerate(zip(got, want)):
            if g != w:
                raise AssertionError(
                    "%ssimilarity multiset mismatch at rank %d: "
                    "got %r, expected %r (got=%r expected=%r)"
                    % (prefix, index + 1, g, w, got[:10], want[:10])
                )
    above_actual, __ = _boundary_pairs(actual, digits)
    above_expected, __ = _boundary_pairs(expected, digits)
    if above_actual != above_expected:
        raise AssertionError(
            "%spairs above the tie boundary differ: "
            "unexpected=%r missing=%r"
            % (
                prefix,
                sorted(above_actual - above_expected),
                sorted(above_expected - above_actual),
            )
        )


def assert_valid_topk(
    collection: RecordCollection,
    k: int,
    actual: Sequence[JoinResult],
    similarity: Optional[SimilarityFunction] = None,
    sides: Optional[Sequence[int]] = None,
    digits: int = DIGITS,
) -> None:
    """Assert *actual* is a valid top-k answer for *collection* outright.

    Stronger than comparing against a second backend: every reported
    similarity is recomputed from the records (so a backend cannot agree
    with the oracle by making the same arithmetic mistake twice), pair ids
    must be canonical, in-space and unique, and the whole answer must be
    tie-equivalent to the exhaustive oracle's.
    """
    sim = similarity or Jaccard()
    records = collection.records
    seen: Set[Tuple[int, int]] = set()
    for r in actual:
        if not (0 <= r.x < len(records) and 0 <= r.y < len(records)):
            raise AssertionError("result %r references unknown records" % (r,))
        if r.x >= r.y:
            raise AssertionError("result %r is not canonically ordered" % (r,))
        if sides is not None and sides[r.x] == sides[r.y]:
            raise AssertionError("result %r is not a cross pair" % (r,))
        if (r.x, r.y) in seen:
            raise AssertionError("pair (%d, %d) reported twice" % (r.x, r.y))
        seen.add((r.x, r.y))
        recomputed = sim.similarity(records[r.x].tokens, records[r.y].tokens)
        if round(recomputed, digits) != round(r.similarity, digits):
            raise AssertionError(
                "result %r reports similarity %r but the records score %r"
                % (r, r.similarity, recomputed)
            )
    assert_topk_equivalent(
        actual, naive_topk(collection, k, sim, sides=sides), digits=digits
    )
