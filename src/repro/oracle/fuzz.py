"""Adversarial fuzzing with failure shrinking and a replayable corpus.

:func:`fuzz_run` generates synthetic collections engineered to stress the
join's weak spots — tied similarities, skewed token frequencies,
near-duplicates, token-disjoint blocks, degenerate records — and feeds
each through :func:`repro.oracle.differential.run_differential` (every
backend vs the brute-force oracle, runtime invariants on) plus the
metamorphic relations.  A failing input is *shrunk* by delta debugging to
a minimal reproducing case and saved as JSON under ``tests/corpus/``;
the corpus replays in CI forever after, so a fixed bug stays fixed.

The streaming twin (:func:`fuzz_stream_run`) does the same for the
sliding-window engine: random insert/expire/advance traces run through
:func:`repro.oracle.differential.run_stream_differential` (incremental
vs full recompute vs the window oracle after *every* event) plus the
streaming metamorphic relations; failing traces shrink to minimal event
sequences and persist as ``tests/corpus/stream_*.json``.

The service twin (:func:`fuzz_serve_run`) attacks the ``repro serve``
daemon itself: seeded generators build adversarial byte sessions —
mutated JSON, raw junk, truncated frames, oversized payloads,
mid-request disconnects — and throw each at a live in-process daemon
over a real socket.  The invariant is *survival*: every reply line must
still parse, the daemon must answer a fresh ``ping`` afterwards, and no
unhandled exception may have been swallowed.  Failing sessions shrink
to minimal byte sequences and persist as ``tests/corpus/serve_*.json``.

Everything is seeded: ``fuzz_run(seed=0, iterations=200)`` explores the
same 200 cases on every machine.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.topk_join import TopkOptions, topk_join
from ..data.records import RecordCollection
from ..result import JoinResult
from ..similarity.functions import SimilarityFunction
from ..stream.events import INSERT, StreamEvent
from .differential import (
    DifferentialCase,
    StreamCase,
    run_differential,
    run_stream_differential,
)
from .metamorphic import metamorphic_failures, stream_metamorphic_failures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve import InProcessDaemon

__all__ = [
    "CASE_SCHEMA",
    "SERVE_CASE_SCHEMA",
    "STREAM_CASE_SCHEMA",
    "FuzzReport",
    "ServeCase",
    "ServeFuzzReport",
    "StreamFuzzReport",
    "fuzz_run",
    "fuzz_serve_run",
    "fuzz_stream_run",
    "load_corpus_case",
    "load_serve_case",
    "load_stream_case",
    "replay_corpus",
    "save_corpus_case",
    "save_serve_case",
    "save_stream_case",
    "shrink_case",
    "shrink_serve_case",
    "shrink_stream_case",
]

#: Version stamp of the corpus JSON layout.
CASE_SCHEMA = 1

#: Version stamp of the streaming corpus JSON layout.
STREAM_CASE_SCHEMA = 1

#: Version stamp of the daemon-session corpus JSON layout.
SERVE_CASE_SCHEMA = 1

#: Similarity functions cycled through by the fuzzer.
_SIMILARITIES = ("jaccard", "cosine", "dice", "overlap")

#: Run the (4x-more-joins) metamorphic relations every Nth iteration.
_METAMORPHIC_EVERY = 5

TokenLists = List[List[int]]
Generator = Callable[[random.Random, int], TokenLists]


# ----------------------------------------------------------------------
# Adversarial generators
# ----------------------------------------------------------------------

def _gen_tie_heavy(rng: random.Random, max_records: int) -> TokenLists:
    """Tiny token universe: almost every similarity value is tied."""
    universe = rng.randint(4, 8)
    count = rng.randint(4, max_records)
    return [
        [rng.randrange(universe) for __ in range(rng.randint(1, 5))]
        for __ in range(count)
    ]


def _gen_skewed(rng: random.Random, max_records: int) -> TokenLists:
    """Zipf-like token frequencies: a few tokens appear everywhere."""
    universe = rng.randint(20, 60)
    weights = [1.0 / (rank + 1) for rank in range(universe)]
    count = rng.randint(4, max_records)
    return [
        rng.choices(range(universe), weights=weights,
                    k=rng.randint(1, 12))
        for __ in range(count)
    ]


def _gen_near_duplicates(rng: random.Random, max_records: int) -> TokenLists:
    """Clusters of single-edit variants: the top-k boundary is razor thin."""
    universe = rng.randint(30, 80)
    lists: TokenLists = []
    while len(lists) < max(4, max_records - 2):
        base = sorted(
            rng.sample(range(universe), rng.randint(2, min(10, universe)))
        )
        lists.append(list(base))
        for __ in range(rng.randint(1, 3)):
            variant = list(base)
            if rng.random() < 0.5 and len(variant) > 1:
                variant.pop(rng.randrange(len(variant)))
            else:
                variant.append(rng.randrange(universe))
            lists.append(variant)
    return lists[:max_records]


def _gen_blocks(rng: random.Random, max_records: int) -> TokenLists:
    """Token-disjoint blocks: most pairs share nothing (zero padding)."""
    blocks = rng.randint(2, 4)
    per_block = rng.randint(25, 40)
    count = rng.randint(4, max_records)
    lists: TokenLists = []
    for __ in range(count):
        block = rng.randrange(blocks)
        offset = block * per_block
        size = rng.randint(1, 6)
        lists.append(
            [offset + rng.randrange(per_block) for __ in range(size)]
        )
    return lists


def _gen_degenerate(rng: random.Random, max_records: int) -> TokenLists:
    """Empty records, singletons, exact copies, one giant record."""
    universe = rng.randint(5, 20)
    lists: TokenLists = []
    for __ in range(rng.randint(3, max_records - 1)):
        kind = rng.randrange(4)
        if kind == 0:
            lists.append([])
        elif kind == 1:
            lists.append([rng.randrange(universe)])
        elif kind == 2 and lists:
            lists.append(list(rng.choice(lists)))
        else:
            lists.append(
                [rng.randrange(universe) for __ in range(rng.randint(1, 4))]
            )
    lists.append(list(range(universe)))  # the giant
    return lists


GENERATORS: Dict[str, Generator] = {
    "tie-heavy": _gen_tie_heavy,
    "skewed": _gen_skewed,
    "near-duplicates": _gen_near_duplicates,
    "blocks": _gen_blocks,
    "degenerate": _gen_degenerate,
}


# ----------------------------------------------------------------------
# Streaming generators: adversarial event traces
# ----------------------------------------------------------------------

StreamGenerator = Callable[[random.Random], StreamCase]


def _stream_insert(
    rng: random.Random,
    universe: int,
    history: List[List[int]],
) -> StreamEvent:
    """One insert event: sometimes empty, sometimes an exact re-arrival."""
    if rng.random() < 0.10:
        tokens: List[int] = []
    elif history and rng.random() < 0.15:
        tokens = list(rng.choice(history))
    else:
        size = rng.randint(1, min(6, universe))
        tokens = [rng.randrange(universe) for __ in range(size)]
    history.append(tokens)
    return StreamEvent.insert(tokens)


def _stream_advance(rng: random.Random, policy: str) -> StreamEvent:
    """A policy-appropriate advance (count amounts must stay integral)."""
    if policy == "count":
        return StreamEvent.advance(float(rng.randint(0, 3)))
    return StreamEvent.advance(rng.randint(0, 6) / 2.0)


def _gen_stream_mixed(rng: random.Random) -> StreamCase:
    """The generic trace: ~60% inserts, ~20% expiries, ~20% advances."""
    universe = rng.randint(4, 12)
    policy = "count" if rng.random() < 0.5 else "time"
    events: List[StreamEvent] = []
    history: List[List[int]] = []
    for __ in range(rng.randint(6, 32)):
        roll = rng.random()
        if roll < 0.6:
            events.append(_stream_insert(rng, universe, history))
        elif roll < 0.8:
            events.append(StreamEvent.expire(rng.randint(1, 3)))
        else:
            events.append(_stream_advance(rng, policy))
    return StreamCase.make(
        events,
        k=rng.randint(1, 8),
        window=rng.randint(0, 8),
        policy=policy,
        similarity=_SIMILARITIES[rng.randrange(len(_SIMILARITIES))],
    )


def _gen_stream_churn(rng: random.Random) -> StreamCase:
    """A tiny full count window: every arrival displaces and most
    expiries kill a top-k member — bound relaxation and refill on
    nearly every event."""
    universe = rng.randint(3, 6)
    events: List[StreamEvent] = []
    history: List[List[int]] = []
    for __ in range(rng.randint(8, 40)):
        if rng.random() < 0.7:
            events.append(_stream_insert(rng, universe, history))
        else:
            events.append(StreamEvent.expire(1))
    return StreamCase.make(
        events,
        k=rng.randint(1, 4),
        window=rng.randint(2, 4),
        policy="count",
        similarity=_SIMILARITIES[rng.randrange(len(_SIMILARITIES))],
    )


def _gen_stream_bursty(rng: random.Random) -> StreamCase:
    """Insert bursts separated by big clock jumps: mass expiry under the
    time policy, including whole-window wipeouts."""
    universe = rng.randint(4, 10)
    events: List[StreamEvent] = []
    history: List[List[int]] = []
    for __ in range(rng.randint(2, 5)):
        for __ in range(rng.randint(2, 6)):
            events.append(_stream_insert(rng, universe, history))
        events.append(StreamEvent.advance(rng.randint(0, 8) / 2.0))
    return StreamCase.make(
        events,
        k=rng.randint(1, 8),
        window=rng.randint(0, 5),
        policy="time",
        similarity=_SIMILARITIES[rng.randrange(len(_SIMILARITIES))],
    )


STREAM_GENERATORS: Dict[str, StreamGenerator] = {
    "stream-mixed": _gen_stream_mixed,
    "stream-churn": _gen_stream_churn,
    "stream-bursty": _gen_stream_bursty,
}


# ----------------------------------------------------------------------
# Serve generators: adversarial daemon sessions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServeCase:
    """One adversarial byte session against the daemon.

    ``chunks`` are written to the socket in order (the chunking itself
    is adversarial: frames may arrive one byte at a time or many frames
    per segment).  ``abort`` closes the socket without the write-side
    shutdown — a mid-request disconnect rather than a polite EOF.
    """

    chunks: Tuple[bytes, ...]
    abort: bool = False

    @classmethod
    def make(
        cls, chunks: Sequence[bytes], abort: bool = False
    ) -> "ServeCase":
        return cls(tuple(bytes(chunk) for chunk in chunks), bool(abort))

    def chunks_payload(self) -> List[str]:
        """JSON-safe chunk encoding (latin-1: every byte round-trips)."""
        return [chunk.decode("latin-1") for chunk in self.chunks]

    @classmethod
    def from_payload(
        cls, chunks: Sequence[str], abort: bool = False
    ) -> "ServeCase":
        return cls(
            tuple(chunk.encode("latin-1") for chunk in chunks), bool(abort)
        )


ServeGenerator = Callable[[random.Random], ServeCase]

#: Verbs the session generators draw from.  ``shutdown`` is included on
#: purpose: the fuzz daemon refuses remote shutdown, so the frame must
#: earn a ``forbidden`` error, not a dead daemon.
_SERVE_VERBS = (
    "ping",
    "insert",
    "expire",
    "advance",
    "query",
    "subscribe",
    "unsubscribe",
    "stats",
    "metrics",
    "shutdown",
)


def _serve_valid_frame(rng: random.Random) -> bytes:
    """One well-formed request frame (the raw material for mutation)."""
    verb = _SERVE_VERBS[rng.randrange(len(_SERVE_VERBS))]
    payload: Dict[str, object] = {"verb": verb, "id": rng.randint(0, 999)}
    if verb == "insert":
        payload["tokens"] = [
            rng.randrange(50) for __ in range(rng.randint(0, 6))
        ]
    elif verb == "expire":
        payload["count"] = rng.randint(1, 3)
    elif verb == "advance":
        payload["amount"] = rng.randint(0, 6) / 2.0
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def _random_chunking(rng: random.Random, data: bytes) -> List[bytes]:
    """Split *data* into adversarially sized socket writes."""
    chunks: List[bytes] = []
    position = 0
    while position < len(data):
        size = rng.randint(1, max(1, min(len(data) - position, 97)))
        chunks.append(data[position:position + size])
        position += size
    return chunks or [b""]


def _gen_serve_mutated(rng: random.Random) -> ServeCase:
    """Valid request frames with random byte flips/inserts/deletes."""
    blob = bytearray(
        b"".join(_serve_valid_frame(rng) for __ in range(rng.randint(1, 6)))
    )
    for __ in range(rng.randint(1, max(2, len(blob) // 8))):
        if not blob:
            break
        position = rng.randrange(len(blob))
        roll = rng.randrange(3)
        if roll == 0:
            blob[position] = rng.randrange(256)
        elif roll == 1:
            del blob[position]
        else:
            blob.insert(position, rng.randrange(256))
    if rng.random() < 0.8:
        blob.extend(b"\n")
    return ServeCase.make(
        _random_chunking(rng, bytes(blob)), abort=rng.random() < 0.2
    )


def _gen_serve_junk(rng: random.Random) -> ServeCase:
    """Raw random bytes, newlines sprinkled in so frames terminate."""
    data = bytearray(
        rng.randrange(256) for __ in range(rng.randint(1, 512))
    )
    for __ in range(rng.randint(0, 6)):
        data[rng.randrange(len(data))] = 0x0A
    return ServeCase.make(
        _random_chunking(rng, bytes(data)), abort=rng.random() < 0.3
    )


def _gen_serve_truncated(rng: random.Random) -> ServeCase:
    """Valid frames cut mid-frame, sometimes with a hard disconnect."""
    frames = b"".join(
        _serve_valid_frame(rng) for __ in range(rng.randint(1, 5))
    )
    cut = rng.randrange(1, len(frames))
    return ServeCase.make(
        _random_chunking(rng, frames[:cut]), abort=rng.random() < 0.5
    )


def _gen_serve_oversized(rng: random.Random) -> ServeCase:
    """Frames straddling the byte cap, with and without a newline."""
    roll = rng.randrange(3)
    if roll == 0:
        frame = (
            json.dumps(
                {
                    "verb": "insert",
                    "id": 1,
                    "tokens": [
                        rng.randrange(9)
                        for __ in range(rng.randint(1500, 4000))
                    ],
                },
                separators=(",", ":"),
            ).encode("utf-8")
            + b"\n"
        )
    elif roll == 1:
        frame = b'{"verb":"' + b"x" * rng.randint(5000, 20000) + b'"}\n'
    else:
        frame = b"A" * rng.randint(5000, 30000)  # cap hit without a newline
    return ServeCase.make(
        _random_chunking(rng, frame + _serve_valid_frame(rng)), abort=False
    )


def _gen_serve_mixed(rng: random.Random) -> ServeCase:
    """Interleaved valid frames, blank lines, ASCII junk, mutations."""
    parts: List[bytes] = []
    for __ in range(rng.randint(2, 10)):
        roll = rng.random()
        if roll < 0.4:
            parts.append(_serve_valid_frame(rng))
        elif roll < 0.6:
            parts.append(b"\n")
        elif roll < 0.8:
            parts.append(
                bytes(
                    rng.randrange(32, 127)
                    for __ in range(rng.randint(1, 40))
                )
                + b"\n"
            )
        else:
            frame = bytearray(_serve_valid_frame(rng))
            frame[rng.randrange(len(frame))] = rng.randrange(256)
            parts.append(bytes(frame))
    return ServeCase.make(parts, abort=rng.random() < 0.15)


SERVE_GENERATORS: Dict[str, ServeGenerator] = {
    "serve-mutated-json": _gen_serve_mutated,
    "serve-junk-bytes": _gen_serve_junk,
    "serve-truncated": _gen_serve_truncated,
    "serve-oversized": _gen_serve_oversized,
    "serve-mixed": _gen_serve_mixed,
}


# ----------------------------------------------------------------------
# Failure evaluation and shrinking
# ----------------------------------------------------------------------

def _sequential_backend(
    token_lists: Sequence[Sequence[int]],
    k: int,
    sim: SimilarityFunction,
) -> List[JoinResult]:
    collection = RecordCollection.from_integer_sets(token_lists, dedupe=False)
    return topk_join(
        collection, k, similarity=sim,
        options=TopkOptions(check_invariants=True),
    )


def _case_failures(
    case: DifferentialCase,
    backends: Optional[Sequence[str]],
    metamorphic: bool,
    rng_seed: int,
) -> List[str]:
    """All failures of *case*: differential sweep plus (optionally)
    metamorphic relations over the invariant-checked sequential join."""
    failures = run_differential(case, backends=backends)
    if metamorphic:
        try:
            failures.extend(
                "metamorphic: %s" % message
                for message in metamorphic_failures(
                    _sequential_backend,
                    [list(tokens) for tokens in case.records],
                    case.k,
                    case.similarity,
                    random.Random(rng_seed),
                )
            )
        except Exception as crash:  # noqa: BLE001 — crashes are findings
            failures.append(
                "metamorphic: crashed with %s: %s"
                % (type(crash).__name__, crash)
            )
    return failures


def shrink_case(
    case: DifferentialCase,
    failing: Callable[[DifferentialCase], List[str]],
) -> DifferentialCase:
    """Delta-debug *case* to a locally minimal still-failing input.

    Passes, in order: chunk removal (halves, quarters, …), single-record
    removal, per-record token dropping, token renumbering (compress the
    universe to ``0..n``), and k reduction.  Each accepted candidate must
    still make *failing* return a non-empty list.  The result is 1-minimal
    with respect to these operations, not globally minimal — good enough
    to read.
    """

    def still_fails(candidate: DifferentialCase) -> bool:
        try:
            return bool(failing(candidate))
        except Exception:  # noqa: BLE001 — a shrunk crash still reproduces
            return True

    current = case

    # Chunk removal: try dropping ever-smaller contiguous runs of records.
    chunk = max(1, len(current.records) // 2)
    while chunk >= 1:
        start = 0
        progressed = False
        while start < len(current.records) and len(current.records) > 1:
            remaining = (
                current.records[:start] + current.records[start + chunk:]
            )
            candidate = DifferentialCase(
                remaining, current.k, current.similarity
            )
            if remaining and still_fails(candidate):
                current = candidate
                progressed = True
            else:
                start += chunk
        chunk = chunk // 2 if chunk > 1 and not progressed else chunk - 1

    # Token dropping: shorten individual records.
    changed = True
    while changed:
        changed = False
        for index, tokens in enumerate(current.records):
            position = 0
            while position < len(current.records[index]):
                tokens = current.records[index]
                shrunk = tokens[:position] + tokens[position + 1:]
                records = (
                    current.records[:index]
                    + (shrunk,)
                    + current.records[index + 1:]
                )
                candidate = DifferentialCase(
                    records, current.k, current.similarity
                )
                if still_fails(candidate):
                    current = candidate
                    changed = True
                else:
                    position += 1

    # Token renumbering: compress the universe to consecutive integers.
    universe = sorted({t for tokens in current.records for t in tokens})
    mapping = {token: rank for rank, token in enumerate(universe)}
    renumbered = DifferentialCase(
        tuple(
            tuple(mapping[t] for t in tokens) for tokens in current.records
        ),
        current.k,
        current.similarity,
    )
    if still_fails(renumbered):
        current = renumbered

    # k reduction.
    while current.k > 1:
        candidate = DifferentialCase(
            current.records, current.k - 1, current.similarity
        )
        if not still_fails(candidate):
            break
        current = candidate

    return current


def _stream_case_failures(
    case: StreamCase,
    backends: Optional[Sequence[str]],
    metamorphic: bool,
) -> List[str]:
    """All failures of *case*: the per-event differential sweep plus
    (optionally) the streaming metamorphic relations."""
    failures = run_stream_differential(case, backends=backends)
    if metamorphic:
        try:
            failures.extend(
                "metamorphic: %s" % message
                for message in stream_metamorphic_failures(case)
            )
        except Exception as crash:  # noqa: BLE001 — crashes are findings
            failures.append(
                "metamorphic: crashed with %s: %s"
                % (type(crash).__name__, crash)
            )
    return failures


def shrink_stream_case(
    case: StreamCase,
    failing: Callable[[StreamCase], List[str]],
) -> StreamCase:
    """Delta-debug a failing event trace to a locally minimal one.

    Passes, in order: event chunk removal (halves, quarters, …),
    per-insert token dropping, window shrinking, and k reduction.  Each
    accepted candidate must still make *failing* return a non-empty
    list; the result is 1-minimal with respect to these operations.
    """

    def still_fails(candidate: StreamCase) -> bool:
        try:
            return bool(failing(candidate))
        except Exception:  # noqa: BLE001 — a shrunk crash still reproduces
            return True

    current = case

    # Event chunk removal: drop ever-smaller contiguous runs of events.
    chunk = max(1, len(current.events) // 2)
    while chunk >= 1:
        start = 0
        progressed = False
        while start < len(current.events) and len(current.events) > 1:
            remaining = (
                current.events[:start] + current.events[start + chunk:]
            )
            candidate = replace(current, events=remaining)
            if remaining and still_fails(candidate):
                current = candidate
                progressed = True
            else:
                start += chunk
        chunk = chunk // 2 if chunk > 1 and not progressed else chunk - 1

    # Token dropping: shorten individual insert payloads.
    changed = True
    while changed:
        changed = False
        for index in range(len(current.events)):
            if current.events[index].kind != INSERT:
                continue
            position = 0
            while position < len(current.events[index].tokens):
                event = current.events[index]
                shrunk = StreamEvent.insert(
                    event.tokens[:position] + event.tokens[position + 1:]
                )
                candidate = replace(
                    current,
                    events=(
                        current.events[:index]
                        + (shrunk,)
                        + current.events[index + 1:]
                    ),
                )
                if still_fails(candidate):
                    current = candidate
                    changed = True
                else:
                    position += 1

    # Window shrinking (0 = unbounded changes semantics, but the
    # still-fails gate keeps only candidates that reproduce).
    while current.window > 0:
        candidate = replace(current, window=current.window - 1)
        if not still_fails(candidate):
            break
        current = candidate

    # k reduction.
    while current.k > 1:
        candidate = replace(current, k=current.k - 1)
        if not still_fails(candidate):
            break
        current = candidate

    return current


# ----------------------------------------------------------------------
# Serve sessions: drive the daemon over a raw socket
# ----------------------------------------------------------------------


def _make_fuzz_daemon() -> "InProcessDaemon":
    """A hardened, tightly limited daemon for adversarial sessions.

    Small caps make the interesting edges cheap to reach (a 4 KiB frame
    cap instead of 1 MiB, a 32-deep queue) and short timeouts keep
    stalling sessions from dominating the budget.  Remote shutdown is
    refused so a fuzz case that happens to spell ``shutdown`` correctly
    exercises the ``forbidden`` path instead of killing the daemon mid
    campaign.
    """
    from ..serve import InProcessDaemon, ServeOptions
    from ..stream.engine import StreamingTopkEngine

    def engine() -> StreamingTopkEngine:
        return StreamingTopkEngine(3, options=TopkOptions(window_size=8))

    return InProcessDaemon(
        engine,
        ServeOptions(
            queue_limit=32,
            degradation="reject",
            read_timeout=1.0,
            idle_timeout=2.0,
            max_frame_bytes=4096,
            outbox_limit=256,
            allow_remote_shutdown=False,
        ),
    )


def _run_serve_session(
    host: str, port: int, case: ServeCase, timeout: float = 10.0
) -> List[str]:
    """Throw one adversarial session at the daemon; return failures.

    The session may be refused mid-write (the daemon legitimately hangs
    up on abusive peers) — only reply *content* and reachability count
    as findings: every reply line must parse as a JSON object (or be an
    HTTP response, when the junk happened to spell a request line).
    """
    import socket

    failures: List[str] = []
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        return ["serve: cannot connect: %s" % error]
    received = b""
    try:
        try:
            for chunk in case.chunks:
                sock.sendall(chunk)
            if not case.abort:
                sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass  # hung up on us mid-send — a legitimate daemon response
        if not case.abort:
            while True:
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    failures.append(
                        "serve: daemon neither replied nor closed within "
                        "%.1fs" % timeout
                    )
                    break
                except OSError:
                    break
                if not data:
                    break
                received += data
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass
    if received.startswith(b"HTTP/"):
        return failures  # the junk spelled an HTTP request; any reply is fine
    for line in received.split(b"\n"):
        if not line.strip():
            continue
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            failures.append(
                "serve: unparseable reply line %r" % line[:80]
            )
            continue
        if not isinstance(payload, dict):
            failures.append("serve: non-object reply %r" % line[:80])
    return failures


def _serve_case_failures(
    host: str, port: int, case: ServeCase, daemon: "InProcessDaemon"
) -> List[str]:
    """All failures of one session: replies, swallowed crashes, liveness."""
    from ..serve import ServeClient

    failures = _run_serve_session(host, port, case)
    server = daemon.server
    if server is not None:
        failures.extend(
            "serve: unhandled exception: %s" % message
            for message in server.drain_unhandled()
        )
    try:
        with ServeClient(host, port, timeout=10.0) as probe:
            reply = probe.request("ping")
            if not reply.get("ok"):
                failures.append(
                    "serve: post-session ping refused: %r" % reply
                )
    except (OSError, ValueError) as error:
        failures.append(
            "serve: daemon unreachable after the session: %s" % error
        )
    return failures


def shrink_serve_case(
    case: ServeCase,
    failing: Callable[[ServeCase], List[str]],
) -> ServeCase:
    """Delta-debug a failing byte session to a locally minimal one.

    Passes, in order: chunk removal (halves, quarters, …), per-chunk
    byte truncation (repeated halving), and abort simplification.  Each
    accepted candidate must still make *failing* return a non-empty
    list.
    """

    def still_fails(candidate: ServeCase) -> bool:
        try:
            return bool(failing(candidate))
        except Exception:  # noqa: BLE001 — a shrunk crash still reproduces
            return True

    current = case

    # Chunk removal: drop ever-smaller contiguous runs of writes.
    chunk = max(1, len(current.chunks) // 2)
    while chunk >= 1:
        start = 0
        progressed = False
        while start < len(current.chunks) and len(current.chunks) > 1:
            remaining = (
                current.chunks[:start] + current.chunks[start + chunk:]
            )
            candidate = replace(current, chunks=remaining)
            if remaining and still_fails(candidate):
                current = candidate
                progressed = True
            else:
                start += chunk
        chunk = chunk // 2 if chunk > 1 and not progressed else chunk - 1

    # Byte truncation: repeatedly halve individual chunks.
    changed = True
    while changed:
        changed = False
        for index in range(len(current.chunks)):
            while current.chunks[index]:
                data = current.chunks[index]
                candidate = replace(
                    current,
                    chunks=(
                        current.chunks[:index]
                        + (data[: len(data) // 2],)
                        + current.chunks[index + 1:]
                    ),
                )
                if still_fails(candidate):
                    current = candidate
                    changed = True
                else:
                    break

    # Abort simplification: a polite EOF is easier to reason about.
    if current.abort:
        candidate = replace(current, abort=False)
        if still_fails(candidate):
            current = candidate

    return current


# ----------------------------------------------------------------------
# Corpus persistence
# ----------------------------------------------------------------------

def _case_digest(case: DifferentialCase) -> str:
    payload = json.dumps(
        [list(list(t) for t in case.records), case.k, case.similarity],
        separators=(",", ":"),
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def save_corpus_case(
    corpus_dir: str,
    case: DifferentialCase,
    failures: Sequence[str],
    seed: Optional[int] = None,
    generator: Optional[str] = None,
    description: str = "",
) -> str:
    """Write *case* as ``case_<digest>.json`` under *corpus_dir*."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, "case_%s.json" % _case_digest(case))
    document = {
        "schema": CASE_SCHEMA,
        "description": description,
        "seed": seed,
        "generator": generator,
        "similarity": case.similarity,
        "k": case.k,
        "records": [list(tokens) for tokens in case.records],
        "failures": list(failures),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus_case(path: str) -> Tuple[DifferentialCase, dict]:
    """Read one corpus file; returns the case and the raw document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != CASE_SCHEMA:
        raise ValueError(
            "%s: unsupported corpus schema %r" % (path, document.get("schema"))
        )
    case = DifferentialCase.make(
        document["records"], document["k"], document["similarity"]
    )
    return case, document


def _stream_case_digest(case: StreamCase) -> str:
    payload = json.dumps(
        [
            case.events_payload(),
            case.k,
            case.window,
            case.policy,
            case.similarity,
        ],
        separators=(",", ":"),
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def save_stream_case(
    corpus_dir: str,
    case: StreamCase,
    failures: Sequence[str],
    seed: Optional[int] = None,
    generator: Optional[str] = None,
    description: str = "",
) -> str:
    """Write *case* as ``stream_<digest>.json`` under *corpus_dir*."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(
        corpus_dir, "stream_%s.json" % _stream_case_digest(case)
    )
    document = {
        "schema": STREAM_CASE_SCHEMA,
        "description": description,
        "seed": seed,
        "generator": generator,
        "similarity": case.similarity,
        "k": case.k,
        "window": case.window,
        "policy": case.policy,
        "events": case.events_payload(),
        "failures": list(failures),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_stream_case(path: str) -> Tuple[StreamCase, dict]:
    """Read one streaming corpus file; the case and the raw document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != STREAM_CASE_SCHEMA:
        raise ValueError(
            "%s: unsupported stream corpus schema %r"
            % (path, document.get("schema"))
        )
    case = StreamCase.from_payload(
        document["events"],
        document["k"],
        window=document.get("window", 0),
        policy=document.get("policy", "count"),
        similarity=document.get("similarity", "jaccard"),
    )
    return case, document


def _serve_case_digest(case: ServeCase) -> str:
    payload = json.dumps(
        [case.chunks_payload(), case.abort], separators=(",", ":")
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def save_serve_case(
    corpus_dir: str,
    case: ServeCase,
    failures: Sequence[str],
    seed: Optional[int] = None,
    generator: Optional[str] = None,
    description: str = "",
) -> str:
    """Write *case* as ``serve_<digest>.json`` under *corpus_dir*."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(
        corpus_dir, "serve_%s.json" % _serve_case_digest(case)
    )
    document = {
        "schema": SERVE_CASE_SCHEMA,
        "description": description,
        "seed": seed,
        "generator": generator,
        "abort": case.abort,
        "chunks": case.chunks_payload(),
        "failures": list(failures),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_serve_case(path: str) -> Tuple[ServeCase, dict]:
    """Read one daemon-session corpus file; the case and the document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SERVE_CASE_SCHEMA:
        raise ValueError(
            "%s: unsupported serve corpus schema %r"
            % (path, document.get("schema"))
        )
    case = ServeCase.from_payload(
        document["chunks"], abort=document.get("abort", False)
    )
    return case, document


def _replay_serve_case(case: ServeCase) -> List[str]:
    """Replay one saved session against a fresh hardened daemon.

    Quietly skipped (empty failure list) where loopback sockets do not
    work — the capability gate, not a pass.
    """
    from .differential import sockets_usable

    if not sockets_usable():
        return []
    failures: List[str] = []
    daemon = _make_fuzz_daemon()
    try:
        host, port = daemon.start()
        failures.extend(_serve_case_failures(host, port, case, daemon))
    except RuntimeError as error:
        failures.append("serve: %s" % error)
    else:
        try:
            daemon.stop()
        except RuntimeError as error:
            failures.append("serve: %s" % error)
    return failures


def replay_corpus(
    corpus_dir: str,
    backends: Optional[Sequence[str]] = None,
    stream_backends: Optional[Sequence[str]] = None,
) -> List[Tuple[str, List[str]]]:
    """Re-run every saved case; return ``(path, failures)`` per failure.

    Replays all three flavors — batch ``case_*.json`` through
    :func:`run_differential`, streaming ``stream_*.json`` through
    :func:`run_stream_differential`, and daemon sessions
    ``serve_*.json`` against a fresh in-process daemon.  An empty list
    means the whole corpus passes — every bug the fuzzer ever shrank
    stays fixed.
    """
    failing: List[Tuple[str, List[str]]] = []
    if not os.path.isdir(corpus_dir):
        return failing
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        if name.startswith("case_"):
            case, __ = load_corpus_case(path)
            failures = run_differential(case, backends=backends)
        elif name.startswith("stream_"):
            stream_case, __ = load_stream_case(path)
            failures = run_stream_differential(
                stream_case, backends=stream_backends
            )
        elif name.startswith("serve_"):
            serve_case, __ = load_serve_case(path)
            failures = _replay_serve_case(serve_case)
        else:
            continue
        if failures:
            failing.append((path, failures))
    return failing


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------


def _sanitizer_failures() -> List[str]:
    """Runtime-sanitizer findings (``REPRO_SANITIZE=1``), then reset.

    Consulted after every fuzz iteration so a leaked shared-memory
    segment or a lock-order inversion is attributed to the case that
    caused it rather than surfacing as an end-of-process diagnostic.
    The ledger is reset after a hit so later iterations report only
    their own events.  Returns ``[]`` when the sanitizer is not armed.
    """
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        return []
    from ..analysis.sanitizer import active

    sanitizer = active()
    if sanitizer is None:  # pragma: no cover - env raced between checks
        return []
    report = sanitizer.report()
    if report.clean:
        return []
    sanitizer.reset()
    return [
        "sanitizer: " + line.strip()
        for line in report.render().splitlines()[1:]
    ]


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_run`."""

    seed: int
    iterations: int = 0
    #: ``(iteration, generator, case, failure messages, corpus path)``.
    failures: List[
        Tuple[int, str, DifferentialCase, List[str], Optional[str]]
    ] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_run(
    seed: int = 0,
    iterations: int = 200,
    budget: Optional[float] = None,
    max_records: int = 28,
    backends: Optional[Sequence[str]] = None,
    corpus_dir: Optional[str] = None,
    max_failures: int = 5,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> FuzzReport:
    """Differentially fuzz every backend; shrink and save what fails.

    Deterministic in *seed*.  Stops after *iterations* cases, after
    *budget* seconds (whichever first), or once *max_failures* distinct
    failures were shrunk (shrinking is the expensive part; a fundamental
    breakage would otherwise spend the whole budget re-finding itself).
    Failures are shrunk via :func:`shrink_case` and, when *corpus_dir* is
    given, saved via :func:`save_corpus_case`.
    """
    rng = random.Random(seed)
    names = sorted(GENERATORS)
    started = time.monotonic()
    report = FuzzReport(seed=seed)

    for iteration in range(iterations):
        if budget is not None and time.monotonic() - started >= budget:
            break
        if len(report.failures) >= max_failures:
            break
        generator = names[iteration % len(names)]
        token_lists = GENERATORS[generator](rng, max_records)
        case = DifferentialCase.make(
            token_lists,
            k=rng.randint(1, 10),
            similarity=_SIMILARITIES[rng.randrange(len(_SIMILARITIES))],
        )
        metamorphic = iteration % _METAMORPHIC_EVERY == 0
        metamorphic_seed = rng.randrange(2 ** 31)

        failures = _case_failures(case, backends, metamorphic, metamorphic_seed)
        failures = failures + _sanitizer_failures()
        report.iterations += 1
        if on_progress is not None:
            on_progress(iteration + 1, len(report.failures))
        if not failures:
            continue

        shrunk = shrink_case(
            case,
            lambda candidate: _case_failures(
                candidate, backends, metamorphic, metamorphic_seed
            ),
        )
        final_failures = _case_failures(
            shrunk, backends, metamorphic, metamorphic_seed
        ) or failures
        path = None
        if corpus_dir is not None:
            path = save_corpus_case(
                corpus_dir,
                shrunk,
                final_failures,
                seed=seed,
                generator=generator,
                description="fuzz seed=%d iteration=%d" % (seed, iteration),
            )
        report.failures.append(
            (iteration, generator, shrunk, final_failures, path)
        )

    report.elapsed = time.monotonic() - started
    return report


@dataclass
class StreamFuzzReport:
    """Outcome of one :func:`fuzz_stream_run`."""

    seed: int
    iterations: int = 0
    #: ``(iteration, generator, case, failure messages, corpus path)``.
    failures: List[
        Tuple[int, str, StreamCase, List[str], Optional[str]]
    ] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_stream_run(
    seed: int = 0,
    iterations: int = 200,
    budget: Optional[float] = None,
    backends: Optional[Sequence[str]] = None,
    corpus_dir: Optional[str] = None,
    max_failures: int = 5,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> StreamFuzzReport:
    """Differentially fuzz the streaming engine; shrink and save failures.

    The streaming twin of :func:`fuzz_run`: each iteration generates one
    adversarial event trace, runs it through every streaming backend
    (checked against the brute-force window oracle after *every* event,
    invariants armed) and, every :data:`_METAMORPHIC_EVERY`-th
    iteration, through the streaming metamorphic relations.  Failing
    traces are shrunk via :func:`shrink_stream_case` and, when
    *corpus_dir* is given, saved via :func:`save_stream_case`.
    Deterministic in *seed*; stops at *iterations*, *budget* seconds, or
    *max_failures* shrunk failures — whichever first.
    """
    rng = random.Random(seed)
    names = sorted(STREAM_GENERATORS)
    started = time.monotonic()
    report = StreamFuzzReport(seed=seed)

    for iteration in range(iterations):
        if budget is not None and time.monotonic() - started >= budget:
            break
        if len(report.failures) >= max_failures:
            break
        generator = names[iteration % len(names)]
        case = STREAM_GENERATORS[generator](rng)
        metamorphic = iteration % _METAMORPHIC_EVERY == 0

        failures = _stream_case_failures(case, backends, metamorphic)
        failures = failures + _sanitizer_failures()
        report.iterations += 1
        if on_progress is not None:
            on_progress(iteration + 1, len(report.failures))
        if not failures:
            continue

        shrunk = shrink_stream_case(
            case,
            lambda candidate: _stream_case_failures(
                candidate, backends, metamorphic
            ),
        )
        final_failures = _stream_case_failures(
            shrunk, backends, metamorphic
        ) or failures
        path = None
        if corpus_dir is not None:
            path = save_stream_case(
                corpus_dir,
                shrunk,
                final_failures,
                seed=seed,
                generator=generator,
                description="stream fuzz seed=%d iteration=%d"
                % (seed, iteration),
            )
        report.failures.append(
            (iteration, generator, shrunk, final_failures, path)
        )

    report.elapsed = time.monotonic() - started
    return report


@dataclass
class ServeFuzzReport:
    """Outcome of one :func:`fuzz_serve_run`."""

    seed: int
    iterations: int = 0
    #: ``(iteration, generator, case, failure messages, corpus path)``.
    failures: List[
        Tuple[int, str, ServeCase, List[str], Optional[str]]
    ] = field(default_factory=list)
    elapsed: float = 0.0
    #: ``False`` when loopback sockets are unusable and nothing ran.
    sockets: bool = True

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz_serve_run(
    seed: int = 0,
    iterations: int = 200,
    budget: Optional[float] = None,
    corpus_dir: Optional[str] = None,
    max_failures: int = 5,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> ServeFuzzReport:
    """Throw adversarial byte sessions at a live daemon; it must survive.

    The service twin of :func:`fuzz_run`.  One hardened in-process
    daemon (tight frame/queue caps, remote shutdown refused) serves the
    whole campaign; each iteration generates one adversarial session,
    runs it over a real socket and then checks three survival
    invariants — parseable replies, no swallowed unhandled exceptions,
    and a fresh ``ping`` still answered.  A failing session is shrunk
    against *fresh* daemons (so shrinking cannot be confused by state
    the failing session left behind) and saved to *corpus_dir* as
    ``serve_*.json``.  After a failure the campaign daemon is replaced,
    isolating iterations from each other.  Deterministic in *seed*;
    stops at *iterations*, *budget* seconds, or *max_failures* shrunk
    failures — whichever first.  Where loopback sockets are unusable the
    report returns immediately with ``sockets=False``.
    """
    from .differential import sockets_usable

    report = ServeFuzzReport(seed=seed)
    if not sockets_usable():
        report.sockets = False
        return report

    rng = random.Random(seed)
    names = sorted(SERVE_GENERATORS)
    started = time.monotonic()
    daemon = _make_fuzz_daemon()
    host, port = daemon.start()
    try:
        for iteration in range(iterations):
            if budget is not None and time.monotonic() - started >= budget:
                break
            if len(report.failures) >= max_failures:
                break
            generator = names[iteration % len(names)]
            case = SERVE_GENERATORS[generator](rng)

            failures = _serve_case_failures(host, port, case, daemon)
            failures = failures + _sanitizer_failures()
            report.iterations += 1
            if on_progress is not None:
                on_progress(iteration + 1, len(report.failures))
            if not failures:
                continue

            shrunk = shrink_serve_case(case, _replay_serve_case)
            final_failures = _replay_serve_case(shrunk) or failures
            path = None
            if corpus_dir is not None:
                path = save_serve_case(
                    corpus_dir,
                    shrunk,
                    final_failures,
                    seed=seed,
                    generator=generator,
                    description="serve fuzz seed=%d iteration=%d"
                    % (seed, iteration),
                )
            report.failures.append(
                (iteration, generator, shrunk, final_failures, path)
            )
            # The failing session may have wedged the campaign daemon;
            # replace it so later iterations start clean.
            try:
                daemon.stop()
            except RuntimeError:
                pass  # already recorded as a failure above
            daemon = _make_fuzz_daemon()
            host, port = daemon.start()
    finally:
        try:
            daemon.stop()
        except RuntimeError:
            pass  # the death is the recorded finding, not a new one

    report.elapsed = time.monotonic() - started
    return report
