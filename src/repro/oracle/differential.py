"""Differential testing: every backend against the brute-force oracle.

One adversarial input, one exhaustive reference answer, every production
backend checked against it under the appropriate equivalence relation:

================  =====================================================
backend           relation to :func:`repro.oracle.reference.naive_topk`
================  =====================================================
``sequential``    tie-equivalent (default options, invariants on)
``record-all``    tie-equivalent (``verification_mode="all"``, no event
                  compression — the paper's Fig. 3 ablation)
``ablated``       tie-equivalent (every optimisation off, verification
                  dedup off, no seeding — the plainest event loop)
``accel-off``     tie-equivalent (``accel="off"`` — the historical
                  scan loop, no bitmap prefilter)
``accel-python``  tie-equivalent (``accel="python"`` — flat-column
                  loop + bitmap prefilter, no NumPy)
``accel-numpy``   tie-equivalent (``accel="numpy"`` — vectorized batch
                  prefilter; registered only when NumPy is importable)
``accel-native``  tie-equivalent (``accel="native"`` — the compiled
                  kernel when numba is importable, otherwise the
                  fallback ladder resolves it to NumPy/Python; always
                  registered so the ladder itself is under test)
``accel-nobatch`` tie-equivalent (``batch_verify=False`` — the
                  first-generation per-survivor verification tail
                  behind the vectorized prefilter)
``sig-64``        tie-equivalent (``sig_bits=64`` — narrowest signature)
``sig-256``       tie-equivalent (``sig_bits=256``)
``sig-512``       tie-equivalent (``sig_bits=512`` — widest signature)
``parallel``      tie-equivalent (sharded backend, 5 shards, serial
                  execution so fuzz iterations stay cheap)
``parallel-accel-off``  the same, with acceleration disabled
``parallel-shm``  **byte-identical** across data planes — the sharded
                  join on the zero-copy shared-memory plane must return
                  the exact ordered row list of the pickling plane, and
                  the shm answer must be tie-equivalent to the oracle
                  (registered only where shared memory is usable)
``rs``            tie-equivalent on the *cross* pair space (records
                  split alternately into R and S)
``rs-accel-off``  the same, with acceleration disabled
``weighted``      same similarity multiset under uniform weights
                  (weighted Jaccard/cosine degenerate to the unweighted
                  functions; record-id spaces differ, so pairs are not
                  compared)
``pptopk``        its answer is a prefix of the oracle multiset, and
                  every oracle pair it misses lies below the threshold
                  schedule's floor (the baseline cannot enumerate pairs
                  below its last threshold)
``trace-on``      **byte-identical** — installing a tracer must be a
                  pure observation: the exact ordered ``(x, y, sim)``
                  row list of the sequential, accel-off, accel-numpy
                  (when importable) and sharded-parallel backends must
                  not change when ``TopkOptions.trace`` is set, and the
                  tracer must actually record spans (no silent no-op)
================  =====================================================

All invariant-capable backends run with ``check_invariants=True``, so a
differential sweep is simultaneously a runtime-invariant sweep; an
:class:`~repro.oracle.invariants.InvariantViolation` is reported as a
failure naming the violated invariant rather than crashing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..accel.kernel import numpy_available
from ..core.pptopk import _MIN_THRESHOLD, pptopk_join
from ..core.rs_join import TaggedCollection, topk_join_rs
from ..core.topk_join import TopkOptions, topk_join
from ..data.records import RecordCollection
from ..obs.tracer import Tracer
from ..parallel.join import parallel_topk_join
from ..parallel.shm import shm_usable
from ..result import JoinResult
from ..similarity.functions import SimilarityFunction, similarity_by_name
from ..weighted.functions import WeightedCosine, WeightedJaccard
from ..weighted.join import weighted_topk_join
from ..weighted.records import WeightedCollection
from ..stream.engine import StreamingTopkEngine
from ..stream.events import (
    ADVANCE,
    EXPIRE,
    INSERT,
    StreamEvent,
    events_from_lists,
    events_to_lists,
)
from .invariants import InvariantViolation
from .reference import (
    assert_topk_equivalent,
    naive_topk,
    naive_window_topk,
    topk_multiset,
)

__all__ = [
    "DifferentialCase",
    "StreamCase",
    "available_backends",
    "available_stream_backends",
    "run_differential",
    "run_stream_differential",
    "sockets_usable",
]

#: Shard count for the parallel backend — small enough that tiny fuzz
#: collections still split, large enough to exercise cross-shard tasks.
_FUZZ_SHARDS = 5

#: Uniform-weight twins of the unweighted similarity functions.
_WEIGHTED_TWINS = {"jaccard": WeightedJaccard, "cosine": WeightedCosine}

#: The pptopk baseline only has threshold schedules for these functions.
_PPTOPK_SIMS = ("jaccard", "cosine")


@dataclass(frozen=True)
class DifferentialCase:
    """One fuzz input: raw integer token lists plus join parameters."""

    records: Tuple[Tuple[int, ...], ...]
    k: int
    similarity: str = "jaccard"

    @classmethod
    def make(
        cls,
        records: Sequence[Sequence[int]],
        k: int,
        similarity: str = "jaccard",
    ) -> "DifferentialCase":
        return cls(
            tuple(tuple(tokens) for tokens in records), k, similarity
        )

    def collection(self) -> RecordCollection:
        """The canonical collection (duplicates kept — they are the point)."""
        return RecordCollection.from_integer_sets(self.records, dedupe=False)


BackendFn = Callable[
    [DifferentialCase, RecordCollection, List[JoinResult], SimilarityFunction],
    Optional[str],
]


def _rows(results: List[JoinResult]) -> List[Tuple[int, int, float]]:
    """The exact ordered row list — the byte-identity comparison key."""
    return [(r.x, r.y, r.similarity) for r in results]


def _equivalence_backend(options: TopkOptions) -> BackendFn:
    def run(
        case: DifferentialCase,
        collection: RecordCollection,
        expected: List[JoinResult],
        sim: SimilarityFunction,
    ) -> Optional[str]:
        actual = topk_join(collection, case.k, similarity=sim, options=options)
        assert_topk_equivalent(actual, expected)
        return None

    return run


def _parallel_backend(options: TopkOptions) -> BackendFn:
    def run(
        case: DifferentialCase,
        collection: RecordCollection,
        expected: List[JoinResult],
        sim: SimilarityFunction,
    ) -> Optional[str]:
        actual = parallel_topk_join(
            collection,
            case.k,
            similarity=sim,
            options=options,
            workers=1,
            shards=_FUZZ_SHARDS,
        )
        assert_topk_equivalent(actual, expected)
        return None

    return run


def _rs_backend(options: TopkOptions) -> BackendFn:
    def run(
        case: DifferentialCase,
        collection: RecordCollection,
        expected: List[JoinResult],
        sim: SimilarityFunction,
    ) -> Optional[str]:
        r_side = [
            tokens for i, tokens in enumerate(case.records) if i % 2 == 0
        ]
        s_side = [
            tokens for i, tokens in enumerate(case.records) if i % 2 == 1
        ]
        tagged = TaggedCollection.from_integer_sets(r_side, s_side)
        cross_expected = naive_topk(
            tagged.collection, case.k, similarity=sim, sides=tagged.sides
        )
        actual = topk_join_rs(
            tagged, case.k, similarity=sim, options=options
        )
        assert_topk_equivalent(actual, cross_expected)
        return None

    return run


def _weighted_backend(
    case: DifferentialCase,
    collection: RecordCollection,
    expected: List[JoinResult],
    sim: SimilarityFunction,
) -> Optional[str]:
    twin = _WEIGHTED_TWINS.get(case.similarity)
    if twin is None:
        return None  # no uniform-weight twin for this function
    universe = {t for tokens in case.records for t in tokens}
    if not universe:
        if expected:
            raise AssertionError(
                "oracle found %d pairs in a token-free collection"
                % len(expected)
            )
        return None
    weighted = WeightedCollection.from_integer_sets(
        case.records, weights={token: 1.0 for token in universe}
    )
    actual = weighted_topk_join(
        weighted, case.k, similarity=twin(), check_invariants=True
    )
    if topk_multiset(actual) != topk_multiset(expected):
        raise AssertionError(
            "uniform-weight %s multiset %r != unweighted oracle %r"
            % (
                case.similarity,
                topk_multiset(actual)[:8],
                topk_multiset(expected)[:8],
            )
        )
    return None


def _pptopk_backend(
    case: DifferentialCase,
    collection: RecordCollection,
    expected: List[JoinResult],
    sim: SimilarityFunction,
) -> Optional[str]:
    if case.similarity not in _PPTOPK_SIMS:
        return None
    actual = pptopk_join(collection, case.k, similarity=sim)
    actual_multiset = topk_multiset(actual)
    expected_multiset = topk_multiset(expected)
    if actual_multiset != expected_multiset[: len(actual_multiset)]:
        raise AssertionError(
            "pptopk multiset %r is not a prefix of the oracle's %r"
            % (actual_multiset[:8], expected_multiset[:8])
        )
    missed = [r.similarity for r in expected[len(actual):]]
    if any(value >= _MIN_THRESHOLD for value in missed):
        raise AssertionError(
            "pptopk returned %d results but the oracle has reachable "
            "pairs above the schedule floor %r: %r"
            % (len(actual), _MIN_THRESHOLD, missed[:8])
        )
    return None


def _trace_on_backend(
    case: DifferentialCase,
    collection: RecordCollection,
    expected: List[JoinResult],
    sim: SimilarityFunction,
) -> Optional[str]:
    """Tracing must be a pure observation, not a third code path.

    Every backend that accepts ``TopkOptions.trace`` is run twice —
    once plain, once with a fresh tracer installed — and the exact
    *ordered* ``(x, y, similarity)`` row lists must match byte for
    byte (strictly stronger than the tie-equivalence the other
    backends use: even a tie reordering would flag).  Each traced run
    must also record at least one span, so the plumbing cannot rot
    into a silent no-op that this check would then vacuously pass.
    """

    configs = [
        ("sequential", TopkOptions()),
        ("accel-off", TopkOptions(accel="off")),
    ]
    if numpy_available():
        configs.append(("accel-numpy", TopkOptions(accel="numpy")))
    for label, options in configs:
        plain = topk_join(collection, case.k, similarity=sim, options=options)
        tracer = Tracer()
        traced = topk_join(
            collection, case.k, similarity=sim,
            options=replace(options, trace=tracer),
        )
        if _rows(traced) != _rows(plain):
            raise AssertionError(
                "trace-on %s output diverges from trace-off: %r != %r"
                % (label, _rows(traced)[:8], _rows(plain)[:8])
            )
        if not tracer.spans:
            raise AssertionError(
                "trace-on %s recorded no spans — tracing silently no-ops"
                % label
            )
    plain = parallel_topk_join(
        collection, case.k, similarity=sim, options=TopkOptions(),
        workers=1, shards=_FUZZ_SHARDS,
    )
    tracer = Tracer()
    traced = parallel_topk_join(
        collection, case.k, similarity=sim,
        options=TopkOptions(trace=tracer), workers=1, shards=_FUZZ_SHARDS,
    )
    if _rows(traced) != _rows(plain):
        raise AssertionError(
            "trace-on parallel output diverges from trace-off: %r != %r"
            % (_rows(traced)[:8], _rows(plain)[:8])
        )
    if not tracer.spans:
        raise AssertionError(
            "trace-on parallel recorded no spans — the merger dropped "
            "the worker trace payloads"
        )
    assert_topk_equivalent(traced, expected)
    return None


def _parallel_shm_backend(
    case: DifferentialCase,
    collection: RecordCollection,
    expected: List[JoinResult],
    sim: SimilarityFunction,
) -> Optional[str]:
    """The zero-copy data plane must be invisible in the answer.

    The same sharded join runs twice — once on the pickling data plane
    (``shm=False``) and once through a full shared-memory round-trip
    (``shm=True``: create, attach, join over borrowed ``memoryview``
    tokens, detach, destroy) — and the exact *ordered* row lists must be
    byte-identical: flattening the collection into columns and decoding
    it back must not perturb a single similarity or tie order.  The shm
    answer is then checked against the oracle as well, so the plane is
    never vacuously compared against an already-wrong twin.
    """
    options = TopkOptions(check_invariants=True)
    pickled = parallel_topk_join(
        collection, case.k, similarity=sim, options=options,
        workers=1, shards=_FUZZ_SHARDS, shm=False,
    )
    shared = parallel_topk_join(
        collection, case.k, similarity=sim, options=options,
        workers=1, shards=_FUZZ_SHARDS, shm=True,
    )
    if _rows(shared) != _rows(pickled):
        raise AssertionError(
            "shared-memory rows diverge from the pickling plane: %r != %r"
            % (_rows(shared)[:8], _rows(pickled)[:8])
        )
    assert_topk_equivalent(shared, expected)
    return None


def _backend_registry() -> Dict[str, BackendFn]:
    registry = {
        "sequential": _equivalence_backend(
            TopkOptions(check_invariants=True)
        ),
        "accel-off": _equivalence_backend(
            TopkOptions(check_invariants=True, accel="off")
        ),
        "accel-python": _equivalence_backend(
            TopkOptions(check_invariants=True, accel="python")
        ),
        "accel-native": _equivalence_backend(
            TopkOptions(check_invariants=True, accel="native")
        ),
        "accel-nobatch": _equivalence_backend(
            TopkOptions(check_invariants=True, batch_verify=False)
        ),
        "sig-64": _equivalence_backend(
            TopkOptions(check_invariants=True, sig_bits=64)
        ),
        "sig-256": _equivalence_backend(
            TopkOptions(check_invariants=True, sig_bits=256)
        ),
        "sig-512": _equivalence_backend(
            TopkOptions(check_invariants=True, sig_bits=512)
        ),
        "record-all": _equivalence_backend(
            TopkOptions(
                check_invariants=True,
                verification_mode="all",
                compress_events=False,
            )
        ),
        "ablated": _equivalence_backend(
            TopkOptions(
                check_invariants=True,
                compress_events=False,
                verification_mode="off",
                index_optimization=False,
                access_optimization=False,
                positional_filter=False,
                suffix_filter=False,
                seed_results=False,
            )
        ),
        "parallel": _parallel_backend(TopkOptions(check_invariants=True)),
        "parallel-accel-off": _parallel_backend(
            TopkOptions(check_invariants=True, accel="off")
        ),
        "rs": _rs_backend(TopkOptions(check_invariants=True)),
        "rs-accel-off": _rs_backend(
            TopkOptions(check_invariants=True, accel="off")
        ),
        "weighted": _weighted_backend,
        "pptopk": _pptopk_backend,
        "trace-on": _trace_on_backend,
    }
    if numpy_available():
        registry["accel-numpy"] = _equivalence_backend(
            TopkOptions(check_invariants=True, accel="numpy")
        )
    if shm_usable():
        registry["parallel-shm"] = _parallel_shm_backend
    return registry


_BACKENDS = _backend_registry()


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`run_differential`'s *backends* argument."""
    return tuple(_BACKENDS)


def run_differential(
    case: DifferentialCase,
    backends: Optional[Sequence[str]] = None,
) -> List[str]:
    """Run *case* through every backend; return failure descriptions.

    An empty list means all backends agreed with the oracle and no runtime
    invariant fired.  Unexpected exceptions (crashes on degenerate input)
    are failures too, not propagated errors — the fuzzer must survive its
    own findings to shrink them.
    """
    names = list(backends) if backends is not None else list(_BACKENDS)
    unknown = [name for name in names if name not in _BACKENDS]
    if unknown:
        raise ValueError(
            "unknown backends %r (choose from %s)"
            % (unknown, ", ".join(_BACKENDS))
        )

    sim = similarity_by_name(case.similarity)
    collection = case.collection()
    expected = naive_topk(collection, case.k, similarity=sim)

    failures: List[str] = []
    for name in names:
        try:
            message = _BACKENDS[name](case, collection, expected, sim)
        except InvariantViolation as violation:
            failures.append(
                "%s: runtime invariant %r: %s"
                % (name, violation.invariant, violation)
            )
        except AssertionError as mismatch:
            failures.append("%s: differential mismatch: %s" % (name, mismatch))
        except Exception as crash:  # noqa: BLE001 — crashes are findings
            failures.append(
                "%s: crashed with %s: %s" % (name, type(crash).__name__, crash)
            )
        else:
            if message:
                failures.append("%s: %s" % (name, message))
    return failures


# ----------------------------------------------------------------------
# Streaming differential: the sliding-window engine against the oracle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StreamCase:
    """One streaming fuzz input: an event trace plus engine parameters."""

    events: Tuple[StreamEvent, ...]
    k: int
    window: int = 0
    policy: str = "count"
    similarity: str = "jaccard"

    @classmethod
    def make(
        cls,
        events: Sequence[StreamEvent],
        k: int,
        window: int = 0,
        policy: str = "count",
        similarity: str = "jaccard",
    ) -> "StreamCase":
        return cls(tuple(events), k, window, policy, similarity)

    def events_payload(self) -> List[List[object]]:
        """The JSON-ready compact event list (corpus serialization)."""
        return events_to_lists(self.events)

    @classmethod
    def from_payload(
        cls,
        events: Sequence[Sequence[object]],
        k: int,
        window: int = 0,
        policy: str = "count",
        similarity: str = "jaccard",
    ) -> "StreamCase":
        return cls.make(
            events_from_lists(events), k, window, policy, similarity
        )

    def options(self, **overrides: object) -> TopkOptions:
        base = TopkOptions(
            window_size=self.window, window_policy=self.policy
        )
        return replace(base, **overrides)  # type: ignore[arg-type]


def _window_snapshots(
    case: StreamCase,
) -> List[List[Tuple[int, Tuple[int, ...]]]]:
    """The live ``(sid, tokens)`` set after each event of *case*.

    An independent ~20-line replay of the window semantics (count
    displacement, relative advance, half-open time window, FIFO expiry)
    so a bug in :mod:`repro.stream.window` cannot cancel out of the
    comparison.
    """
    live: List[Tuple[int, float, Tuple[int, ...]]] = []
    next_sid = 0
    clock = 0.0
    snapshots: List[List[Tuple[int, Tuple[int, ...]]]] = []
    for event in case.events:
        if event.kind == "insert":
            if case.policy == "count" and case.window > 0:
                while len(live) >= case.window:
                    live.pop(0)
            canonical = tuple(sorted(set(event.tokens)))
            live.append((next_sid, clock, canonical))
            next_sid += 1
        elif event.kind == "expire":
            del live[: min(int(event.amount), len(live))]
        elif case.policy == "count":
            del live[: min(int(event.amount), len(live))]
        else:
            clock += event.amount
            if case.window > 0:
                while live and live[0][1] <= clock - case.window:
                    live.pop(0)
        snapshots.append(
            [(sid, tokens) for sid, __, tokens in live if tokens]
        )
    return snapshots


StreamBackendFn = Callable[
    [
        StreamCase,
        List[List[Tuple[int, Tuple[int, ...]]]],
        SimilarityFunction,
    ],
    Optional[str],
]


def _stream_rows(engine: StreamingTopkEngine) -> List[Tuple[int, int, float]]:
    return [(r.x, r.y, r.similarity) for r in engine.results()]


def _run_stream_engine(
    case: StreamCase,
    snapshots: List[List[Tuple[int, Tuple[int, ...]]]],
    sim: SimilarityFunction,
    mode: str,
    options: TopkOptions,
) -> StreamingTopkEngine:
    """Drive one engine through *case*, checking after **every** event.

    Three per-event checks: (1) the engine's answer is tie-equivalent to
    the brute-force oracle over the independently-replayed live window;
    (2) the emitted deltas, folded into a shadow result set, reproduce
    the engine's reported rows exactly — a lost "leave" or duplicate
    "enter" cannot hide; (3) the runtime invariants are armed, so the
    structural streaming invariants fire at the offending event.
    """
    engine = StreamingTopkEngine(
        case.k, similarity=sim, options=options, mode=mode
    )
    shadow: Dict[Tuple[int, int], float] = {}
    with engine:
        for index, event in enumerate(case.events):
            deltas = engine.apply(event)
            for delta in deltas:
                pair = (delta.x, delta.y)
                if delta.action == "leave":
                    if pair not in shadow:
                        raise AssertionError(
                            "event %d: delta says pair %r left but it was "
                            "never reported live" % (index, pair)
                        )
                    del shadow[pair]
                else:
                    if pair in shadow:
                        raise AssertionError(
                            "event %d: delta says pair %r entered twice"
                            % (index, pair)
                        )
                    shadow[pair] = delta.similarity
            rows = _stream_rows(engine)
            row_map = {(x, y): value for x, y, value in rows}
            if shadow != row_map:
                raise AssertionError(
                    "event %d: replaying the deltas gives %r but the "
                    "engine reports %r"
                    % (index, sorted(shadow.items())[:8], rows[:8])
                )
            expected = naive_window_topk(snapshots[index], case.k, sim)
            assert_topk_equivalent(
                engine.results(), expected, context="event %d" % index
            )
    return engine


def _stream_backend(mode: str, accel: str) -> StreamBackendFn:
    def run(
        case: StreamCase,
        snapshots: List[List[Tuple[int, Tuple[int, ...]]]],
        sim: SimilarityFunction,
    ) -> Optional[str]:
        options = case.options(check_invariants=True, accel=accel)
        _run_stream_engine(case, snapshots, sim, mode, options)
        return None

    return run


def _stream_trace_backend(
    case: StreamCase,
    snapshots: List[List[Tuple[int, Tuple[int, ...]]]],
    sim: SimilarityFunction,
) -> Optional[str]:
    """Tracing a stream must be a pure observation (cf. ``trace-on``).

    The engine runs twice — plain, then with a tracer installed — and
    the final row lists must be byte-identical; the traced run must
    record phase times and at least one span at close.
    """
    plain = _run_stream_engine(
        case, snapshots, sim, "incremental", case.options()
    )
    tracer = Tracer()
    traced = _run_stream_engine(
        case, snapshots, sim, "incremental", case.options(trace=tracer)
    )
    if _stream_rows(traced) != _stream_rows(plain):
        raise AssertionError(
            "stream trace-on rows diverge from trace-off: %r != %r"
            % (_stream_rows(traced)[:8], _stream_rows(plain)[:8])
        )
    if any(e.kind == "insert" for e in case.events):
        if not tracer.phase_times():
            raise AssertionError(
                "stream trace-on recorded no phase times — the ingest "
                "timers silently no-op"
            )
        if not tracer.spans:
            raise AssertionError(
                "stream trace-on recorded no spans — close() dropped "
                "the summary span"
            )
    return None


def sockets_usable() -> bool:
    """Whether loopback TCP sockets work in this environment.

    Mirrors :func:`repro.parallel.shm.shm_usable`: capability-gated
    backends (the ``serve-daemon`` differential) register only where the
    capability actually exists, so sandboxes without networking skip
    them instead of failing them.
    """
    import socket

    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
    except OSError:
        return False
    return True


def _event_request(event: StreamEvent) -> Tuple[str, Dict[str, object]]:
    """The protocol verb and payload fields of one stream event."""
    if event.kind == INSERT:
        return "insert", {"tokens": list(event.tokens)}
    if event.kind == EXPIRE:
        return "expire", {"count": int(event.amount)}
    assert event.kind == ADVANCE
    return "advance", {"amount": event.amount}


def _serve_daemon_backend(
    case: StreamCase,
    snapshots: List[List[Tuple[int, Tuple[int, ...]]]],
    sim: SimilarityFunction,
) -> Optional[str]:
    """The daemon must be a **byte-identical** network veneer.

    The case replays twice.  In process: a plain engine applies every
    event and each delta is serialized through
    :func:`repro.serve.protocol.delta_line`.  Over the wire: a real
    daemon (own thread, real sockets) receives the same events from a
    scripted client while a second client subscribes.  Three byte-level
    checks: every reply's delta list re-encodes to exactly the
    in-process lines; the final ``query`` rows equal the in-process
    rows; and the subscriber's full push stream — flushed by graceful
    shutdown and terminated by the ``shutdown`` event frame — equals
    the flattened in-process delta sequence.  ``snapshots`` is unused:
    the in-process engine *is* the reference here (the other stream
    backends already tie it to the window oracle).
    """
    del snapshots
    from ..serve import (
        InProcessDaemon,
        ServeClient,
        ServeOptions,
        delta_line,
        encode,
    )

    def fresh_engine() -> StreamingTopkEngine:
        return StreamingTopkEngine(
            case.k,
            similarity=similarity_by_name(case.similarity),
            options=case.options(),
            mode="incremental",
        )

    expected: List[List[bytes]] = []
    apply_errors: List[Optional[str]] = []
    engine = fresh_engine()
    with engine:
        for event in case.events:
            try:
                deltas = engine.apply(event)
            except ValueError as error:
                expected.append([])
                apply_errors.append(str(error))
            else:
                expected.append([delta_line(d) for d in deltas])
                apply_errors.append(None)
        final_rows = _stream_rows(engine)

    daemon = InProcessDaemon(
        fresh_engine,
        ServeOptions(
            queue_limit=max(16, len(case.events) + 1),
            read_timeout=30.0,
            idle_timeout=0.0,
        ),
    )
    host, port = daemon.start()
    subscriber: Optional[ServeClient] = None
    requester: Optional[ServeClient] = None
    try:
        subscriber = ServeClient(host, port)
        reply = subscriber.request("subscribe")
        if not reply.get("ok"):
            raise AssertionError("subscribe refused: %r" % reply)
        requester = ServeClient(host, port)
        for index, event in enumerate(case.events):
            verb, fields = _event_request(event)
            reply = requester.request(verb, **fields)
            if apply_errors[index] is not None:
                error = reply.get("error")
                if reply.get("ok") is not False or (
                    not isinstance(error, dict)
                    or error.get("code") != "bad-request"
                ):
                    raise AssertionError(
                        "event %d: engine raised %r but the daemon replied "
                        "%r" % (index, apply_errors[index], reply)
                    )
                continue
            if not reply.get("ok"):
                raise AssertionError(
                    "event %d: daemon refused a valid event: %r"
                    % (index, reply)
                )
            got = [
                encode(
                    {
                        "action": delta["action"],
                        "x": delta["x"],
                        "y": delta["y"],
                        "similarity": delta["similarity"],
                    }
                )
                for delta in reply.get("deltas", ())
            ]
            if got != expected[index]:
                raise AssertionError(
                    "event %d: daemon reply deltas diverge from the "
                    "in-process engine: %r != %r"
                    % (index, got[:4], expected[index][:4])
                )
        query = requester.request("query")
        rows = [
            (int(x), int(y), float(value))
            for x, y, value in query.get("results", ())
        ]
        if rows != final_rows:
            raise AssertionError(
                "final query rows diverge from the in-process engine: "
                "%r != %r" % (rows[:8], final_rows[:8])
            )
        requester.close()
        requester = None
        daemon.stop()  # graceful: flushes subscriber deltas, sends shutdown
        frames = subscriber.drain_until_eof()
        pushed = [
            encode(
                {
                    "action": frame["action"],
                    "x": frame["x"],
                    "y": frame["y"],
                    "similarity": frame["similarity"],
                }
            )
            for frame in frames
            if frame.get("event") == "delta"
        ]
        flattened = [line for lines in expected for line in lines]
        if pushed != flattened:
            raise AssertionError(
                "subscriber push stream diverges from the in-process "
                "delta sequence: %d pushed vs %d expected (first "
                "difference at %d)"
                % (
                    len(pushed),
                    len(flattened),
                    next(
                        (
                            i
                            for i, (a, b) in enumerate(zip(pushed, flattened))
                            if a != b
                        ),
                        min(len(pushed), len(flattened)),
                    ),
                )
            )
        if not frames or frames[-1].get("event") != "shutdown":
            raise AssertionError(
                "graceful shutdown sent no terminal shutdown event frame"
            )
        server = daemon.server
        unhandled = server.drain_unhandled() if server is not None else []
        if unhandled:
            raise AssertionError(
                "daemon swallowed unhandled exceptions: %r" % unhandled
            )
    finally:
        for client in (requester, subscriber):
            if client is not None:
                try:
                    client.close()
                except OSError:  # pragma: no cover - teardown best effort
                    pass
        daemon.stop()
    return None


_STREAM_BACKENDS: Dict[str, StreamBackendFn] = {
    "stream-incremental": _stream_backend("incremental", "on"),
    "stream-incremental-accel-off": _stream_backend("incremental", "off"),
    "stream-recompute": _stream_backend("recompute", "on"),
    "stream-recompute-accel-off": _stream_backend("recompute", "off"),
    "stream-trace-on": _stream_trace_backend,
}
if sockets_usable():
    _STREAM_BACKENDS["serve-daemon"] = _serve_daemon_backend


def available_stream_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`run_stream_differential`."""
    return tuple(_STREAM_BACKENDS)


def run_stream_differential(
    case: StreamCase,
    backends: Optional[Sequence[str]] = None,
) -> List[str]:
    """Run *case* through every streaming backend; return failure strings.

    The incremental engine, the per-event full-recompute twin, and their
    acceleration variants must all stay tie-equivalent to the
    brute-force window oracle after **every single event**, with runtime
    invariants armed.  Where loopback sockets work, ``serve-daemon``
    additionally replays the case through a real network daemon and
    requires byte-identical delta lines (see
    :func:`_serve_daemon_backend`).  Failure semantics match
    :func:`run_differential`: invariant violations, mismatches and
    crashes are collected, not propagated.
    """
    names = (
        list(backends) if backends is not None else list(_STREAM_BACKENDS)
    )
    unknown = [name for name in names if name not in _STREAM_BACKENDS]
    if unknown:
        raise ValueError(
            "unknown stream backends %r (choose from %s)"
            % (unknown, ", ".join(_STREAM_BACKENDS))
        )
    sim = similarity_by_name(case.similarity)
    snapshots = _window_snapshots(case)
    failures: List[str] = []
    for name in names:
        try:
            message = _STREAM_BACKENDS[name](case, snapshots, sim)
        except InvariantViolation as violation:
            failures.append(
                "%s: runtime invariant %r: %s"
                % (name, violation.invariant, violation)
            )
        except AssertionError as mismatch:
            failures.append("%s: differential mismatch: %s" % (name, mismatch))
        except Exception as crash:  # noqa: BLE001 — crashes are findings
            failures.append(
                "%s: crashed with %s: %s" % (name, type(crash).__name__, crash)
            )
        else:
            if message:
                failures.append("%s: %s" % (name, message))
    return failures
