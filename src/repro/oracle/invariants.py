"""Runtime invariant checks for the event-driven top-k join.

:class:`CheckHooks` is threaded through :func:`repro.core.topk_join.
topk_join_iter` when ``TopkOptions.check_invariants`` is set (or the
``REPRO_CHECK=1`` environment variable is exported).  When off, the core
pays exactly one ``is not None`` test per hook site — no object is even
constructed — so production runs are unaffected.

The hooks assert the paper's structural invariants *while the join runs*,
which localizes a violation to the exact event/decision that caused it
(a differential mismatch only says "some pair went missing"):

* events are popped in non-increasing probing-bound (``ub_p``) order, and
  every popped bound equals Lemma-1's reference value recomputed
  independently through ``from_overlap`` — an off-by-one in a
  ``probing_upper_bound`` override cannot hide;
* ``s_k`` is monotone non-decreasing over the join's lifetime;
* every pair is verified at most once while verification dedup is active
  (Algorithm 6's exactly-once claim), and every emitted pair was actually
  verified;
* the indexing decision (Algorithms 7–8) agrees with Lemma-4's reference
  bound ``F(|x|-p+1, |x|, |x|)``, and no insertion happens for a record
  whose indexing has stopped — "no index insertion after ``ub_i < s_k``";
* progressively emitted results are non-increasing, at least the best
  remaining event bound, cross-side in bipartite mode, and their reported
  similarity matches an independent re-scoring of the two records.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Set, Tuple

from ..similarity.functions import SimilarityFunction

if TYPE_CHECKING:
    from ..data.records import RecordCollection
    from ..index.inverted import InvertedIndex
    from ..stream.engine import StreamingTopkEngine

__all__ = [
    "CheckHooks",
    "InvariantViolation",
    "StreamCheckHooks",
    "invariant_checks_enabled",
]

Pair = Tuple[int, int]

#: Environment variable that force-enables invariant checks everywhere.
ENV_FLAG = "REPRO_CHECK"


class InvariantViolation(AssertionError):
    """A runtime invariant of the top-k join was violated."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__("invariant %r violated: %s" % (invariant, message))
        self.invariant = invariant


def invariant_checks_enabled(options: object) -> bool:
    """Whether to run invariant checks for *options* (flag or env var)."""
    if getattr(options, "check_invariants", False):
        return True
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class CheckHooks:
    """Invariant assertions observed by one join run.

    *collection* enables independent re-scoring of emitted pairs (pass
    ``None`` to skip, e.g. for the weighted join whose records are not
    plain token tuples).  *dedup_active* must be false when
    ``verification_mode == "off"`` — duplicate verifications are then
    expected and only the emitted-implies-verified half is asserted.
    *reference_bounds* disables the Lemma 1/4 recomputation for backends
    whose bound formulas take different arguments (the weighted join);
    the structural invariants (ordering, monotonicity, exactly-once,
    stop-indexing) still apply there.
    """

    def __init__(
        self,
        similarity: SimilarityFunction,
        k: int,
        collection: Optional["RecordCollection"] = None,
        sides: Optional[Sequence[int]] = None,
        dedup_active: bool = True,
        reference_bounds: bool = True,
    ) -> None:
        self.similarity = similarity
        self.k = k
        self.collection = collection
        self.sides = sides
        self.dedup_active = dedup_active
        self.reference_bounds = reference_bounds
        self._last_pop: Optional[float] = None
        self._last_s_k: Optional[float] = None
        self._last_emit: Optional[float] = None
        self._verified: Set[Pair] = set()
        self._stopped: Set[int] = set()
        self.events = 0
        self.verifications = 0
        self.emits = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _fail(invariant: str, message: str) -> None:
        raise InvariantViolation(invariant, message)

    def _reference_bound(self, size: int, prefix: int, partner: int) -> float:
        """``F(|x|-p+1, |x|, partner)`` — the Lemma 1/4 reference bounds.

        Computed through ``from_overlap`` directly, independent of the
        ``probing_upper_bound`` / ``indexing_upper_bound`` methods under
        test, so a buggy override is caught by disagreement.
        """
        overlap = size - prefix + 1
        if overlap <= 0:
            return 0.0
        return self.similarity.from_overlap(overlap, size, partner)

    # ------------------------------------------------------------------
    # Hook sites
    # ------------------------------------------------------------------

    def on_pop(
        self, bound: float, prefix: int, size: int, s_k: float
    ) -> None:
        """A prefix event ``<(size), p, bound>`` was popped from the heap."""
        self.events += 1
        if self._last_pop is not None and bound > self._last_pop:
            self._fail(
                "event-order",
                "popped bound %r after %r — events must come out in "
                "non-increasing ub_p order" % (bound, self._last_pop),
            )
        self._last_pop = bound
        if not self.reference_bounds:
            self.on_s_k(s_k)
            return
        reference = self._reference_bound(size, prefix, size - prefix + 1)
        if bound != reference:
            self._fail(
                "ub_p",
                "event for size %d at prefix %d carries bound %r but "
                "Lemma 1 gives %r" % (size, prefix, bound, reference),
            )
        self.on_s_k(s_k)

    def on_s_k(self, s_k: float) -> None:
        """Observe the current k-th temporary similarity."""
        if self._last_s_k is not None and s_k < self._last_s_k:
            self._fail(
                "s_k-monotone",
                "s_k dropped from %r to %r" % (self._last_s_k, s_k),
            )
        self._last_s_k = s_k

    def on_verified(self, pair: Pair) -> None:
        """The exact similarity of *pair* was just computed."""
        self.verifications += 1
        if self.dedup_active and pair in self._verified:
            self._fail(
                "verify-once",
                "pair %r verified twice — Algorithm 6 guarantees every "
                "candidate is verified exactly once" % (pair,),
            )
        self._verified.add(pair)

    def on_index_decision(
        self,
        rid: int,
        size: int,
        prefix: int,
        threshold: float,
        inserted: bool,
    ) -> None:
        """Record *rid* was (not) indexed at prefix position *prefix*."""
        reference = (
            self._reference_bound(size, prefix, size)
            if self.reference_bounds
            else None
        )
        if reference is not None and inserted != (reference > threshold):
            self._fail(
                "ub_i",
                "indexing decision for rid %d (size %d, prefix %d) was "
                "%s, but Lemma 4's bound %r vs threshold %r requires %s"
                % (
                    rid,
                    size,
                    prefix,
                    "insert" if inserted else "stop",
                    reference,
                    threshold,
                    "insert" if reference > threshold else "stop",
                ),
            )
        if inserted:
            if rid in self._stopped:
                self._fail(
                    "stop-indexing",
                    "rid %d was indexed again after its indexing bound "
                    "fell below s_k" % rid,
                )
        else:
            self._stopped.add(rid)

    def on_emit(
        self,
        pair: Pair,
        value: float,
        remaining_bound: float,
        progressive: bool,
    ) -> None:
        """*pair* was emitted with similarity *value*.

        *remaining_bound* is the best unprocessed event bound;
        *progressive* distinguishes mid-join emission (where the paper's
        Section VII-F guarantee ``value >= remaining_bound`` must hold)
        from the final drain (where only the ordering is guaranteed —
        e.g. a cooperating sub-join drains rows below the shared global
        bound for the merger to cut).
        """
        self.emits += 1
        if self.sides is not None and self.sides[pair[0]] == self.sides[pair[1]]:
            self._fail(
                "cross-pair",
                "emitted pair %r joins two records of the same side" % (pair,),
            )
        if pair not in self._verified:
            self._fail(
                "emit-verified",
                "pair %r emitted without ever being verified" % (pair,),
            )
        if progressive and value < remaining_bound:
            self._fail(
                "emit-bound",
                "pair %r emitted at %r below the remaining event bound %r"
                % (pair, value, remaining_bound),
            )
        if self._last_emit is not None and value > self._last_emit:
            self._fail(
                "emit-order",
                "pair %r emitted at %r after a %r emission — results must "
                "be non-increasing" % (pair, value, self._last_emit),
            )
        self._last_emit = value
        if self.collection is not None:
            records = self.collection.records
            recomputed = self.similarity.similarity(
                records[pair[0]].tokens, records[pair[1]].tokens
            )
            if recomputed != value:
                self._fail(
                    "emit-similarity",
                    "pair %r emitted at %r but re-scoring the records "
                    "gives %r" % (pair, value, recomputed),
                )


class StreamCheckHooks:
    """Invariant assertions for one streaming-engine lifetime.

    Armed by :class:`repro.stream.engine.StreamingTopkEngine` under the
    same switch as the batch hooks (``TopkOptions.check_invariants`` or
    ``REPRO_CHECK=1``).  After every public event the engine calls
    :meth:`after_event`, which asserts the structural streaming
    invariants:

    * every reported pair joins two currently-live window members;
    * the result set holds exactly ``min(k, P)`` pairs, ``P`` being the
      live pair count — the buffer is never silently under-filled;
    * no expired record survives in any posting list, and every posting
      list stays in arrival (sid) order — the precondition of FIFO
      ``trim_head`` eviction;
    * ``s_k`` is monotone non-decreasing *between relaxations*: it may
      fall only across an event the engine flagged via
      :meth:`on_relaxation` (a top-k member died), mirroring the batch
      ``s_k-monotone`` invariant piecewise.

    The expiry path additionally asserts, per trimmed token, that the
    head posting belongs to the expiring record (:meth:`on_trim`), and
    each refill asserts the rebuilt bound never exceeds the pre-expiry
    bound (:meth:`on_refill` — relaxation only loosens).
    """

    def __init__(self) -> None:
        self._last_s_k: Optional[float] = None
        self._relaxed = False
        self.events = 0
        self.refills = 0

    @staticmethod
    def _fail(invariant: str, message: str) -> None:
        raise InvariantViolation(invariant, message)

    # ------------------------------------------------------------------
    # Hook sites
    # ------------------------------------------------------------------

    def on_trim(self, index: "InvertedIndex", token: int, sid: int) -> None:
        """About to ``trim_head(token, 1)`` while expiring record *sid*."""
        postings = index.postings(token)
        if not postings or postings[0][0] != sid:
            head = postings[0][0] if postings else None
            self._fail(
                "stream-trim-head",
                "expiring sid %d but the head posting of token %d is %r "
                "— FIFO expiry requires the oldest record at every list "
                "head" % (sid, token, head),
            )

    def on_relaxation(self) -> None:
        """The current event may legitimately lower ``s_k`` (a member
        of the top-k died)."""
        self._relaxed = True

    def on_refill(self, bound_before: float, bound_after: float) -> None:
        """A refill rebuilt the buffer; *bound_before* is the pre-expiry
        ``s_k``."""
        self.refills += 1
        if bound_after > bound_before:
            self._fail(
                "stream-s_k-relaxation",
                "refill raised s_k from %r to %r — the live pair space "
                "only shrank, so the bound may only relax"
                % (bound_before, bound_after),
            )

    def after_event(self, engine: "StreamingTopkEngine") -> None:
        """Assert the structural invariants of the post-event state."""
        self.events += 1
        live = set(engine.live_sids())
        results = engine.results()
        for result in results:
            if result.x not in live or result.y not in live:
                self._fail(
                    "stream-window-membership",
                    "result pair (%d, %d) references an expired record "
                    "(live sids: %s)"
                    % (result.x, result.y, sorted(live)),
                )
        nonempty = engine.nonempty_count
        expected = min(engine.k, nonempty * (nonempty - 1) // 2)
        if len(results) != expected:
            self._fail(
                "stream-completeness",
                "%d results for %d nonempty live records and k=%d — "
                "the buffer must hold exactly min(k, P) = %d pairs"
                % (len(results), nonempty, engine.k, expected),
            )
        last_by_token: Dict[int, int] = {}
        for token, sid in engine.index_entries():
            if sid not in live:
                self._fail(
                    "stream-expired-posting",
                    "token %d still lists expired sid %d after the event"
                    % (token, sid),
                )
            previous = last_by_token.get(token)
            if previous is not None and sid <= previous:
                self._fail(
                    "stream-posting-order",
                    "token %d postings out of arrival order (%d after %d) "
                    "— FIFO head eviction would evict the wrong record"
                    % (token, sid, previous),
                )
            last_by_token[token] = sid
        s_k = engine.s_k
        if (
            self._last_s_k is not None
            and not self._relaxed
            and s_k < self._last_s_k
        ):
            self._fail(
                "stream-s_k-monotone",
                "s_k dropped from %r to %r without a relaxation event"
                % (self._last_s_k, s_k),
            )
        self._last_s_k = s_k
        self._relaxed = False
