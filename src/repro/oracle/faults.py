"""Deliberately buggy similarity functions for harness self-tests.

A correctness harness that has never caught a bug proves nothing.  These
classes inject the classic off-by-one into the paper's bound formulas —
evaluating a bound at prefix position ``p + 1`` instead of ``p``, which
makes it *too tight* and silently drops true results — so tests can
demonstrate that each defect is caught twice over:

* at runtime, by :class:`repro.oracle.invariants.CheckHooks` (the hooks
  recompute Lemma 1/4's bounds independently through ``from_overlap`` and
  fail on the first disagreement, localizing the bug to one decision);
* end-to-end, by the differential oracle (the join's answer no longer
  matches :func:`repro.oracle.reference.naive_topk`).

Never use these outside tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..similarity.functions import Jaccard

__all__ = [
    "LINT_FAULTS",
    "OffByOneIndexingBound",
    "OffByOneProbingBound",
    "SeededLintFault",
]


class OffByOneIndexingBound(Jaccard):
    """Jaccard with Lemma 4's indexing bound evaluated one position late.

    ``ub_i(p) = (|x|-p)/(|x|+p)`` instead of ``(|x|-p+1)/(|x|+p-1)``: the
    bound is strictly smaller than the true one, so records stop being
    indexed one event early and pairs whose first common token is that
    last prefix position are never generated.
    """

    def indexing_upper_bound(self, size_x: int, prefix: int) -> float:
        return super().indexing_upper_bound(size_x, prefix + 1)


class OffByOneProbingBound(Jaccard):
    """Jaccard with Lemma 1's probing bound evaluated one position late.

    ``ub_p(p) = 1 - p/|x|`` instead of ``1 - (p-1)/|x|``: events sort and
    terminate on an undervalued bound, so the loop can halt while a true
    top-k pair is still undiscovered.
    """

    def probing_upper_bound(self, size_x: int, prefix: int) -> float:
        return super().probing_upper_bound(size_x, prefix + 1)


# ---------------------------------------------------------------------------
# Seeded faults for the static-analysis self-tests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeededLintFault:
    """A historical-bug-shaped source mutation one lint checker must catch.

    Mirrors the off-by-one classes above, one layer up: instead of a
    buggy *object* handed to the join, this is a buggy *source text*
    handed to :class:`repro.analysis.project.Project`.  The self-test
    for each checker applies the fault to the real module source (via
    ``Project.with_source``) and asserts the checker fires on the
    mutated file — proving the checker detects the defect class it
    exists for, not merely that it stays quiet on healthy code.

    ``replacements`` is a sequence of ``(old, new)`` literal edits;
    :meth:`apply` raises if any ``old`` is absent, so these faults fail
    loudly (instead of silently passing) when the target module drifts.
    """

    checker: str
    repro_path: str
    description: str
    replacements: Tuple[Tuple[str, str], ...]
    #: Repro path the finding should anchor at; defaults to the mutated
    #: module.  Cross-file checkers may report elsewhere — removing a
    #: backend from the fuzzer is flagged at the backend's definition.
    expect_path: str = ""

    @property
    def expected_path(self) -> str:
        return self.expect_path or self.repro_path

    def apply(self, source: str) -> str:
        """Return *source* with every replacement applied (all must hit)."""
        for old, new in self.replacements:
            if old not in source:
                raise ValueError(
                    "seeded fault %r: pattern %r not found in %s — the "
                    "module changed; update the fault"
                    % (self.description, old, self.repro_path)
                )
            source = source.replace(old, new)
        return source


#: One (or two) representative faults per checker.  Each mutation is the
#: minimal re-introduction of the bug class the checker guards against.
LINT_FAULTS: Tuple[SeededLintFault, ...] = (
    SeededLintFault(
        checker="bound-safety",
        repro_path="similarity/functions.py",
        description="integer division in Jaccard.from_overlap",
        replacements=(("return overlap / union", "return overlap // union"),),
    ),
    SeededLintFault(
        checker="bound-safety",
        repro_path="core/topk_join.py",
        description="float != on the monotone s_k cache check",
        replacements=(
            ("if new_s_k > s_k or not full:", "if new_s_k != s_k or not full:"),
        ),
    ),
    SeededLintFault(
        checker="race",
        repro_path="parallel/worker.py",
        description="task function writes to the shared _STATE dict",
        replacements=(
            ("    i, j = task", '    i, j = task\n    _STATE["last_task"] = task'),
        ),
    ),
    SeededLintFault(
        checker="race",
        repro_path="parallel/bound.py",
        description="shared-bound write outside get_lock()",
        replacements=(
            (
                '        with _tracked(self._value.get_lock(), "bound.value"):\n'
                "            if candidate > self._value.value:\n"
                "                self._value.value = candidate\n"
                "                with _tracked(self._generation.get_lock(),"
                ' "bound.generation"):\n'
                "                    self._generation.value += 1",
                "        if candidate > self._value.value:\n"
                "            self._value.value = candidate\n"
                '            with _tracked(self._generation.get_lock(),'
                ' "bound.generation"):\n'
                "                self._generation.value += 1",
            ),
        ),
    ),
    SeededLintFault(
        checker="options-plumbing",
        repro_path="core/topk_join.py",
        description="TopkOptions field nothing ever reads",
        replacements=(
            (
                "    check_invariants: bool = False",
                "    check_invariants: bool = False\n"
                "    unplumbed_flag: bool = False",
            ),
        ),
    ),
    SeededLintFault(
        checker="options-plumbing",
        repro_path="parallel/worker.py",
        description="worker rebuilds TopkOptions instead of replace()",
        replacements=(
            (
                "options = replace(\n"
                "        base,\n"
                "        bound_provider=_STATE[\"bound\"],",
                "options = TopkOptions(\n"
                "        bound_provider=_STATE[\"bound\"],",
            ),
        ),
    ),
    SeededLintFault(
        checker="options-plumbing",
        repro_path="parallel/worker.py",
        description="worker pins sig_bits, ignoring the caller's width",
        replacements=(
            (
                '        bound_provider=_STATE["bound"],',
                '        bound_provider=_STATE["bound"],\n'
                "        sig_bits=128,",
            ),
        ),
    ),
    SeededLintFault(
        checker="options-plumbing",
        repro_path="parallel/join.py",
        description="parallel backend pins accel, dropping accel=native",
        replacements=(
            (
                "    base = replace(opts, bound_provider=None, "
                "bipartite_sides=None, trace=None)",
                "    base = replace(\n"
                "        opts, bound_provider=None, bipartite_sides=None, "
                "trace=None,\n"
                '        accel="numpy",\n'
                "    )",
            ),
        ),
    ),
    SeededLintFault(
        checker="options-plumbing",
        repro_path="parallel/join.py",
        description="entry-point flag accepted but never read",
        replacements=(
            (
                "    shm: Optional[bool] = None,\n"
                ") -> List[JoinResult]:",
                "    shm: Optional[bool] = None,\n"
                "    shm_spill_dir: Optional[str] = None,\n"
                ") -> List[JoinResult]:",
            ),
        ),
    ),
    SeededLintFault(
        checker="stats-drift",
        repro_path="core/metrics.py",
        description="merge_from drops the suffix_pruned counter",
        replacements=(
            ("        self.suffix_pruned += other.suffix_pruned\n", ""),
        ),
    ),
    SeededLintFault(
        checker="stats-drift",
        repro_path="obs/metrics.py",
        description="absorb_topk_stats drops the suffix_pruned counter",
        replacements=(
            (
                "        c(\n"
                '            "repro_suffix_pruned_total",\n'
                '            "Candidates rejected by suffix filtering.",\n'
                "        ).inc(stats.suffix_pruned)\n",
                "",
            ),
        ),
    ),
    SeededLintFault(
        checker="registry-coverage",
        repro_path="oracle/differential.py",
        description="parallel backend dropped from the fuzzer registry",
        replacements=(
            ("from ..parallel.join import parallel_topk_join\n", ""),
            ("actual = parallel_topk_join(", "actual = topk_join("),
            ("plain = parallel_topk_join(", "plain = topk_join("),
            ("traced = parallel_topk_join(", "traced = topk_join("),
            ("pickled = parallel_topk_join(", "pickled = topk_join("),
            ("shared = parallel_topk_join(", "shared = topk_join("),
        ),
        expect_path="parallel/join.py",
    ),
    SeededLintFault(
        checker="shm-lifecycle",
        repro_path="parallel/join.py",
        description="owner-side finally no longer destroys the segment",
        replacements=(
            (
                "            if segment is not None:\n"
                "                destroy_segment(segment)",
                "            pass",
            ),
        ),
    ),
    SeededLintFault(
        checker="lock-discipline",
        repro_path="parallel/bound.py",
        description="shared-bound compare hoisted outside the lock",
        replacements=(
            (
                '        with _tracked(self._value.get_lock(), "bound.value"):\n'
                "            if candidate > self._value.value:\n"
                "                self._value.value = candidate\n"
                "                with _tracked(self._generation.get_lock(),"
                ' "bound.generation"):\n'
                "                    self._generation.value += 1",
                "        if candidate > self._value.value:\n"
                '            with _tracked(self._value.get_lock(),'
                ' "bound.value"):\n'
                "                self._value.value = candidate\n"
                "                with _tracked(self._generation.get_lock(),"
                ' "bound.generation"):\n'
                "                    self._generation.value += 1",
            ),
        ),
    ),
    SeededLintFault(
        checker="kernel-parity",
        repro_path="accel/kernel.py",
        description="python kernel stops attributing suffix_pruned",
        replacements=(
            (
                "        stats.positional_pruned += positional_pruned\n"
                "        stats.suffix_pruned += suffix_pruned\n",
                "        stats.positional_pruned += positional_pruned\n",
            ),
        ),
    ),
    SeededLintFault(
        checker="exception-safety",
        repro_path="parallel/shm.py",
        description="attach raises with the header view still exported",
        replacements=(
            (
                "        if header[6] != descriptor.sig_bits:\n"
                "            view.release()\n"
                "            raise ShmAttachError(",
                "        if header[6] != descriptor.sig_bits:\n"
                "            raise ShmAttachError(",
            ),
        ),
    ),
    SeededLintFault(
        checker="annotations",
        repro_path="similarity/functions.py",
        description="untyped public similarity method",
        replacements=(
            (
                "    def from_overlap(self, overlap: int, size_x: int,"
                " size_y: int) -> float:\n        union =",
                "    def from_overlap(self, overlap, size_x, size_y):"
                "\n        union =",
            ),
        ),
    ),
)
