"""Deliberately buggy similarity functions for harness self-tests.

A correctness harness that has never caught a bug proves nothing.  These
classes inject the classic off-by-one into the paper's bound formulas —
evaluating a bound at prefix position ``p + 1`` instead of ``p``, which
makes it *too tight* and silently drops true results — so tests can
demonstrate that each defect is caught twice over:

* at runtime, by :class:`repro.oracle.invariants.CheckHooks` (the hooks
  recompute Lemma 1/4's bounds independently through ``from_overlap`` and
  fail on the first disagreement, localizing the bug to one decision);
* end-to-end, by the differential oracle (the join's answer no longer
  matches :func:`repro.oracle.reference.naive_topk`).

Never use these outside tests.
"""

from __future__ import annotations

from ..similarity.functions import Jaccard

__all__ = ["OffByOneIndexingBound", "OffByOneProbingBound"]


class OffByOneIndexingBound(Jaccard):
    """Jaccard with Lemma 4's indexing bound evaluated one position late.

    ``ub_i(p) = (|x|-p)/(|x|+p)`` instead of ``(|x|-p+1)/(|x|+p-1)``: the
    bound is strictly smaller than the true one, so records stop being
    indexed one event early and pairs whose first common token is that
    last prefix position are never generated.
    """

    def indexing_upper_bound(self, size_x: int, prefix: int) -> float:
        return super().indexing_upper_bound(size_x, prefix + 1)


class OffByOneProbingBound(Jaccard):
    """Jaccard with Lemma 1's probing bound evaluated one position late.

    ``ub_p(p) = 1 - p/|x|`` instead of ``1 - (p-1)/|x|``: events sort and
    terminate on an undervalued bound, so the loop can halt while a true
    top-k pair is still undiscovered.
    """

    def probing_upper_bound(self, size_x: int, prefix: int) -> float:
        return super().probing_upper_bound(size_x, prefix + 1)
