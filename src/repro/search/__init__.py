"""Similarity search (single query vs collection) — see Section VIII."""

from .indexed import SearchHit, SearchIndex

__all__ = ["SearchIndex", "SearchHit"]
