"""Similarity search: queries against an indexed collection.

The paper's related work (Section VIII, [24]-[27]) treats *similarity
search* — find the records similar to one query — as the sibling problem
of the join.  This module provides both forms over one reusable index:

* :meth:`SearchIndex.threshold_search` — all records with
  ``sim(q, y) >= t`` (prefix filtering on the query side, with the
  candidate's own prefix length checked per posting);
* :meth:`SearchIndex.topk_search` — the k most similar records, found by
  walking the query's tokens in canonical (rarest-first) order and
  stopping when the probing upper bound of the *unseen* suffix cannot
  beat the k-th result so far — the single-record analogue of the
  event-driven top-k join.

Unlike the join index, the search index stores **every** token of every
record (queries arrive with arbitrary thresholds, so no prefix can be
fixed at build time).  Query tokens outside the collection's universe
still count toward the query's size — they simply have no postings.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..data.records import RecordCollection
from ..similarity.functions import Jaccard, SimilarityFunction
from ..similarity.overlap import overlap_with_early_abort

__all__ = ["SearchIndex", "SearchHit"]


class SearchHit(NamedTuple):
    """One search answer: a record id and its similarity to the query."""

    rid: int
    similarity: float


class SearchIndex:
    """A full inverted index over one collection, reusable across queries."""

    def __init__(
        self,
        collection: RecordCollection,
        similarity: Optional[SimilarityFunction] = None,
    ) -> None:
        self.collection = collection
        self.similarity = similarity or Jaccard()
        self._postings: Dict[int, List[Tuple[int, int]]] = {}
        for record in collection:
            for position, token in enumerate(record.tokens, start=1):
                self._postings.setdefault(token, []).append(
                    (record.rid, position)
                )
        self._rank_of: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Query preparation
    # ------------------------------------------------------------------

    def prepare_query(self, tokens: Sequence[str]) -> Tuple[Tuple[int, ...], int]:
        """Map string tokens onto the collection's ranks.

        Returns ``(sorted known ranks, total query size)``; tokens the
        collection has never seen have no postings but still count toward
        the query's size (they can only lower every similarity).
        Requires the collection to have been built from string tokens.
        """
        if self.collection.token_of_rank is None:
            raise ValueError(
                "collection was built from integer sets; pass ranks directly"
            )
        if self._rank_of is None:
            self._rank_of = {
                token: rank
                for rank, token in enumerate(self.collection.token_of_rank)
            }
        distinct = set(tokens)
        known = sorted(
            self._rank_of[token] for token in distinct if token in self._rank_of
        )
        return tuple(known), len(distinct)

    # ------------------------------------------------------------------
    # Threshold search
    # ------------------------------------------------------------------

    def threshold_search(
        self,
        query: Sequence[int],
        threshold: float,
        query_size: Optional[int] = None,
    ) -> List[SearchHit]:
        """All records with ``sim(query, record) >= threshold``.

        *query* holds sorted token ranks; *query_size* overrides ``len``
        when the query contained unknown tokens (see
        :meth:`prepare_query`).  The query record itself, if present in
        the collection, is reported like any other record.
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        sim = self.similarity
        size_q = query_size if query_size is not None else len(query)
        prefix_length = sim.probing_prefix_length(size_q, threshold)
        # Unknown tokens carry no postings; only known ranks are probed,
        # but the prefix is measured on the full query.
        candidates: set = set()
        records = self.collection.records
        prefix_by_size: Dict[int, int] = {}
        alpha_by_size: Dict[int, int] = {}
        for query_position, token in enumerate(
            query[:prefix_length], start=1
        ):
            for rid, position in self._postings.get(token, ()):
                if rid in candidates:
                    continue
                size_y = len(records[rid].tokens)
                # The shared token must sit inside the record's own
                # threshold prefix (Lemma 1 needs both prefixes).
                record_prefix = prefix_by_size.get(size_y)
                if record_prefix is None:
                    record_prefix = sim.probing_prefix_length(
                        size_y, threshold
                    )
                    prefix_by_size[size_y] = record_prefix
                if position > record_prefix:
                    continue
                alpha = alpha_by_size.get(size_y)
                if alpha is None:
                    alpha = sim.required_overlap(threshold, size_q, size_y)
                    alpha_by_size[size_y] = alpha
                # Size filter: no record of this size can qualify.
                if alpha > (size_q if size_q < size_y else size_y):
                    continue
                # Positional filter on the first common token.
                best = 1 + min(size_q - query_position, size_y - position)
                if best < alpha:
                    continue
                candidates.add(rid)

        results: List[SearchHit] = []
        for rid in candidates:
            record = self.collection[rid]
            size_y = len(record.tokens)
            value = sim.from_overlap(
                overlap_with_early_abort(
                    query, record.tokens, alpha_by_size[size_y]
                ),
                size_q,
                size_y,
            )
            if value >= threshold:
                results.append(SearchHit(rid, value))
        results.sort(key=lambda hit: (-hit.similarity, hit.rid))
        return results

    # ------------------------------------------------------------------
    # Top-k search
    # ------------------------------------------------------------------

    def topk_search(
        self,
        query: Sequence[int],
        k: int,
        query_size: Optional[int] = None,
    ) -> List[SearchHit]:
        """The k most similar records to *query*, best first.

        Walks the query's tokens rarest-first; after consuming position
        ``p``, any record sharing no earlier query token has similarity at
        most the probing bound of ``(size_q, p+1)``, so the walk stops as
        soon as that bound cannot beat the k-th candidate found so far.
        When fewer than *k* records share any token with the query, the
        answer is padded with (similarity-0) records, matching what an
        exhaustive scorer would return.
        """
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        sim = self.similarity
        size_q = query_size if query_size is not None else len(query)
        heap: List[Tuple[float, int]] = []  # (similarity, rid) min-heap
        seen: set = set()
        records = self.collection.records
        # Required overlap per partner size, invalidated when s_k moves.
        alpha_by_size: Dict[int, int] = {}
        s_k = 0.0
        full = False

        for query_position, token in enumerate(query, start=1):
            if full and sim.probing_upper_bound(
                size_q, query_position
            ) <= s_k:
                break
            for rid, position in self._postings.get(token, ()):
                if rid in seen:
                    continue
                size_y = len(records[rid].tokens)
                if full:
                    alpha = alpha_by_size.get(size_y)
                    if alpha is None:
                        alpha = sim.required_overlap(s_k, size_q, size_y)
                        alpha_by_size[size_y] = alpha
                    # Size filter.
                    if alpha > (size_q if size_q < size_y else size_y):
                        continue
                    # Positional filter on the first common token: records
                    # are first met at their earliest shared token, and
                    # failing here proves sim < s_k forever (s_k only
                    # grows), so later re-tests cannot lose answers.
                    best = 1 + min(
                        size_q - query_position, size_y - position
                    )
                    if best < alpha:
                        continue
                seen.add(rid)
                tokens_y = records[rid].tokens
                required = alpha if full else 0
                value = sim.from_overlap(
                    overlap_with_early_abort(query, tokens_y, required),
                    size_q,
                    size_y,
                )
                if not full:
                    heapq.heappush(heap, (value, rid))
                    if len(heap) >= k:
                        full = True
                        s_k = heap[0][0]
                        alpha_by_size = {}
                elif value > s_k:
                    heapq.heappushpop(heap, (value, rid))
                    s_k = heap[0][0]
                    alpha_by_size = {}

        # If the walk ended with fewer than k hits, every unseen record
        # shares no token with the query (the walk only stops early when
        # the heap is full), so the remainder scores exactly 0.
        if len(heap) < k:
            for record in records:
                if len(heap) >= k:
                    break
                if record.rid not in seen:
                    heapq.heappush(heap, (0.0, record.rid))

        ordered = sorted(heap, key=lambda item: (-item[0], item[1]))
        return [SearchHit(rid, value) for value, rid in ordered]
