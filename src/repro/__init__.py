"""repro — a reproduction of *Top-k Set Similarity Joins* (ICDE 2009).

Xiao, Wang, Lin and Shang's ``topk-join`` returns the *k* most similar
record pairs of a collection — no similarity threshold to guess —
progressively, best pair first.  This package implements the algorithm with
all of the paper's optimisations, the threshold-join substrate it builds on
(All-Pairs, ppjoin, ppjoin+), the ``pptopk`` baseline it is evaluated
against, and the synthetic workloads and benchmark harness that regenerate
every table and figure of the paper's evaluation (see DESIGN.md and
EXPERIMENTS.md).

Quickstart::

    from repro import RecordCollection, topk_join

    texts = ["the lord of the rings", "lord of the rings", "hamlet"]
    collection = RecordCollection.from_texts(texts)
    for pair in topk_join(collection, k=2):
        print(pair.x, pair.y, pair.similarity)
"""

from .core import (
    EmitEvent,
    JoinStats,
    PptopkStats,
    TaggedCollection,
    TopkOptions,
    TopkSession,
    TopkStats,
    default_threshold_schedule,
    naive_topk,
    naive_topk_rs,
    pptopk_join,
    topk_join,
    topk_join_iter,
    topk_join_rs,
)
from .data import (
    Record,
    RecordCollection,
    dblp_like,
    load_collection,
    synthetic_collection,
    trec3_like,
    trec_like,
    uniref3_like,
)
from .joins import (
    all_pairs_join,
    naive_threshold_join,
    ppjoin,
    ppjoin_plus,
    threshold_join,
)
from .parallel import parallel_topk_join
from .result import JoinResult, similarity_multiset, sort_results
from .similarity import (
    Cosine,
    Dice,
    Jaccard,
    Overlap,
    SimilarityFunction,
    similarity_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data
    "Record",
    "RecordCollection",
    "load_collection",
    "synthetic_collection",
    "dblp_like",
    "trec_like",
    "trec3_like",
    "uniref3_like",
    # similarity
    "SimilarityFunction",
    "Jaccard",
    "Cosine",
    "Dice",
    "Overlap",
    "similarity_by_name",
    # results
    "JoinResult",
    "sort_results",
    "similarity_multiset",
    # threshold joins
    "threshold_join",
    "naive_threshold_join",
    "all_pairs_join",
    "ppjoin",
    "ppjoin_plus",
    # top-k joins
    "topk_join",
    "topk_join_iter",
    "parallel_topk_join",
    "topk_join_rs",
    "naive_topk_rs",
    "TaggedCollection",
    "TopkSession",
    "pptopk_join",
    "naive_topk",
    "TopkOptions",
    "default_threshold_schedule",
    # instrumentation
    "JoinStats",
    "TopkStats",
    "PptopkStats",
    "EmitEvent",
]
