"""Command-line interface.

Subcommands::

    python -m repro topk      --input data.txt --k 100 [--similarity jaccard]
                              [--workers N] [--shards M] [--shm|--no-shm]
                              [--check]
                              [--accel on|native|python|numpy|off]
                              [--sig-bits 64|128|256|512]
                              [--trace] [--trace-out trace.json]
    python -m repro trace     [--workload dblp | --input data.txt] [--k 100]
                              [--prom-out m.prom] [--json-out trace.json]
    python -m repro threshold --input data.txt --threshold 0.8 [--algorithm ppjoin+]
    python -m repro generate  --dataset dblp --n 2000 --output data.txt
    python -m repro stats     --input data.txt
    python -m repro fuzz      --seed 0 --iters 200 [--budget 60]
                              [--corpus-dir tests/corpus] [--replay]
                              [--stream | --serve]
    python -m repro stream    --input events.txt|- --k 10 [--window 50]
                              [--policy count|time]
                              [--mode incremental|recompute] [--check]
                              [--quiet] [--prom-out m.prom] [--trace]
    python -m repro serve     --k 10 [--host 127.0.0.1] [--port 0]
                              [--window 50] [--policy count|time]
                              [--queue-limit 256] [--degradation reject|shed]
                              [--read-timeout 30] [--idle-timeout 300]
                              [--ingest-delay 0] [--check]
    python -m repro bench     --json [--k 100]  (hot-path baseline JSON)
    python -m repro lint      [paths...] [--select ids] [--ignore ids]
                              [--json] [--sarif out.json] [--list]

Input files hold one record per line, tokens separated by spaces (use
``--qgram Q`` to treat each line as raw text tokenized into q-grams).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    TextIO,
    Tuple,
)

from .core.metrics import TopkStats
from .core.topk_join import TopkOptions, topk_join
from .data.io import load_token_file, save_token_file
from .data.records import RecordCollection
from .data.stats import dataset_statistics
from .data.synthetic import dblp_like, trec3_like, trec_like, uniref3_like
from .data.tokenize import tokenize_qgrams
from .joins import threshold_join
from .parallel import parallel_topk_join
from .result import JoinResult
from .similarity.functions import SimilarityFunction, similarity_by_name

if TYPE_CHECKING:
    from .obs import Tracer

__all__ = ["main"]

_GENERATORS = {
    "dblp": dblp_like,
    "trec": trec_like,
    "trec-3gram": trec3_like,
    "uniref-3gram": uniref3_like,
}


def _load(path: str, qgram: Optional[int]) -> RecordCollection:
    token_lists = load_token_file(path)
    if qgram:
        token_lists = [
            tokenize_qgrams(" ".join(tokens), q=qgram)
            for tokens in token_lists
        ]
    return RecordCollection.from_token_lists(token_lists)


def _print_results(
    collection: RecordCollection, results: List[JoinResult], limit: int
) -> None:
    for result in results[:limit]:
        x = collection[result.x]
        y = collection[result.y]
        print(
            "%.6f\t%d\t%d\t%s\t%s"
            % (
                result.similarity,
                x.source_id,
                y.source_id,
                collection.strings(x),
                collection.strings(y),
            )
        )


def _run_topk(
    collection: RecordCollection,
    args: argparse.Namespace,
    sim: SimilarityFunction,
    options: TopkOptions,
    stats: TopkStats,
) -> List[JoinResult]:
    """Dispatch to the sequential or sharded backend per CLI flags."""
    if args.workers > 1 or args.shards is not None:
        return parallel_topk_join(
            collection, args.k, similarity=sim, options=options,
            workers=args.workers, shards=args.shards, stats=stats,
            shm=args.shm,
        )
    return topk_join(
        collection, args.k, similarity=sim, options=options, stats=stats
    )


def _open_trace_outputs(
    specs: List[Tuple[Optional[str], Callable[["Tracer"], str]]],
) -> Optional[List[Tuple[TextIO, Callable[["Tracer"], str]]]]:
    """Open every requested trace output up front, so a bad path fails
    before the join burns any time.  Returns ``None`` (with any partial
    opens closed and a message on stderr) when a path is unwritable.
    """
    handles: List[Tuple[TextIO, Callable[["Tracer"], str]]] = []
    for path, renderer in specs:
        if not path:
            continue
        try:
            handle = open(path, "w", encoding="utf-8")
        except OSError as error:
            for opened, __ in handles:
                opened.close()
            print(
                "repro: cannot write trace output %s: %s" % (path, error),
                file=sys.stderr,
            )
            return None
        handles.append((handle, renderer))
    return handles


def _summary_line(
    results: List[JoinResult], elapsed: float, stats: TopkStats
) -> str:
    return (
        "# %d results in %.3fs (%d events, %d candidates, %d verifications)"
        % (len(results), elapsed, stats.events, stats.candidates,
           stats.verifications)
    )


def _cmd_topk(args: argparse.Namespace) -> int:
    from .obs import (
        Tracer,
        maybe_profile,
        render_phase_tree,
        to_json,
        to_prometheus_text,
    )

    collection = _load(args.input, args.qgram)
    sim = similarity_by_name(args.similarity)
    stats = TopkStats()
    tracer: Optional[Tracer] = None
    outputs: List[Tuple[TextIO, Callable[[Tracer], str]]] = []
    if args.trace or args.trace_out:
        tracer = Tracer()
        if args.trace_out:
            renderer = (
                to_json if args.trace_out.endswith(".json")
                else to_prometheus_text
            )
            opened = _open_trace_outputs([(args.trace_out, renderer)])
            if opened is None:
                return 2
            outputs = opened
    options = TopkOptions(
        maxdepth=args.maxdepth, check_invariants=args.check,
        accel=args.accel, sig_bits=args.sig_bits, trace=tracer,
    )
    start = time.perf_counter()
    with maybe_profile(tracer):
        results = _run_topk(collection, args, sim, options, stats)
    elapsed = time.perf_counter() - start
    _print_results(collection, results, args.k)
    if tracer is not None:
        sys.stderr.write(render_phase_tree(tracer))
        for handle, render in outputs:
            with handle:
                handle.write(render(tracer))
    print(_summary_line(results, elapsed, stats), file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        Tracer,
        maybe_profile,
        render_phase_tree,
        to_json,
        to_prometheus_text,
    )

    if args.input:
        collection = _load(args.input, args.qgram)
        sim = similarity_by_name(args.similarity)
        maxdepth = args.maxdepth
    else:
        from .bench.workloads import workload

        bench = workload(args.workload)
        collection = bench.factory()
        sim = bench.similarity
        maxdepth = bench.maxdepth
    outputs = _open_trace_outputs(
        [(args.prom_out, to_prometheus_text), (args.json_out, to_json)]
    )
    if outputs is None:
        return 2
    tracer = Tracer()
    stats = TopkStats()
    options = TopkOptions(
        maxdepth=maxdepth, accel=args.accel, sig_bits=args.sig_bits,
        trace=tracer,
    )
    start = time.perf_counter()
    with maybe_profile(tracer):
        results = _run_topk(collection, args, sim, options, stats)
    elapsed = time.perf_counter() - start
    sys.stdout.write(render_phase_tree(tracer))
    for handle, render in outputs:
        with handle:
            handle.write(render(tracer))
    print(_summary_line(results, elapsed, stats), file=sys.stderr)
    return 0


def _cmd_threshold(args: argparse.Namespace) -> int:
    collection = _load(args.input, args.qgram)
    sim = similarity_by_name(args.similarity)
    start = time.perf_counter()
    results = threshold_join(
        collection, args.threshold, similarity=sim, algorithm=args.algorithm
    )
    elapsed = time.perf_counter() - start
    _print_results(collection, results, len(results))
    print(
        "# %d results in %.3fs (%s, t=%.3f)"
        % (len(results), elapsed, args.algorithm, args.threshold),
        file=sys.stderr,
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.dataset]
    collection = generator(args.n, seed=args.seed)
    token_lists = [
        [str(token) for token in record.tokens] for record in collection
    ]
    save_token_file(args.output, token_lists)
    print(
        "# wrote %d records (avg size %.1f, |U|=%d) to %s"
        % (
            len(collection),
            collection.average_size,
            collection.universe_size,
            args.output,
        ),
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    collection = _load(args.input, args.qgram)
    stats = dataset_statistics(args.input, collection)
    print("records       : %d" % stats.record_count)
    print("average size  : %.2f" % stats.average_size)
    print("universe size : %d" % stats.universe_size)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .oracle import (
        fuzz_run,
        fuzz_serve_run,
        fuzz_stream_run,
        replay_corpus,
    )
    from .oracle.differential import (
        available_backends,
        available_stream_backends,
    )

    if args.serve and args.stream:
        print("choose one of --stream / --serve", file=sys.stderr)
        return 2
    if args.serve and args.backends:
        print(
            "serve fuzzing drives the daemon itself; --backends does not "
            "apply",
            file=sys.stderr,
        )
        return 2
    valid = (
        available_stream_backends() if args.stream else available_backends()
    )
    backends = None
    if args.backends:
        backends = [name.strip() for name in args.backends.split(",")]
        unknown = set(backends) - set(valid)
        if unknown:
            print(
                "unknown backends: %s (choose from %s)"
                % (", ".join(sorted(unknown)), ", ".join(valid)),
                file=sys.stderr,
            )
            return 2

    if args.replay:
        failing = replay_corpus(
            args.corpus_dir,
            backends=None if args.stream else backends,
            stream_backends=backends if args.stream else None,
        )
        if failing:
            for path, failures in failing:
                print("FAIL %s" % path, file=sys.stderr)
                for message in failures:
                    print("  %s" % message, file=sys.stderr)
            return 1
        print("# corpus %s: all cases pass" % args.corpus_dir, file=sys.stderr)
        return 0

    if args.serve:
        serve_report = fuzz_serve_run(
            seed=args.seed,
            iterations=args.iters,
            budget=args.budget,
            corpus_dir=args.corpus_dir,
        )
        print(
            "# serve fuzz seed=%d: %d adversarial session(s) in %.1fs, "
            "%d failure(s)"
            % (args.seed, serve_report.iterations, serve_report.elapsed,
               len(serve_report.failures)),
            file=sys.stderr,
        )
        for iteration, generator, serve_case, failures, path in (
            serve_report.failures
        ):
            print(
                "FAIL iteration=%d generator=%s chunks=%d abort=%s%s"
                % (iteration, generator, len(serve_case.chunks),
                   serve_case.abort, " -> %s" % path if path else ""),
                file=sys.stderr,
            )
            for message in failures:
                print("  %s" % message, file=sys.stderr)
        return 1 if serve_report.failures else 0

    if args.stream:
        stream_report = fuzz_stream_run(
            seed=args.seed,
            iterations=args.iters,
            budget=args.budget,
            backends=backends,
            corpus_dir=args.corpus_dir,
        )
        print(
            "# stream fuzz seed=%d: %d iterations in %.1fs, %d failure(s)"
            % (args.seed, stream_report.iterations, stream_report.elapsed,
               len(stream_report.failures)),
            file=sys.stderr,
        )
        for iteration, generator, case, failures, path in (
            stream_report.failures
        ):
            print(
                "FAIL iteration=%d generator=%s k=%d window=%d policy=%s "
                "similarity=%s%s"
                % (iteration, generator, case.k, case.window, case.policy,
                   case.similarity, " -> %s" % path if path else ""),
                file=sys.stderr,
            )
            print("  events=%r" % (case.events_payload(),), file=sys.stderr)
            for message in failures:
                print("  %s" % message, file=sys.stderr)
        return 1 if stream_report.failures else 0

    report = fuzz_run(
        seed=args.seed,
        iterations=args.iters,
        budget=args.budget,
        max_records=args.max_records,
        backends=backends,
        corpus_dir=args.corpus_dir,
    )
    print(
        "# fuzz seed=%d: %d iterations in %.1fs, %d failure(s)"
        % (args.seed, report.iterations, report.elapsed,
           len(report.failures)),
        file=sys.stderr,
    )
    for iteration, generator, case, failures, path in report.failures:
        print(
            "FAIL iteration=%d generator=%s k=%d similarity=%s%s"
            % (iteration, generator, case.k, case.similarity,
               " -> %s" % path if path else ""),
            file=sys.stderr,
        )
        print("  records=%r" % (case.records,), file=sys.stderr)
        for message in failures:
            print("  %s" % message, file=sys.stderr)
    return 1 if report.failures else 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .obs import Tracer, render_phase_tree
    from .stream.engine import StreamingTopkEngine
    from .stream.events import read_events

    sim = similarity_by_name(args.similarity)
    tracer: Optional["Tracer"] = None
    if args.trace:
        tracer = Tracer()
    options = TopkOptions(
        check_invariants=args.check,
        accel=args.accel,
        sig_bits=args.sig_bits,
        trace=tracer,
        window_size=args.window,
        window_policy=args.policy,
    )
    try:
        engine = StreamingTopkEngine(
            args.k, similarity=sim, options=options, mode=args.mode
        )
    except ValueError as error:
        print("repro stream: %s" % error, file=sys.stderr)
        return 2

    prom_handle: Optional[TextIO] = None
    if args.prom_out:
        try:
            prom_handle = open(args.prom_out, "w", encoding="utf-8")
        except OSError as error:
            print(
                "repro stream: cannot write %s: %s"
                % (args.prom_out, error),
                file=sys.stderr,
            )
            return 2

    if args.input == "-":
        source: TextIO = sys.stdin
        close_source = False
    else:
        try:
            source = open(args.input, "r", encoding="utf-8")
        except OSError as error:
            if prom_handle is not None:
                prom_handle.close()
            print("repro stream: %s" % error, file=sys.stderr)
            return 2
        close_source = True

    start = time.perf_counter()
    events = 0
    try:
        with engine:
            for event in read_events(source):
                deltas = engine.apply(event)
                events += 1
                if not args.quiet:
                    for delta in deltas:
                        print(
                            "%s\t%d\t%d\t%.6f"
                            % (delta.action, delta.x, delta.y,
                               delta.similarity)
                        )
    except ValueError as error:
        if prom_handle is not None:
            prom_handle.close()
        print("repro stream: %s" % error, file=sys.stderr)
        return 2
    finally:
        if close_source:
            source.close()
    elapsed = time.perf_counter() - start

    print("# final top-%d" % args.k)
    for result in engine.results():
        print("%.6f\t%d\t%d" % (result.similarity, result.x, result.y))
    if prom_handle is not None:
        with prom_handle:
            prom_handle.write(engine.metrics_text())
    if tracer is not None:
        sys.stderr.write(render_phase_tree(tracer))
    stats = engine.stats
    print(
        "# %d events in %.3fs (%d inserts, %d expirations, %d refills, "
        "%d live, s_k=%.6f)"
        % (events, elapsed, stats.inserts, stats.expirations,
           stats.refills, engine.window_live, engine.s_k),
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ServeOptions, TopkServer
    from .stream.engine import StreamingTopkEngine

    sim = similarity_by_name(args.similarity)
    options = TopkOptions(
        check_invariants=args.check,
        accel=args.accel,
        sig_bits=args.sig_bits,
        window_size=args.window,
        window_policy=args.policy,
    )
    try:
        engine = StreamingTopkEngine(
            args.k, similarity=sim, options=options, mode=args.mode
        )
        server = TopkServer(
            engine,
            ServeOptions(
                host=args.host,
                port=args.port,
                queue_limit=args.queue_limit,
                degradation=args.degradation,
                read_timeout=args.read_timeout,
                idle_timeout=args.idle_timeout,
                max_frame_bytes=args.max_frame_bytes,
                ingest_delay=args.ingest_delay,
            ),
        )
    except ValueError as error:
        print("repro serve: %s" % error, file=sys.stderr)
        return 2

    async def _amain() -> int:
        await server.start()
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            server.request_shutdown()

        # Handlers go in BEFORE the address is announced: a supervisor
        # that SIGTERMs the moment it reads the port must hit a graceful
        # drain, not the default killing disposition.
        installed: List[int] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _on_signal)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                signal.signal(
                    signum,
                    lambda *_: loop.call_soon_threadsafe(_on_signal),
                )
        host, port = server.address
        print("# serving on %s:%d" % (host, port), file=sys.stderr)
        sys.stderr.flush()
        try:
            await server.wait_closed()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
        stats = server.stats
        print(
            "# served %d request(s) on %d connection(s) "
            "(%d accepted, %d shed, %d rejected, %d error(s))"
            % (stats.requests, stats.connections, stats.accepted,
               stats.shed, stats.rejected, stats.errors),
            file=sys.stderr,
        )
        return 0

    try:
        return asyncio.run(_amain())
    except KeyboardInterrupt:
        return 0


#: Experiment id -> (description, runner).  Runners print to stdout.
def _experiment_registry() -> Dict[str, Tuple[str, Callable[[], None]]]:
    from .bench import (
        figure3a_rows,
        figure3bc_rows,
        figure4_rows,
        figure5a_rows,
        format_table,
        table1_rows,
        table2_rows,
    )

    def table1() -> None:
        print(format_table(["dataset", "N", "avg size", "|U|"], table1_rows()))

    def table2() -> None:
        print(format_table(["threshold", "results"], table2_rows()))

    def figure3a() -> None:
        print(
            format_table(
                ["k", "optimized", "record-all"], figure3a_rows()
            )
        )

    def figure3bc() -> None:
        print(
            format_table(
                ["k", "entries (opt)", "entries (w/o)",
                 "s (opt)", "s (w/o)"],
                figure3bc_rows(),
            )
        )

    def figure4(name: str) -> Callable[[], None]:
        def run() -> None:
            print(
                format_table(
                    ["k", "verified (topk)", "verified (pptopk)",
                     "s (topk)", "s (pptopk)"],
                    figure4_rows(name),
                )
            )
        return run

    def figure5a() -> None:
        print(format_table(["k", "verifications/record"], figure5a_rows()))

    return {
        "table1": ("Table I — dataset statistics", table1),
        "table2": ("Table II — pptopk round sizes", table2),
        "figure3a": ("Fig. 3a — verification opt", figure3a),
        "figure3bc": ("Fig. 3b/c — indexing opt", figure3bc),
        "figure4-dblp": ("Fig. 4a/d — DBLP panel", figure4("dblp")),
        "figure4-trec": ("Fig. 4b/e — TREC panel", figure4("trec")),
        "figure4-trec3": (
            "Fig. 4c/f — TREC-3GRAM panel", figure4("trec-3gram")
        ),
        "figure5a": ("Fig. 5a — verifications per record", figure5a),
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.json:
        import json

        from .bench.baseline import measure_baseline, speedup_of

        report = measure_baseline(k_values=args.k or None)
        json.dump(report, sys.stdout, indent=2)
        print()
        ratio = speedup_of(report)
        if ratio is not None:
            print(
                "# accel speedup at default k: %.2fx" % ratio,
                file=sys.stderr,
            )
        return 0
    registry = _experiment_registry()
    if args.list:
        for name, (description, __) in sorted(registry.items()):
            print("%-15s %s" % (name, description))
        return 0
    if args.experiment is None:
        print("choose --experiment or --list", file=sys.stderr)
        return 2
    try:
        description, runner = registry[args.experiment]
    except KeyError:
        print(
            "unknown experiment %r (see --list)" % args.experiment,
            file=sys.stderr,
        )
        return 2
    start = time.perf_counter()
    print("# %s" % description)
    runner()
    print(
        "# completed in %.1fs" % (time.perf_counter() - start),
        file=sys.stderr,
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import (
        SourceReadError,
        UnknownCheckerError,
        all_checkers,
        lint_paths,
        selected_checker_ids,
    )
    from .analysis.engine import report_to_json
    from .analysis.sarif import to_sarif

    if args.list:
        for checker in all_checkers():
            print("%-18s %s" % (checker.id, checker.description))
        return 0

    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore)
    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    try:
        active = selected_checker_ids(select=select, ignore=ignore)
        findings, files = lint_paths(paths, select=select, ignore=ignore)
    except (UnknownCheckerError, FileNotFoundError, SourceReadError) as error:
        print("repro lint: %s" % error, file=sys.stderr)
        return 2
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(to_sarif(findings, active), handle, indent=2)
            handle.write("\n")
    if args.json:
        json.dump(report_to_json(findings, files, active), sys.stdout, indent=2)
        print()
    else:
        for finding in findings:
            print(finding.render())
        print(
            "# repro lint: %d finding(s) in %d file(s), %d checker(s)"
            % (len(findings), files, len(active)),
            file=sys.stderr,
        )
    return 1 if findings else 0


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k set similarity joins (ICDE 2009 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_io(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--input", required=True, help="token file path")
        sub.add_argument(
            "--qgram", type=int, default=None, metavar="Q",
            help="re-tokenize each line into character q-grams",
        )
        sub.add_argument(
            "--similarity", default="jaccard",
            choices=["jaccard", "cosine", "dice", "overlap"],
        )

    topk = commands.add_parser("topk", help="top-k similarity join")
    add_io(topk)
    topk.add_argument("--k", type=int, required=True)
    topk.add_argument("--maxdepth", type=int, default=2,
                      help="suffix-filter depth (2 words, 4 q-grams)")
    topk.add_argument("--workers", type=int, default=1,
                      help="worker processes for the sharded parallel "
                           "backend (1 = sequential)")
    topk.add_argument("--shards", type=int, default=None,
                      help="shard count for the parallel backend "
                           "(default: 2x workers)")
    topk.add_argument("--shm", action=argparse.BooleanOptionalAction,
                      default=None,
                      help="data plane for the parallel backend: --shm "
                           "forces the zero-copy shared-memory segments, "
                           "--no-shm forces per-worker pickling (default: "
                           "shared memory when a pool runs and the host "
                           "supports it)")
    topk.add_argument("--check", action="store_true",
                      help="assert the paper's runtime invariants while "
                           "joining (slow; also via REPRO_CHECK=1)")
    topk.add_argument("--accel", default="on",
                      choices=["on", "native", "python", "numpy", "off"],
                      help="hot-path acceleration: 'on' picks the best "
                           "available kernel, 'native' asks for the "
                           "numba-compiled tier (falls back when numba "
                           "is absent), 'off' runs the historical loop "
                           "(ablation baseline)")
    topk.add_argument("--sig-bits", type=int, default=128, dest="sig_bits",
                      choices=[64, 128, 256, 512],
                      help="bitmap signature width in bits: wider prunes "
                           "more candidates but costs more memory "
                           "bandwidth per probe")
    topk.add_argument("--trace", action="store_true",
                      help="trace phase timings and print a phase-time "
                           "tree to stderr after the results")
    topk.add_argument("--trace-out", default=None, metavar="PATH",
                      help="also write the trace to PATH (.json -> full "
                           "JSON payload, anything else -> Prometheus "
                           "text exposition); implies --trace")
    topk.set_defaults(handler=_cmd_topk)

    trace = commands.add_parser(
        "trace",
        help="run a traced top-k join and report where the time went",
    )
    source = trace.add_mutually_exclusive_group()
    source.add_argument("--workload", default="dblp",
                        choices=sorted(_GENERATORS),
                        help="named benchmark workload (dataset + "
                             "similarity + maxdepth, see bench.workloads)")
    source.add_argument("--input", default=None,
                        help="token file path instead of a named workload")
    trace.add_argument("--qgram", type=int, default=None, metavar="Q",
                       help="with --input: re-tokenize each line into "
                            "character q-grams")
    trace.add_argument("--similarity", default="jaccard",
                       choices=["jaccard", "cosine", "dice", "overlap"],
                       help="with --input: similarity function "
                            "(workloads fix their own)")
    trace.add_argument("--maxdepth", type=int, default=2,
                       help="with --input: suffix-filter depth")
    trace.add_argument("--k", type=int, default=100)
    trace.add_argument("--workers", type=int, default=1,
                       help="worker processes for the sharded parallel "
                            "backend (1 = sequential)")
    trace.add_argument("--shards", type=int, default=None,
                       help="shard count for the parallel backend")
    trace.add_argument("--shm", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="data plane for the parallel backend "
                            "(see 'topk --shm')")
    trace.add_argument("--accel", default="on",
                       choices=["on", "native", "python", "numpy", "off"])
    trace.add_argument("--sig-bits", type=int, default=128, dest="sig_bits",
                       choices=[64, 128, 256, 512],
                       help="bitmap signature width (see 'topk --sig-bits')")
    trace.add_argument("--prom-out", default=None, metavar="PATH",
                       help="write Prometheus text exposition to PATH")
    trace.add_argument("--json-out", default=None, metavar="PATH",
                       help="write the JSON trace payload to PATH")
    trace.set_defaults(handler=_cmd_trace)

    threshold = commands.add_parser("threshold", help="threshold join")
    add_io(threshold)
    threshold.add_argument("--threshold", type=float, required=True)
    threshold.add_argument(
        "--algorithm", default="ppjoin+",
        choices=["naive", "all-pairs", "ppjoin", "ppjoin+"],
    )
    threshold.set_defaults(handler=_cmd_threshold)

    generate = commands.add_parser(
        "generate", help="emit a synthetic benchmark dataset"
    )
    generate.add_argument(
        "--dataset", required=True, choices=sorted(_GENERATORS)
    )
    generate.add_argument("--n", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", required=True)
    generate.set_defaults(handler=_cmd_generate)

    stats = commands.add_parser("stats", help="dataset statistics (Table I)")
    add_io(stats)
    stats.set_defaults(handler=_cmd_stats)

    fuzz = commands.add_parser(
        "fuzz",
        help="differentially fuzz every join backend against the oracle",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--iters", type=int, default=200,
                      help="number of generated cases")
    fuzz.add_argument("--budget", type=float, default=None,
                      help="wall-clock budget in seconds")
    fuzz.add_argument("--max-records", type=int, default=28,
                      help="records per generated collection")
    fuzz.add_argument("--backends", default=None,
                      help="comma-separated backend subset (default: all)")
    fuzz.add_argument("--corpus-dir", default="tests/corpus",
                      help="where shrunk failures are saved / replayed from")
    fuzz.add_argument("--replay", action="store_true",
                      help="re-run the saved corpus instead of fuzzing")
    fuzz.add_argument("--stream", action="store_true",
                      help="fuzz the sliding-window streaming engine with "
                           "random insert/expire/advance traces instead of "
                           "the batch backends")
    fuzz.add_argument("--serve", action="store_true",
                      help="throw adversarial byte sessions (malformed "
                           "frames, junk bytes, truncations, oversized "
                           "payloads, mid-request disconnects) at a live "
                           "in-process daemon and assert it never crashes")
    fuzz.set_defaults(handler=_cmd_fuzz)

    stream = commands.add_parser(
        "stream",
        help="replay an event trace through the sliding-window top-k "
             "engine, emitting result deltas",
    )
    stream.add_argument("--input", required=True,
                        help="event trace path, or '-' for stdin (one "
                             "event per line: '+ 1 2 3' inserts, '- 2' "
                             "expires, '> 1.5' advances; bare token lines "
                             "insert, so any dataset file replays as an "
                             "insert-only stream)")
    stream.add_argument("--k", type=int, required=True)
    stream.add_argument("--similarity", default="jaccard",
                        choices=["jaccard", "cosine", "dice", "overlap"])
    stream.add_argument("--window", type=int, default=0,
                        help="sliding-window size (0 = unbounded)")
    stream.add_argument("--policy", default="count",
                        choices=["count", "time"],
                        help="window policy: 'count' keeps the last "
                             "--window records, 'time' expires by the "
                             "stream clock moved with '>' events")
    stream.add_argument("--mode", default="incremental",
                        choices=["incremental", "recompute"],
                        help="'incremental' maintains the top-k via index "
                             "probes and bound relaxation; 'recompute' "
                             "re-runs the batch join after every mutation "
                             "(the reference twin)")
    stream.add_argument("--accel", default="on",
                        choices=["on", "native", "python", "numpy", "off"])
    stream.add_argument("--sig-bits", type=int, default=128, dest="sig_bits",
                        choices=[64, 128, 256, 512],
                        help="bitmap signature width (see 'topk --sig-bits')")
    stream.add_argument("--check", action="store_true",
                        help="assert the streaming runtime invariants "
                             "after every event (slow; also via "
                             "REPRO_CHECK=1)")
    stream.add_argument("--quiet", action="store_true",
                        help="suppress per-event delta lines; print only "
                             "the final top-k")
    stream.add_argument("--prom-out", default=None, metavar="PATH",
                        help="write Prometheus text exposition of the "
                             "stream metrics to PATH at end of stream")
    stream.add_argument("--trace", action="store_true",
                        help="trace ingest/expire/refill phase timings "
                             "and print the phase tree to stderr")
    stream.set_defaults(handler=_cmd_stream)

    serve = commands.add_parser(
        "serve",
        help="run the async streaming top-k daemon (newline-delimited "
             "JSON protocol plus GET /metrics on the same port)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0 = ephemeral; the chosen port is "
                            "printed to stderr as '# serving on host:port')")
    serve.add_argument("--k", type=int, required=True)
    serve.add_argument("--similarity", default="jaccard",
                       choices=["jaccard", "cosine", "dice", "overlap"])
    serve.add_argument("--window", type=int, default=0,
                       help="sliding-window size (0 = unbounded)")
    serve.add_argument("--policy", default="count",
                       choices=["count", "time"],
                       help="window policy (see 'stream --policy')")
    serve.add_argument("--mode", default="incremental",
                       choices=["incremental", "recompute"],
                       help="engine mode (see 'stream --mode')")
    serve.add_argument("--accel", default="on",
                       choices=["on", "native", "python", "numpy", "off"])
    serve.add_argument("--sig-bits", type=int, default=128, dest="sig_bits",
                       choices=[64, 128, 256, 512],
                       help="bitmap signature width (see 'topk --sig-bits')")
    serve.add_argument("--check", action="store_true",
                       help="assert the streaming runtime invariants after "
                            "every applied event (slow)")
    serve.add_argument("--queue-limit", type=int, default=256,
                       dest="queue_limit",
                       help="bounded ingestion queue depth; events beyond "
                            "it hit the degradation policy")
    serve.add_argument("--degradation", default="reject",
                       choices=["reject", "shed"],
                       help="overload policy: 'reject' refuses overflow "
                            "events with a structured error, 'shed' drops "
                            "them with an acknowledged tail-drop")
    serve.add_argument("--read-timeout", type=float, default=30.0,
                       dest="read_timeout",
                       help="seconds a client may stall mid-frame before "
                            "eviction (0 disables)")
    serve.add_argument("--idle-timeout", type=float, default=300.0,
                       dest="idle_timeout",
                       help="seconds an unsubscribed client may idle "
                            "between frames before eviction (0 disables; "
                            "subscribers are exempt)")
    serve.add_argument("--max-frame-bytes", type=int, default=1 << 20,
                       dest="max_frame_bytes",
                       help="per-frame byte cap; larger frames are "
                            "refused with 'frame-too-large'")
    serve.add_argument("--ingest-delay", type=float, default=0.0,
                       dest="ingest_delay",
                       help="artificial per-event writer delay in seconds "
                            "(a chaos/testing knob for deterministic "
                            "backpressure; keep 0 in production)")
    serve.set_defaults(handler=_cmd_serve)

    bench = commands.add_parser(
        "bench", help="run one of the paper's experiments"
    )
    bench.add_argument("--experiment", default=None,
                       help="experiment id (see --list)")
    bench.add_argument("--list", action="store_true",
                       help="list available experiments")
    bench.add_argument("--json", action="store_true",
                       help="measure the hot-path baseline workload and "
                            "print BENCH_3-format JSON (the same structure "
                            "the CI benchmark gate consumes)")
    bench.add_argument("--k", type=int, action="append", default=None,
                       help="with --json: restrict the k sweep (repeatable)")
    bench.set_defaults(handler=_cmd_bench)

    lint = commands.add_parser(
        "lint",
        help="run the domain-aware static-analysis checkers",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint "
                           "(default: ./src when it exists, else .)")
    lint.add_argument("--select", default=None, metavar="IDS",
                      help="comma-separated checker ids to run "
                           "(default: all; see --list)")
    lint.add_argument("--ignore", default=None, metavar="IDS",
                      help="comma-separated checker ids to skip")
    lint.add_argument("--json", action="store_true",
                      help="emit the findings as a JSON document")
    lint.add_argument("--sarif", default=None, metavar="PATH",
                      help="additionally write the findings as a SARIF "
                           "2.1.0 document to PATH (for GitHub code "
                           "scanning upload)")
    lint.add_argument("--list", action="store_true",
                      help="list the registered checkers and exit")
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
