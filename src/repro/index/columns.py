"""Flat column layout for whole record collections (detach/attach).

:class:`~repro.index.inverted.PostingColumns` gave the bounded index its
flat, machine-typed shape; :class:`RecordColumns` does the same one level
up, for an entire :class:`~repro.data.records.RecordCollection`:

* ``offsets`` — ``n + 1`` int64 token-start offsets: record *rid*'s
  tokens are ``tokens[offsets[rid]:offsets[rid + 1]]``;
* ``source_ids`` — ``n`` int64 original input positions;
* ``signature_words`` — ``(sig_bits // 64) * n`` int64 words holding each
  record's ``sig_bits``-wide bit signature, least-significant word first
  (all zeros when the signatures were not built);
* ``tokens`` — every record's sorted global token ranks, concatenated.

This layout is the wire format of the shared-memory data plane
(:mod:`repro.parallel.shm`): the parent process *detaches* a collection
into these four buffers once, writes them into one flat int64 region,
and every worker *attaches* read-only ``memoryview`` slices over the
same physical pages instead of unpickling its own copy of the records.
The signature width travels in the segment header, so attached workers
decode exactly the words the parent encoded — any width in
:data:`~repro.data.records.SUPPORTED_SIGNATURE_BITS`.

All four columns are plain int64 sequences, so a ``RecordColumns`` can
be backed either by ``array('q')`` buffers (the detached, writable form)
or by zero-copy ``memoryview`` slices of a shared segment (the attached,
read-only form) — the round-trip :meth:`from_collection` →
:meth:`write_into` → :meth:`read_from` → :meth:`to_collection` is exact.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Union

from ..data.records import SIGNATURE_BITS, RecordCollection, signature_width

__all__ = ["RecordColumns"]

#: One int64 column: writable ``array('q')`` or an attached memoryview.
IntColumn = Union["array[int]", memoryview]

_WORD_MASK = 0xFFFFFFFFFFFFFFFF
_SIGN_BIT = 1 << 63


def _as_signed(word: int) -> int:
    """Reinterpret an unsigned 64-bit word as the int64 with the same bits."""
    return word - (1 << 64) if word >= _SIGN_BIT else word


class RecordColumns:
    """A record collection detached into four flat int64 columns."""

    __slots__ = ("offsets", "source_ids", "signature_words", "tokens", "sig_bits")

    def __init__(
        self,
        offsets: IntColumn,
        source_ids: IntColumn,
        signature_words: IntColumn,
        tokens: IntColumn,
        sig_bits: int = SIGNATURE_BITS,
    ) -> None:
        self.offsets = offsets
        self.source_ids = source_ids
        self.signature_words = signature_words
        self.tokens = tokens
        self.sig_bits = signature_width(sig_bits)

    @property
    def records(self) -> int:
        return len(self.source_ids)

    @property
    def total_tokens(self) -> int:
        return len(self.tokens)

    @property
    def words_per_signature(self) -> int:
        """int64 words per record signature (``sig_bits // 64``)."""
        return self.sig_bits // 64

    def word_count(self) -> int:
        """Total int64 words of the flattened layout."""
        return (
            len(self.offsets)
            + len(self.source_ids)
            + len(self.signature_words)
            + len(self.tokens)
        )

    @classmethod
    def from_collection(
        cls,
        collection: RecordCollection,
        with_signatures: bool = True,
        sig_bits: int = SIGNATURE_BITS,
    ) -> "RecordColumns":
        """Detach *collection* into writable ``array('q')`` columns.

        With *with_signatures* the collection's *sig_bits*-wide
        signatures are built (if not already cached) and encoded
        little-word-first, so attached workers decode ``sig_bits // 64``
        words per record instead of re-hashing every token.
        """
        sig_bits = signature_width(sig_bits)
        words = sig_bits // 64
        offsets = array("q", [0])
        tokens = array("q")
        source_ids = array("q")
        for record in collection.records:
            tokens.extend(record.tokens)
            offsets.append(len(tokens))
            source_ids.append(record.source_id)
        if with_signatures:
            signature_words = array("q")
            for signature in collection.signatures_at(sig_bits):
                for __ in range(words):
                    signature_words.append(_as_signed(signature & _WORD_MASK))
                    signature >>= 64
        else:
            signature_words = array("q", bytes(8 * words * len(collection)))
        return cls(offsets, source_ids, signature_words, tokens, sig_bits)

    @classmethod
    def read_from(
        cls,
        view: memoryview,
        records: int,
        total_tokens: int,
        sig_bits: int = SIGNATURE_BITS,
    ) -> "RecordColumns":
        """Attach zero-copy column views over an int64-cast *view*.

        *view* must hold exactly the :meth:`write_into` layout for
        *records* records, *total_tokens* tokens and *sig_bits*-wide
        signatures; the returned columns are slices of it, so they stay
        valid for as long as the backing buffer does and never copy
        token data.
        """
        words = signature_width(sig_bits) // 64
        base = 0
        offsets = view[base : base + records + 1]
        base += records + 1
        source_ids = view[base : base + records]
        base += records
        signature_words = view[base : base + words * records]
        base += words * records
        tokens = view[base : base + total_tokens]
        return cls(offsets, source_ids, signature_words, tokens, sig_bits)

    def write_into(self, view: memoryview) -> None:
        """Write all four columns into an int64-cast *view*, in layout order.

        *view* must hold at least :meth:`word_count` int64 items.
        """
        base = 0
        for column in (
            self.offsets,
            self.source_ids,
            self.signature_words,
            self.tokens,
        ):
            view[base : base + len(column)] = column
            base += len(column)

    def signatures(self) -> List[int]:
        """Decode the signature words back into ``sig_bits``-wide integers."""
        words = self.signature_words
        per = self.words_per_signature
        out: List[int] = []
        for rid in range(len(words) // per):
            signature = 0
            for w in range(per - 1, -1, -1):
                signature = (signature << 64) | (words[per * rid + w] & _WORD_MASK)
            out.append(signature)
        return out

    def to_collection(
        self, universe_size: int, with_signatures: bool = True
    ) -> RecordCollection:
        """Reattach the columns as a :class:`RecordCollection`.

        Each record's ``tokens`` is a slice of :attr:`tokens` — a
        zero-copy sub-view when the columns are memoryviews over a
        shared segment.  With *with_signatures* the encoded signatures
        are decoded into the collection's ``sig_bits`` cache slot, so no
        attached process ever re-hashes tokens.
        """
        signatures: Optional[Sequence[int]] = (
            self.signatures() if with_signatures else None
        )
        return RecordCollection.from_flat_arrays(
            self.offsets,
            self.tokens,
            self.source_ids,
            universe_size,
            signatures=signatures,
            sig_bits=self.sig_bits,
        )
