"""Inverted index structures shared by the join algorithms."""

from .columns import RecordColumns
from .inverted import (
    BoundedInvertedIndex,
    InvertedIndex,
    Posting,
    PostingColumns,
)

__all__ = [
    "InvertedIndex",
    "BoundedInvertedIndex",
    "Posting",
    "PostingColumns",
    "RecordColumns",
]
