"""Inverted index structures shared by the join algorithms."""

from .inverted import BoundedInvertedIndex, InvertedIndex, Posting

__all__ = ["InvertedIndex", "BoundedInvertedIndex", "Posting"]
