"""Inverted indexes over record prefixes.

Two flavours are provided:

* :class:`InvertedIndex` — the classic token -> postings map used by the
  threshold joins (All-Pairs, ppjoin).  A posting is ``(rid, position)``
  with 1-based *position* of the token inside the record, which positional
  filtering needs.

* :class:`BoundedInvertedIndex` — the top-k join variant.  Each posting also
  carries the *probing similarity upper bound* the source record had when
  the posting was inserted.  Because the event loop processes prefix events
  in decreasing bound order, every list is sorted by non-increasing bound,
  which is what lets Algorithm 9/10 truncate a list permanently once the
  accessing bound drops below ``s_k``.

The bounded index stores postings as **flat parallel columns**
(:class:`PostingColumns`: one ``array('q')`` of rids, one of positions,
one ``array('d')`` of bounds) rather than lists of ``(rid, j, bound)``
tuples.  The probe loop — the innermost loop of the whole top-k join —
then reads machine-typed columns with local-variable indexing instead of
allocating and unpacking a tuple per posting, the NumPy batch kernel maps
the same columns zero-copy via the buffer protocol, and accessing-bound
truncation is a single tail cut per column instead of a tuple-list slice.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "InvertedIndex",
    "BoundedInvertedIndex",
    "Posting",
    "PostingColumns",
]

#: ``(rid, position)`` — position is 1-based within the canonicalized record.
Posting = Tuple[int, int]


class InvertedIndex:
    """Token -> list of ``(rid, position)`` postings."""

    __slots__ = ("_lists", "_live")

    def __init__(self) -> None:
        self._lists: Dict[int, List[Posting]] = {}
        self._live = 0

    def add(self, token: int, rid: int, position: int) -> None:
        """Append a posting for *token* (insertion order is preserved)."""
        self._lists.setdefault(token, []).append((rid, position))
        self._live += 1

    def postings(self, token: int) -> List[Posting]:
        """The posting list for *token* (empty when unseen)."""
        return self._lists.get(token, [])

    def trim_head(self, token: int, count: int) -> None:
        """Drop the first *count* postings of *token*'s list.

        Used by ppjoin's lazy size filtering; going through the index
        (rather than mutating the returned list) keeps the running
        :attr:`entry_count` accurate.
        """
        if count <= 0:
            return
        postings = self._lists.get(token)
        if not postings:
            return
        count = min(count, len(postings))
        del postings[:count]
        self._live -= count

    def __contains__(self, token: int) -> bool:
        return token in self._lists

    def __len__(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._lists)

    @property
    def entry_count(self) -> int:
        """Current number of live postings (running counter, O(1))."""
        return self._live

    def tokens(self) -> Iterator[int]:
        return iter(self._lists)


class PostingColumns:
    """One token's postings as parallel flat columns.

    ``rids[i]``, ``positions[i]`` and ``bounds[i]`` describe posting *i*;
    all three arrays always have equal length.  ``'q'`` (signed 64-bit)
    is used for the integer columns so NumPy can view them zero-copy with
    a fixed dtype on every platform.
    """

    __slots__ = ("rids", "positions", "bounds")

    def __init__(self) -> None:
        self.rids = array("q")
        self.positions = array("q")
        self.bounds = array("d")

    def __len__(self) -> int:
        return len(self.rids)

    def append(self, rid: int, position: int, bound: float) -> None:
        self.rids.append(rid)
        self.positions.append(position)
        self.bounds.append(bound)

    def cut(self, start: int) -> int:
        """Drop entries ``[start:]`` from every column; return the count."""
        removed = len(self.rids) - start
        if removed <= 0:
            return 0
        del self.rids[start:]
        del self.positions[start:]
        del self.bounds[start:]
        return removed

    def tuples(self) -> List[Tuple[int, int, float]]:
        """Materialize ``(rid, position, bound)`` tuples (tests/debugging)."""
        return list(zip(self.rids, self.positions, self.bounds))


class BoundedInvertedIndex:
    """Top-k join index whose postings carry insertion-time probing bounds.

    Tracks the bookkeeping the paper's Figure 3(b) reports: total insertions,
    deletions (from list truncation) and the peak number of live entries.
    """

    __slots__ = ("_lists", "inserted", "deleted", "peak_entries", "_live")

    def __init__(self) -> None:
        self._lists: Dict[int, PostingColumns] = {}
        self.inserted = 0
        self.deleted = 0
        self.peak_entries = 0
        self._live = 0

    def add(self, token: int, rid: int, position: int, bound: float) -> None:
        """Append ``(rid, position, probing-bound-at-insertion)``."""
        columns = self._lists.get(token)
        if columns is None:
            columns = self._lists[token] = PostingColumns()
        columns.append(rid, position, bound)
        self.inserted += 1
        self._live += 1
        if self._live > self.peak_entries:
            self.peak_entries = self._live

    def columns(self, token: int) -> Optional[PostingColumns]:
        """Live posting columns for *token* (``None`` when unseen).

        Sorted by non-increasing bound; the hot loops index the columns
        directly.
        """
        return self._lists.get(token)

    def postings(self, token: int) -> List[Tuple[int, int, float]]:
        """Live postings for *token* as tuples (compatibility/testing view).

        The hot paths use :meth:`columns`; this materializes tuples on
        every call.
        """
        columns = self._lists.get(token)
        if columns is None:
            return []
        return columns.tuples()

    def truncate(self, token: int, start: int) -> int:
        """Drop postings ``[start:]`` of *token*'s list; return the count.

        Used by the accessing-bound optimisation (Algorithm 9): once an
        entry fails the accessing bound against the current event, all later
        entries (which have even smaller insertion bounds) fail it too — for
        this and every future probing — so the tail is deleted outright.
        """
        columns = self._lists.get(token)
        if columns is None:
            return 0
        removed = columns.cut(start)
        self.deleted += removed
        self._live -= removed
        return removed

    @property
    def entry_count(self) -> int:
        """Current number of live postings."""
        return self._live

    def __len__(self) -> int:
        return len(self._lists)

    def __contains__(self, token: int) -> bool:
        return token in self._lists
