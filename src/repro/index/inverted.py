"""Inverted indexes over record prefixes.

Two flavours are provided:

* :class:`InvertedIndex` — the classic token -> postings map used by the
  threshold joins (All-Pairs, ppjoin).  A posting is ``(rid, position)``
  with 1-based *position* of the token inside the record, which positional
  filtering needs.

* :class:`BoundedInvertedIndex` — the top-k join variant.  Each posting also
  carries the *probing similarity upper bound* the source record had when
  the posting was inserted.  Because the event loop processes prefix events
  in decreasing bound order, every list is sorted by non-increasing bound,
  which is what lets Algorithm 9/10 truncate a list permanently once the
  accessing bound drops below ``s_k``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

__all__ = ["InvertedIndex", "BoundedInvertedIndex", "Posting"]

#: ``(rid, position)`` — position is 1-based within the canonicalized record.
Posting = Tuple[int, int]


class InvertedIndex:
    """Token -> list of ``(rid, position)`` postings."""

    __slots__ = ("_lists",)

    def __init__(self) -> None:
        self._lists: Dict[int, List[Posting]] = {}

    def add(self, token: int, rid: int, position: int) -> None:
        """Append a posting for *token* (insertion order is preserved)."""
        self._lists.setdefault(token, []).append((rid, position))

    def postings(self, token: int) -> List[Posting]:
        """The posting list for *token* (empty when unseen)."""
        return self._lists.get(token, [])

    def __contains__(self, token: int) -> bool:
        return token in self._lists

    def __len__(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._lists)

    @property
    def entry_count(self) -> int:
        """Total number of postings across all lists."""
        return sum(len(postings) for postings in self._lists.values())

    def tokens(self) -> Iterator[int]:
        return iter(self._lists)


class BoundedInvertedIndex:
    """Top-k join index whose postings carry insertion-time probing bounds.

    Tracks the bookkeeping the paper's Figure 3(b) reports: total insertions,
    deletions (from list truncation) and the peak number of live entries.
    """

    __slots__ = ("_lists", "inserted", "deleted", "peak_entries", "_live")

    def __init__(self) -> None:
        self._lists: Dict[int, List[Tuple[int, int, float]]] = {}
        self.inserted = 0
        self.deleted = 0
        self.peak_entries = 0
        self._live = 0

    def add(self, token: int, rid: int, position: int, bound: float) -> None:
        """Append ``(rid, position, probing-bound-at-insertion)``."""
        self._lists.setdefault(token, []).append((rid, position, bound))
        self.inserted += 1
        self._live += 1
        if self._live > self.peak_entries:
            self.peak_entries = self._live

    def postings(self, token: int) -> List[Tuple[int, int, float]]:
        """Live postings for *token*, sorted by non-increasing bound."""
        return self._lists.get(token, [])

    def truncate(self, token: int, start: int) -> int:
        """Drop postings ``[start:]`` of *token*'s list; return the count.

        Used by the accessing-bound optimisation (Algorithm 9): once an
        entry fails the accessing bound against the current event, all later
        entries (which have even smaller insertion bounds) fail it too — for
        this and every future probing — so the tail is deleted outright.
        """
        postings = self._lists.get(token)
        if postings is None or start >= len(postings):
            return 0
        removed = len(postings) - start
        del postings[start:]
        self.deleted += removed
        self._live -= removed
        return removed

    @property
    def entry_count(self) -> int:
        """Current number of live postings."""
        return self._live

    def __len__(self) -> int:
        return len(self._lists)

    def __contains__(self, token: int) -> bool:
        return token in self._lists
