"""Weighted set-similarity joins — the idf-weighted extension."""

from .functions import WeightedCosine, WeightedJaccard, WeightedSimilarity
from .join import (
    naive_weighted_threshold_join,
    naive_weighted_topk,
    weighted_threshold_join,
    weighted_topk_join,
)
from .records import WeightedCollection, WeightedRecord, idf_weights

__all__ = [
    "WeightedRecord",
    "WeightedCollection",
    "idf_weights",
    "WeightedSimilarity",
    "WeightedJaccard",
    "WeightedCosine",
    "weighted_threshold_join",
    "weighted_topk_join",
    "naive_weighted_threshold_join",
    "naive_weighted_topk",
]
