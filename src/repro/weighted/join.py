"""Weighted threshold and top-k similarity joins.

The weighted analogues of All-Pairs and ``topk-join``.  All the machinery
transfers (see ``repro.weighted.functions``); differences from the
unweighted core:

* prefixes are defined by *weight mass*, not token count — a record's
  probing prefix ends where its remaining suffix weight can no longer
  reach the required shared weight;
* the size filter becomes a magnitude filter on total weights;
* positional/suffix filtering are count-based techniques and are not
  carried over; deduplication of re-generated candidates uses a plain
  verified-pair hash (the weighted analogue of Algorithm 6's maximum
  prefixes would need per-weight bookkeeping the paper does not develop).

Both joins are validated against exhaustive oracles, and — with uniform
weights — against the unweighted algorithms, in ``tests/test_weighted.py``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..oracle.invariants import CheckHooks, invariant_checks_enabled
from ..result import JoinResult, sort_results
from .functions import WeightedJaccard, WeightedSimilarity
from .records import WeightedCollection

__all__ = [
    "weighted_threshold_join",
    "weighted_topk_join",
    "naive_weighted_threshold_join",
    "naive_weighted_topk",
]


def naive_weighted_threshold_join(
    collection: WeightedCollection,
    threshold: float,
    similarity: Optional[WeightedSimilarity] = None,
) -> List[JoinResult]:
    """Quadratic oracle: all pairs with ``sim >= threshold``."""
    sim = similarity or WeightedJaccard()
    results: List[JoinResult] = []
    records = collection.records
    for a in range(len(records)):
        for b in range(a + 1, len(records)):
            value = sim.similarity(records[a], records[b])
            if value >= threshold:
                results.append(JoinResult(a, b, value))
    return sort_results(results)


def naive_weighted_topk(
    collection: WeightedCollection,
    k: int,
    similarity: Optional[WeightedSimilarity] = None,
) -> List[JoinResult]:
    """Quadratic oracle: the k most similar pairs."""
    sim = similarity or WeightedJaccard()
    records = collection.records
    heap: List[Tuple[float, int, JoinResult]] = []
    counter = 0
    for a in range(len(records)):
        for b in range(a + 1, len(records)):
            value = sim.similarity(records[a], records[b])
            counter += 1
            item = (value, counter, JoinResult(a, b, value))
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif value > heap[0][0]:
                heapq.heappushpop(heap, item)
    ordered = sorted(heap, key=lambda item: (-item[0], item[2].x, item[2].y))
    return [item[2] for item in ordered]


def weighted_threshold_join(
    collection: WeightedCollection,
    threshold: float,
    similarity: Optional[WeightedSimilarity] = None,
) -> List[JoinResult]:
    """All pairs with ``sim >= threshold`` (weighted All-Pairs).

    Records are processed in increasing magnitude; every record probes the
    inverted index with its weight-defined probing prefix and indexes the
    same prefix (the conservative choice — Lemma 2's tighter indexing
    prefix also transfers, but the probing prefix is always sound).
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    sim = similarity or WeightedJaccard()
    index: Dict[int, List[int]] = {}
    results: List[JoinResult] = []

    for record in collection:
        weight_x = sim.record_weight(record)
        prefix = sim.probing_prefix_length(record, threshold)
        candidates: set = set()
        for position in range(prefix):
            for rid in index.get(record.tokens[position], ()):
                candidates.add(rid)
        for rid in candidates:
            other = collection[rid]
            if not sim.weight_compatible(
                threshold, weight_x, sim.record_weight(other)
            ):
                continue
            value = sim.similarity(record, other)
            if value >= threshold:
                results.append(JoinResult.make(record.rid, rid, value))
        for position in range(prefix):
            index.setdefault(record.tokens[position], []).append(record.rid)

    return sort_results(results)


def weighted_topk_join(
    collection: WeightedCollection,
    k: int,
    similarity: Optional[WeightedSimilarity] = None,
    check_invariants: bool = False,
) -> List[JoinResult]:
    """The k most similar pairs under a weighted similarity.

    The event-driven loop of the paper, with weight-mass prefixes: events
    carry the weighted probing bound, the buffer's ``s_k`` rises
    monotonically, index insertion stops at the weighted indexing bound,
    and the loop halts when the best remaining event cannot beat ``s_k``.
    Pairs with zero shared weight are padded in at similarity 0 when the
    collection has fewer than *k* overlapping pairs.

    With *check_invariants* (or ``REPRO_CHECK=1``) the structural
    invariants — non-increasing event pops, monotone ``s_k``, verify
    exactly once, no indexing after stop, ordered verified emissions —
    are asserted at runtime via :mod:`repro.oracle.invariants`.  The
    Lemma 1/4 bound recomputation is skipped: the weighted bound
    formulas take records, not sizes.
    """
    if k < 1:
        raise ValueError("k must be >= 1, got %d" % k)
    sim = similarity or WeightedJaccard()
    checks = None
    if check_invariants or invariant_checks_enabled(None):
        checks = CheckHooks(sim, k, reference_bounds=False)

    heap: List[Tuple[float, int, int]] = []  # (-bound, rid, prefix)
    for record in collection:
        if len(record.tokens) == 0:
            continue
        bound = sim.probing_upper_bound(record, 1)
        heapq.heappush(heap, (-bound, record.rid, 1))

    top: List[Tuple[float, int, Tuple[int, int]]] = []  # min-heap of k best
    members: Dict[Tuple[int, int], float] = {}
    verified: set = set()
    index: Dict[int, List[int]] = {}
    stop_indexing = bytearray(len(collection))
    sequence = 0

    def s_k() -> float:
        return top[0][0] if len(top) >= k else 0.0

    while heap:
        negated, rid, prefix = heapq.heappop(heap)
        bound = -negated
        if checks is not None:
            checks.on_pop(bound, prefix, 0, s_k())
        if len(top) >= k and bound <= s_k():
            break
        record = collection[rid]
        token = record.tokens[prefix - 1]
        weight_x = sim.record_weight(record)

        for rid_y in index.get(token, ()):
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if pair in verified:
                continue
            verified.add(pair)
            if checks is not None:
                checks.on_verified(pair)
            other = collection[rid_y]
            threshold = s_k()
            if threshold > 0 and not sim.weight_compatible(
                threshold, weight_x, sim.record_weight(other)
            ):
                continue
            value = sim.similarity(record, other)
            if pair in members:
                continue
            sequence += 1
            if len(top) < k:
                heapq.heappush(top, (value, sequence, pair))
                members[pair] = value
            elif value > top[0][0]:
                evicted = heapq.heappushpop(top, (value, sequence, pair))
                del members[evicted[2]]
                members[pair] = value

        # Weighted indexing bound (Lemma 4 analogue).
        if not stop_indexing[rid]:
            inserted = sim.indexing_upper_bound(record, prefix) > s_k()
            if checks is not None:
                checks.on_index_decision(
                    rid, len(record.tokens), prefix, s_k(), inserted
                )
            if inserted:
                index.setdefault(token, []).append(rid)
            else:
                stop_indexing[rid] = 1

        if prefix < len(record.tokens):
            next_bound = sim.probing_upper_bound(record, prefix + 1)
            if next_bound > s_k() or len(top) < k:
                heapq.heappush(heap, (-next_bound, rid, prefix + 1))

    results = [
        JoinResult(pair[0], pair[1], value)
        for value, __, pair in sorted(
            top, key=lambda item: (-item[0], item[2])
        )
    ]
    if checks is not None:
        for result in results:
            checks.on_emit(
                (result.x, result.y), result.similarity, 0.0,
                progressive=False,
            )
    if len(results) < k:
        present = set(members)
        n = len(collection)
        for a in range(n):
            if len(results) >= k:
                break
            for b in range(a + 1, n):
                if len(results) >= k:
                    break
                if (a, b) not in present:
                    results.append(JoinResult(a, b, 0.0))
                    present.add((a, b))
    return results