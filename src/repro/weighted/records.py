"""Weighted records: token sets with per-token global weights.

Record-linkage practice weights tokens by rarity (idf): sharing
``grebe#7`` says far more than sharing ``the``.  All-Pairs [4] already
handles weighted cosine; this subpackage extends the reproduction's
threshold *and* top-k machinery to weighted Jaccard and cosine.

A :class:`WeightedCollection` assigns every token a positive weight
(default: ``ln(1 + N/df)`` idf weights computed from the collection
itself), canonicalizes records heaviest-token-first — the weighted
analogue of the rarest-first ordering — and precomputes, per record, the
suffix-weight array the probing bounds need.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["WeightedRecord", "WeightedCollection", "idf_weights"]


def idf_weights(
    token_lists: Sequence[Sequence[int]],
) -> Dict[int, float]:
    """``ln(1 + N/df)`` weights from the collection's own frequencies."""
    df: Dict[int, int] = {}
    for tokens in token_lists:
        for token in set(tokens):
            df[token] = df.get(token, 0) + 1
    n = len(token_lists)
    return {
        token: math.log(1.0 + n / count) for token, count in df.items()
    }


class WeightedRecord:
    """A canonicalized weighted record.

    ``tokens`` are sorted by the collection's canonical order (heaviest
    first, i.e. ascending rank = descending weight); ``weights`` aligns
    with ``tokens``; ``suffix_weights[i]`` is the total weight of
    ``tokens[i:]`` (so ``suffix_weights[0]`` is the record's weight).
    """

    __slots__ = (
        "rid", "tokens", "weights", "suffix_weights", "suffix_squares",
        "source_id",
    )

    def __init__(
        self,
        rid: int,
        tokens: Tuple[int, ...],
        weights: Tuple[float, ...],
        source_id: int,
    ) -> None:
        self.rid = rid
        self.tokens = tokens
        self.weights = weights
        suffix = [0.0] * (len(weights) + 1)
        squares = [0.0] * (len(weights) + 1)
        for index in range(len(weights) - 1, -1, -1):
            suffix[index] = suffix[index + 1] + weights[index]
            squares[index] = squares[index + 1] + weights[index] ** 2
        self.suffix_weights = tuple(suffix)
        self.suffix_squares = tuple(squares)
        self.source_id = source_id

    @property
    def total_weight(self) -> float:
        return self.suffix_weights[0]

    @property
    def squared_norm(self) -> float:
        """``Σ w_t²`` — the weighted-cosine norm squared."""
        return self.suffix_squares[0]

    def __len__(self) -> int:
        return len(self.tokens)

    def __repr__(self) -> str:
        return "WeightedRecord(rid=%d, size=%d, weight=%.3f)" % (
            self.rid, len(self.tokens), self.total_weight,
        )


class WeightedCollection:
    """Weight-sorted weighted records over one token universe."""

    def __init__(self, records: List[WeightedRecord], universe_size: int) -> None:
        self.records = records
        self.universe_size = universe_size

    @classmethod
    def from_integer_sets(
        cls,
        integer_sets: Sequence[Sequence[int]],
        weights: Optional[Dict[int, float]] = None,
    ) -> "WeightedCollection":
        """Canonicalize integer token sets with *weights* (default: idf).

        Tokens are re-ranked by decreasing weight (ties: token id) so the
        canonical order puts the heaviest tokens in record prefixes, then
        records are sorted by increasing total weight — the weighted
        analogue of size-sorting.
        """
        deduplicated = [tuple(sorted(set(tokens))) for tokens in integer_sets]
        if weights is None:
            weights = idf_weights(deduplicated)
        for token, weight in weights.items():
            if weight <= 0:
                raise ValueError(
                    "weights must be positive; token %r has %r"
                    % (token, weight)
                )

        order = sorted(weights, key=lambda token: (-weights[token], token))
        rank_of = {token: rank for rank, token in enumerate(order)}
        weight_of_rank = [weights[token] for token in order]

        staged: List[Tuple[float, Tuple[int, ...], int]] = []
        for source_id, tokens in enumerate(deduplicated):
            if not tokens:
                continue
            ranked = tuple(sorted(rank_of[t] for t in tokens))
            total = sum(weight_of_rank[r] for r in ranked)
            staged.append((total, ranked, source_id))
        staged.sort(key=lambda item: (item[0], item[1]))

        records = [
            WeightedRecord(
                rid,
                ranked,
                tuple(weight_of_rank[r] for r in ranked),
                source_id,
            )
            for rid, (__, ranked, source_id) in enumerate(staged)
        ]
        return cls(records, universe_size=len(order))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WeightedRecord]:
        return iter(self.records)

    def __getitem__(self, rid: int) -> WeightedRecord:
        return self.records[rid]
