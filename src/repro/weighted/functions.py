"""Weighted similarity functions and their bounds.

The unweighted bound algebra (see ``repro.similarity.functions``) never
used the integrality of overlaps — only monotonicity — so it transfers to
weights verbatim with "number of shared tokens" replaced by "total weight
of shared tokens":

* weighted Jaccard ``J_w = W(x∩y) / W(x∪y)``
  — required shared weight for ``J_w >= t``: ``t/(1+t)·(W_x + W_y)``;
* weighted cosine over weight vectors
  ``C_w = Σ_{t∈x∩y} w_t² / (‖x‖·‖y‖)`` with ``‖x‖² = Σ_{t∈x} w_t²``
  — required shared squared weight: ``t·‖x‖·‖y‖``.

Probing bounds follow the same best-partner constructions: a record whose
processed prefix carries weight ``P`` out of total ``W`` can still reach
at most ``(W-P)/W`` (Jaccard; the partner being exactly the unprocessed
suffix), and an equal-weight partner sharing only the suffix gives the
indexing bound ``(W-P)/(W+P)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from .records import WeightedRecord

__all__ = ["WeightedSimilarity", "WeightedJaccard", "WeightedCosine"]


class WeightedSimilarity(ABC):
    """Base class for weighted set-similarity functions."""

    name: str = "abstract-weighted"

    @abstractmethod
    def record_weight(self, record: WeightedRecord) -> float:
        """The record's magnitude under this function (W or ‖·‖²)."""

    @abstractmethod
    def shared_weight(
        self, x: WeightedRecord, y: WeightedRecord
    ) -> float:
        """Total contribution of the shared tokens."""

    @abstractmethod
    def from_weights(
        self, shared: float, weight_x: float, weight_y: float
    ) -> float:
        """Similarity given the shared contribution and both magnitudes."""

    @abstractmethod
    def required_shared(
        self, threshold: float, weight_x: float, weight_y: float
    ) -> float:
        """Minimal shared contribution for ``sim >= threshold``."""

    @abstractmethod
    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        """Max similarity given both sides' probing bounds."""

    # ------------------------------------------------------------------

    def similarity(self, x: WeightedRecord, y: WeightedRecord) -> float:
        return self.from_weights(
            self.shared_weight(x, y),
            self.record_weight(x),
            self.record_weight(y),
        )

    def probing_upper_bound(self, record: WeightedRecord, prefix: int) -> float:
        """Max similarity when no token before *prefix* (1-based) is shared."""
        remaining = self._remaining(record, prefix)
        if remaining <= 0:
            return 0.0
        return self.from_weights(remaining, self.record_weight(record), remaining)

    def indexing_upper_bound(self, record: WeightedRecord, prefix: int) -> float:
        """Lemma 4's bound, weighted: equal-magnitude partner, shared suffix."""
        remaining = self._remaining(record, prefix)
        if remaining <= 0:
            return 0.0
        weight = self.record_weight(record)
        return self.from_weights(remaining, weight, weight)

    def probing_prefix_length(
        self, record: WeightedRecord, threshold: float
    ) -> int:
        """Shortest prefix whose removal leaves < the required shared weight.

        If no token of the prefix is shared, the shared contribution is at
        most the suffix weight; the prefix ends at the first position
        where that ceases to reach *threshold* against any partner.
        """
        for position in range(1, len(record.tokens) + 2):
            if self.probing_upper_bound(record, position) < threshold:
                return position - 1
        return len(record.tokens)

    def weight_compatible(
        self, threshold: float, weight_x: float, weight_y: float
    ) -> bool:
        """Weighted size filter: can these magnitudes reach *threshold*?"""
        best = self.from_weights(
            min(weight_x, weight_y), weight_x, weight_y
        )
        return best >= threshold

    @abstractmethod
    def _remaining(self, record: WeightedRecord, prefix: int) -> float:
        """Magnitude of the suffix starting at 1-based *prefix*."""


class WeightedJaccard(WeightedSimilarity):
    """``J_w(x, y) = W(x ∩ y) / W(x ∪ y)``."""

    name = "weighted-jaccard"

    def record_weight(self, record: WeightedRecord) -> float:
        return record.total_weight

    def shared_weight(self, x: WeightedRecord, y: WeightedRecord) -> float:
        i = j = 0
        shared = 0.0
        tokens_x, tokens_y = x.tokens, y.tokens
        len_x, len_y = len(tokens_x), len(tokens_y)
        while i < len_x and j < len_y:
            ti, tj = tokens_x[i], tokens_y[j]
            if ti == tj:
                shared += x.weights[i]
                i += 1
                j += 1
            elif ti < tj:
                i += 1
            else:
                j += 1
        return shared

    def from_weights(
        self, shared: float, weight_x: float, weight_y: float
    ) -> float:
        union = weight_x + weight_y - shared
        if union <= 0:
            return 0.0
        return shared / union

    def required_shared(
        self, threshold: float, weight_x: float, weight_y: float
    ) -> float:
        if threshold <= 0:
            return 0.0
        return threshold / (1.0 + threshold) * (weight_x + weight_y)

    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        denominator = bound_x + bound_y - bound_x * bound_y
        if denominator <= 0:
            return 0.0
        return bound_x * bound_y / denominator

    def _remaining(self, record: WeightedRecord, prefix: int) -> float:
        if prefix - 1 >= len(record.suffix_weights):
            return 0.0
        return record.suffix_weights[prefix - 1]


class WeightedCosine(WeightedSimilarity):
    """Cosine over weight vectors: ``Σ_{t∈∩} w_t² / (‖x‖ ‖y‖)``.

    Magnitudes are squared norms ``Σ w_t²``; the shared contribution is the
    dot product, which for identical per-token global weights is the sum of
    squared weights over the intersection.
    """

    name = "weighted-cosine"

    def record_weight(self, record: WeightedRecord) -> float:
        return record.squared_norm

    def shared_weight(self, x: WeightedRecord, y: WeightedRecord) -> float:
        i = j = 0
        shared = 0.0
        tokens_x, tokens_y = x.tokens, y.tokens
        len_x, len_y = len(tokens_x), len(tokens_y)
        while i < len_x and j < len_y:
            ti, tj = tokens_x[i], tokens_y[j]
            if ti == tj:
                weight = x.weights[i]
                shared += weight * weight
                i += 1
                j += 1
            elif ti < tj:
                i += 1
            else:
                j += 1
        return shared

    def from_weights(
        self, shared: float, weight_x: float, weight_y: float
    ) -> float:
        if weight_x <= 0 or weight_y <= 0:
            return 0.0
        return shared / math.sqrt(weight_x * weight_y)

    def required_shared(
        self, threshold: float, weight_x: float, weight_y: float
    ) -> float:
        if threshold <= 0:
            return 0.0
        return threshold * math.sqrt(weight_x * weight_y)

    def accessing_upper_bound(self, bound_x: float, bound_y: float) -> float:
        return bound_x * bound_y

    def _remaining(self, record: WeightedRecord, prefix: int) -> float:
        if prefix - 1 >= len(record.suffix_squares):
            return 0.0
        return record.suffix_squares[prefix - 1]