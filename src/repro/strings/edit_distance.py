"""Edit distance (Levenshtein) primitives.

The paper's related work uses edit distance as the canonical string
similarity (Ukkonen [28]); q-gram joins ([25], Gravano et al.) reduce an
edit-distance predicate to a set-overlap predicate, which is where this
package's machinery takes over.  Two evaluators are provided: the plain
O(n·m) dynamic program and Ukkonen's banded variant that answers the
decision problem ``ed(a, b) <= d`` in O(d·min(n, m)).
"""

from __future__ import annotations

__all__ = ["edit_distance", "edit_distance_within"]


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (unit-cost insert / delete / substitute)."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,        # delete from a
                    current[j - 1] + 1,     # insert into a
                    previous[j - 1] + cost,  # substitute / match
                )
            )
        previous = current
    return previous[-1]


def edit_distance_within(a: str, b: str, d: int) -> int:
    """``ed(a, b)`` if it is <= *d*, else any value > *d* (Ukkonen's band).

    Only cells within *d* of the diagonal can lie on a path of cost <= d,
    so each DP row is a band of width ``2d + 1``.
    """
    if d < 0:
        return max(len(a), len(b)) if a != b else 0
    if abs(len(a) - len(b)) > d:
        return d + 1
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)

    infinity = d + 1
    previous = {j: j for j in range(min(d, len(b)) + 1)}
    for i in range(1, len(a) + 1):
        low = max(1, i - d)
        high = min(len(b), i + d)
        current = {}
        if i - d <= 0:
            current[low - 1] = i
        char_a = a[i - 1]
        row_best = infinity
        for j in range(low, high + 1):
            cost = 0 if char_a == b[j - 1] else 1
            value = min(
                previous.get(j, infinity) + 1,
                current.get(j - 1, infinity) + 1,
                previous.get(j - 1, infinity) + cost,
            )
            value = min(value, infinity)
            current[j] = value
            if value < row_best:
                row_best = value
        if row_best >= infinity:
            return infinity
        previous = current
    return min(previous.get(len(b), infinity), infinity)