"""Edit-distance similarity joins via q-gram prefix filtering.

The classic reduction ([25] Gravano et al., and Ed-Join by the same
authors as this paper): a single edit operation destroys at most *q*
overlapping q-grams, so

    ed(s1, s2) <= d   =>   |G(s1) ∩ G(s2)| >= max(|s1|, |s2|) - q + 1 - q·d

(*count filtering*), and ``abs(|s1| - |s2|) <= d`` (*length filtering*).
The overlap constraint is exactly this package's overlap-similarity join
problem, so the same canonicalization / prefix-filtering machinery
applies; candidates are confirmed with Ukkonen's banded dynamic program.

For records of gram-set size ``G``, the worst admissible partner needs an
overlap of ``G - q·d``, so a prefix of ``q·d + 1`` grams suffices — the
well-known q-gram prefix.

:func:`edit_distance_topk` answers the *top-k closest string pairs*
question with a pptopk-style escalation (d = 0, 1, 2, … until k pairs),
which is the natural baseline formulation; an event-driven variant would
require edit-distance-specific bounds the paper does not develop.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..data.ordering import document_frequencies, idf_ordering
from ..data.tokenize import tokenize_qgrams
from ..similarity.overlap import overlap_with_early_abort
from .edit_distance import edit_distance_within

__all__ = ["StringPair", "edit_distance_join", "edit_distance_topk"]


class StringPair(NamedTuple):
    """A joined string pair: input indices (``x < y``) and edit distance."""

    x: int
    y: int
    distance: int


class _GramRecord(NamedTuple):
    index: int        # position in the input list
    length: int       # string length
    grams: Tuple[int, ...]


def _canonicalize(strings: Sequence[str], q: int) -> List[_GramRecord]:
    """Occurrence-numbered q-grams, ranked rarest-first, size-sorted."""
    gram_lists = [tokenize_qgrams(text, q=q) for text in strings]
    rank_of = idf_ordering(document_frequencies(gram_lists))
    records = [
        _GramRecord(
            index=index,
            length=len(strings[index]),
            grams=tuple(sorted(rank_of[g] for g in set(grams))),
        )
        for index, grams in enumerate(gram_lists)
    ]
    records.sort(key=lambda record: (len(record.grams), record.grams))
    return records


def edit_distance_join(
    strings: Sequence[str],
    max_distance: int,
    q: int = 3,
) -> List[StringPair]:
    """All string pairs with ``ed <= max_distance``, nearest first.

    Prefix-filtered candidate generation (``q·d + 1`` gram prefixes) with
    length and count filtering, verified by the banded edit-distance DP.
    """
    if max_distance < 0:
        raise ValueError("max_distance must be >= 0")
    if q < 1:
        raise ValueError("q must be >= 1")

    records = _canonicalize(strings, q)
    prefix_length = q * max_distance + 1
    index: Dict[int, List[int]] = {}
    results: List[StringPair] = []
    # Pairs in which the *longer* string has at most q·d grams have a
    # non-positive required overlap: they can be within distance d while
    # sharing no gram at all, so prefix filtering does not apply.  Records
    # are gram-count-sorted, so it suffices to compare each short record
    # (<= q·d grams) against the earlier short records by brute force.
    short_positions: List[int] = []

    for position, record in enumerate(records):
        candidates: set = set()
        if len(record.grams) <= q * max_distance:
            candidates.update(short_positions)
            short_positions.append(position)
        for gram in record.grams[:prefix_length]:
            for other_position in index.get(gram, ()):
                candidates.add(other_position)
        for other_position in candidates:
            other = records[other_position]
            # Length filtering.
            if abs(record.length - other.length) > max_distance:
                continue
            # Count filtering on the q-gram sets.
            required = (
                max(record.length, other.length) - q + 1 - q * max_distance
            )
            if required > 0:
                overlap = overlap_with_early_abort(
                    record.grams, other.grams, required
                )
                if overlap < required:
                    continue
            distance = edit_distance_within(
                strings[record.index], strings[other.index], max_distance
            )
            if distance <= max_distance:
                a, b = record.index, other.index
                if a > b:
                    a, b = b, a
                results.append(StringPair(a, b, distance))
        for gram in record.grams[:prefix_length]:
            index.setdefault(gram, []).append(position)

    results.sort(key=lambda pair: (pair.distance, pair.x, pair.y))
    return results


def edit_distance_topk(
    strings: Sequence[str],
    k: int,
    q: int = 3,
    max_distance_cap: Optional[int] = None,
) -> List[StringPair]:
    """The k closest string pairs by edit distance.

    Escalates the distance threshold ``d = 0, 1, 2, …`` until at least k
    pairs qualify (re-running the join each round, like ``pptopk``), then
    keeps the k nearest.  *max_distance_cap* bounds the escalation; it
    defaults to the longest string's length, at which point every pair
    qualifies.
    """
    if k < 1:
        raise ValueError("k must be >= 1, got %d" % k)
    if not strings:
        return []
    cap = (
        max_distance_cap
        if max_distance_cap is not None
        else max(len(text) for text in strings)
    )
    total_pairs = len(strings) * (len(strings) - 1) // 2
    target = min(k, total_pairs)
    results: List[StringPair] = []
    for distance in range(cap + 1):
        results = edit_distance_join(strings, distance, q=q)
        if len(results) >= target:
            break
    return results[:k]
