"""String similarity substrate: edit distance and q-gram joins."""

from .edit_distance import edit_distance, edit_distance_within
from .qgram_join import StringPair, edit_distance_join, edit_distance_topk

__all__ = [
    "edit_distance",
    "edit_distance_within",
    "StringPair",
    "edit_distance_join",
    "edit_distance_topk",
]
