"""The result type shared by every join algorithm."""

from __future__ import annotations

from typing import List, NamedTuple, Sequence, Tuple

__all__ = ["JoinResult", "ordered_pair", "sort_results", "similarity_multiset"]


class JoinResult(NamedTuple):
    """One joined pair: record ids (``x < y``) and their similarity."""

    x: int
    y: int
    similarity: float

    @classmethod
    def make(cls, rid_a: int, rid_b: int, similarity: float) -> "JoinResult":
        """Build a result with the record ids in canonical order."""
        if rid_a > rid_b:
            rid_a, rid_b = rid_b, rid_a
        return cls(rid_a, rid_b, similarity)

    def sort_key(self) -> Tuple[float, int, int]:
        """Descending-similarity sort key with deterministic tie-breaking."""
        return (-self.similarity, self.x, self.y)


def ordered_pair(rid_a: int, rid_b: int) -> Tuple[int, int]:
    """Canonical (smaller, larger) pair key."""
    return (rid_a, rid_b) if rid_a < rid_b else (rid_b, rid_a)


def sort_results(results: Sequence[JoinResult]) -> List[JoinResult]:
    """Sort results by decreasing similarity, ties by record ids."""
    return sorted(results, key=JoinResult.sort_key)


def similarity_multiset(results: Sequence[JoinResult]) -> List[float]:
    """The descending multiset of similarity values.

    Top-k answers are unique only up to permutations of tied pairs, so
    correctness tests compare this multiset rather than the pair lists.
    """
    return sorted((r.similarity for r in results), reverse=True)
