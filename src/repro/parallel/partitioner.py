"""Sharding the record collection and decomposing the pair space.

A collection is split into *m* contiguous, size-sorted shards: shard *i*
holds records ``floor(i·n/m) .. floor((i+1)·n/m)`` of the size-sorted
collection.  Contiguity is the load-bearing choice: records of (near-)
equal size — where all the high-similarity pairs live, since Jaccard
``>= t`` forces ``|x|/|y| >= t`` — land in the *same* shard, so the cheap
diagonal self-joins find the top pairs immediately and publish a high
shared bound, while cross tasks between distant size blocks are killed
almost instantly by the size filter running against that bound.  (A
strided partition would do the opposite: split every near-duplicate pair
across shards and leave all tasks grinding with weak local bounds.)

The pair space then decomposes exactly:

* diagonal task ``(i, i)`` — the self-join of shard ``Ri``;
* cross task ``(i, j)``, ``i < j`` — the bipartite join ``Ri × Rj``
  (via ``TopkOptions.bipartite_sides``, which generates cross pairs only).

Every unordered record pair of the collection belongs to exactly one
task, so the union of per-task top-k buffers provably contains the global
top-k (see :mod:`repro.parallel.merger`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..data.records import Record, RecordCollection

__all__ = ["shard_collection", "shard_ranges", "task_plan", "subproblem"]


def shard_ranges(record_count: int, shards: int) -> List[range]:
    """Split ``0..record_count-1`` into up to *shards* contiguous spans.

    The descriptor form of sharding: a contiguous size-sorted shard is
    fully described by its ``range(start, stop)``, so the parallel
    backend ships these constant-size descriptors to workers instead of
    materialized rid tuples.  Spans cover the rid space exactly once,
    with record counts differing by at most one; the shard count is
    clamped to the collection size (never more shards than records, at
    least one shard).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1, got %d" % shards)
    m = max(1, min(shards, record_count))
    bounds = [record_count * i // m for i in range(m + 1)]
    return [range(bounds[i], bounds[i + 1]) for i in range(m)]


def shard_collection(
    collection: RecordCollection, shards: int
) -> List[Tuple[int, ...]]:
    """Split *collection* into contiguous size-sorted shards of rid tuples.

    Compatibility wrapper over :func:`shard_ranges` returning the rids
    materialized as ascending tuples.
    """
    return [tuple(span) for span in shard_ranges(len(collection), shards)]


def task_plan(shard_count: int) -> List[Tuple[int, int]]:
    """All ``(i, j)`` sub-join tasks, diagonals first.

    Diagonal (self-join) tasks are cheapest and find high-similarity
    pairs immediately, so scheduling them first raises the shared bound
    before the larger cross tasks start scanning.
    """
    diagonals = [(i, i) for i in range(shard_count)]
    crosses = [(i, j) for i in range(shard_count) for j in range(i + 1, shard_count)]
    return diagonals + crosses


def subproblem(
    collection: RecordCollection,
    rids_a: Sequence[int],
    rids_b: Optional[Sequence[int]] = None,
) -> Tuple[RecordCollection, Optional[bytes]]:
    """Build the sub-collection for one task.

    Records keep their canonical global token ranks (no re-ordering —
    prefix filtering needs one global ordering) and are re-labelled with
    dense local rids; each sub-record's ``source_id`` holds its *global*
    rid so task results can be mapped back.  Returns ``(sub, sides)``
    where *sides* is ``None`` for a diagonal task and a 0/1 label per
    local rid for a cross task.
    """
    records = collection.records
    if rids_b is None:
        chosen: List[int] = list(rids_a)
        sides = None
    else:
        chosen = sorted(list(rids_a) + list(rids_b))
        side_b = set(rids_b)
        sides = bytes(1 if rid in side_b else 0 for rid in chosen)
    subrecords = [
        Record(local_rid, records[rid].tokens, rid)
        for local_rid, rid in enumerate(chosen)
    ]
    sub = RecordCollection(
        subrecords,
        universe_size=collection.universe_size,
        token_of_rank=collection.token_of_rank,
    )
    # Each shard participates in many tasks: reuse the parent collection's
    # bit signatures (whichever widths are already built, e.g. by the
    # worker initializer) instead of re-hashing every token once per task.
    for bits, parent_signatures in collection._signatures.items():
        sub._signatures[bits] = [parent_signatures[rid] for rid in chosen]
    return sub, sides
