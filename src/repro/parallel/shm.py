"""Shared-memory segments: the zero-copy data plane of the parallel backend.

The pickling data plane ships the whole collection to every worker (via
fork copy-on-write or, under spawn, a full pickle per worker), so data
distribution costs grow with ``workers x collection``.  This module
serializes the collection **once** into a single
:mod:`multiprocessing.shared_memory` segment and hands workers a tiny
picklable :class:`ShmDescriptor`; each worker attaches read-only
``memoryview`` slices over the same physical pages — no per-worker token
copies, no per-worker signature hashing, and spawn-platform support for
free.

Segment layout (all int64 words)::

    word 0..7   header: MAGIC, SCHEMA, records, total_tokens,
                universe_size, has_signatures, sig_bits, reserved
    word 8..    RecordColumns payload — offsets, source_ids,
                signature_words, tokens (see repro.index.columns)

Lifecycle contract:

* the creating process is the **owner**: it must call
  :func:`destroy_segment` exactly once on every descriptor it created,
  on success *and* on failure (``parallel_topk_join`` does so in a
  ``finally`` block, covering worker crashes and KeyboardInterrupt);
* attached processes never ``close()`` explicitly — their token views
  keep the mapping alive, and process exit unmaps it.  The serial
  round-trip detaches deterministically via
  :meth:`AttachedSegment.detach` once all views are dropped;
* :func:`destroy_segment` re-opens the segment by name, so it works even
  after the owner's create-time handle is gone, and is idempotent
  (destroying an already-destroyed segment is a no-op);
* resource-tracker bookkeeping is left entirely to the standard library:
  registration is deduplicated per name and ``unlink()`` unregisters, so
  neither creators nor attachers may call ``unregister`` by hand —
  pool children share the parent's tracker, and a manual unregister in a
  worker would strip the parent's entry.

Segment names carry a recognizable prefix so tests can assert (via
:func:`leaked_segments`) that nothing survives on ``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from functools import lru_cache
from multiprocessing import shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.sanitizer import Sanitizer

from ..data.records import (
    SIGNATURE_BITS,
    RecordCollection,
    signature_width,
)
from ..index.columns import RecordColumns

__all__ = [
    "AttachedSegment",
    "ShmAttachError",
    "ShmDescriptor",
    "ShmError",
    "attach_collection",
    "create_segment",
    "destroy_segment",
    "leaked_segments",
    "shm_usable",
]

#: ``b"TKSM"`` ("top-k shared memory") as a little int.
_MAGIC = 0x544B534D
_SCHEMA = 2
_HEADER_WORDS = 8

#: Prefix of every segment name this module creates; the leak check in
#: the test suite scans ``/dev/shm`` for it.
_NAME_PREFIX = "repro_topk_"


class _Segment(shared_memory.SharedMemory):
    """``SharedMemory`` whose close tolerates still-exported views.

    An attached collection can end up in a reference cycle (the accel
    kernels point back at the records), and cycle collection finalizes
    members in arbitrary order — the handle may die while token views
    are still alive.  Closing is then impossible (the views pin the
    pages) but also unnecessary: the views' managed buffer keeps the
    mapping alive and the process unmaps when the last one dies.  A
    plain ``SharedMemory`` sprays ``Exception ignored ... BufferError``
    noise from its finalizer in that order; this subclass retries
    nothing and simply leaves the mapping to the views.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


class ShmError(RuntimeError):
    """A shared-memory data-plane failure."""


class ShmAttachError(ShmError):
    """Attaching a segment failed (gone, or not one of ours)."""


@dataclass(frozen=True)
class ShmDescriptor:
    """Everything a worker needs to attach one collection segment.

    Descriptors are tiny and picklable — they ride through pool
    ``initargs`` in place of the collection itself.  The size fields
    double as validation: attach re-checks them against the segment
    header so a stale or foreign name fails loudly instead of decoding
    garbage.
    """

    name: str
    records: int
    total_tokens: int
    universe_size: int
    has_signatures: bool
    nbytes: int
    sig_bits: int = SIGNATURE_BITS


class AttachedSegment:
    """A segment attached for reading: the collection plus its handle.

    The ``SharedMemory`` handle must outlive every token view derived
    from it (dropping the handle first makes its finalizer trip over the
    exported buffers), so attach returns both together.  Pool workers
    simply keep the pair until process exit; the serial round-trip drops
    the collection first and then calls :meth:`detach`.
    """

    __slots__ = ("collection", "descriptor", "_shm")

    def __init__(
        self,
        collection: RecordCollection,
        descriptor: ShmDescriptor,
        shm: shared_memory.SharedMemory,
    ) -> None:
        self.collection = collection
        self.descriptor = descriptor
        self._shm = shm

    def detach(self) -> None:
        """Close the mapping, best-effort.

        Safe to call while token views are still alive: the close is
        skipped (the views pin the pages, see :class:`_Segment`) and the
        mapping goes away with the last view.
        """
        self._shm.close()
        sanitizer = _sanitizer()
        if sanitizer is not None:
            sanitizer.on_detach(self.descriptor.name)


def _fresh_name() -> str:
    return _NAME_PREFIX + secrets.token_hex(8)


def _sanitizer() -> "Optional[Sanitizer]":
    """The armed runtime sanitizer, or ``None`` without importing it.

    One environment-variable check is the entire cost on the (default)
    disabled path; the analysis package is only imported once
    ``REPRO_SANITIZE`` arms the sanitizer.
    """
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        return None
    from ..analysis.sanitizer import active

    return active()


@lru_cache(maxsize=1)
def shm_usable() -> bool:
    """Whether shared-memory segments work in this environment.

    Sandboxes without ``/dev/shm`` (or with it mounted read-only) raise
    on create; callers fall back to the pickling data plane, which
    computes the identical answer.
    """
    try:
        probe = shared_memory.SharedMemory(create=True, size=8, name=_fresh_name())
    except (ImportError, OSError, PermissionError):
        return False
    probe.close()
    try:
        probe.unlink()
    except FileNotFoundError:  # pragma: no cover - platform quirk
        pass
    return True


def leaked_segments() -> List[str]:
    """Names of live segments created by this module, machine-wide.

    Scans ``/dev/shm`` directly (POSIX), so it sees segments leaked by
    *any* process — the test suite runs it after every test.  Returns an
    empty list on platforms without ``/dev/shm``.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(path.name for path in root.glob(_NAME_PREFIX + "*"))


def create_segment(
    collection: RecordCollection,
    with_signatures: bool = True,
    sig_bits: int = SIGNATURE_BITS,
) -> ShmDescriptor:
    """Serialize *collection* into a fresh shared segment, once.

    Detaches the collection into flat :class:`RecordColumns`, writes
    header plus payload, closes the create-time handle (the named
    segment persists until :func:`destroy_segment`) and returns the
    descriptor to ship to workers.  *sig_bits* selects the signature
    width serialized into the payload (matching the join options, so
    attached kernels never re-hash at a different width).  Raises
    ``OSError`` where shared memory is unavailable — probe with
    :func:`shm_usable` or be ready to fall back.
    """
    sig_bits = signature_width(sig_bits)
    columns = RecordColumns.from_collection(
        collection, with_signatures=with_signatures, sig_bits=sig_bits
    )
    nbytes = 8 * (_HEADER_WORDS + columns.word_count())
    shm = shared_memory.SharedMemory(create=True, size=nbytes, name=_fresh_name())
    try:
        view = memoryview(shm.buf).cast("q")
        try:
            view[0] = _MAGIC
            view[1] = _SCHEMA
            view[2] = columns.records
            view[3] = columns.total_tokens
            view[4] = collection.universe_size
            view[5] = 1 if with_signatures else 0
            view[6] = sig_bits
            view[7] = 0
            payload = view[_HEADER_WORDS:]
            try:
                columns.write_into(payload)
            finally:
                payload.release()
        finally:
            view.release()
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    descriptor = ShmDescriptor(
        name=shm.name,
        records=columns.records,
        total_tokens=columns.total_tokens,
        universe_size=collection.universe_size,
        has_signatures=with_signatures,
        nbytes=nbytes,
        sig_bits=sig_bits,
    )
    shm.close()
    sanitizer = _sanitizer()
    if sanitizer is not None:
        sanitizer.on_create(descriptor.name)
    return descriptor


def attach_collection(descriptor: ShmDescriptor) -> AttachedSegment:
    """Attach read-only zero-copy views over *descriptor*'s segment.

    The returned collection's per-record tokens are ``memoryview``
    slices of the shared pages; nothing is copied except the (decoded)
    signature cache.  Raises :class:`ShmAttachError` when the segment
    was already unlinked or its header does not match the descriptor.
    """
    try:
        shm = _Segment(name=descriptor.name, create=False)
    except FileNotFoundError:
        raise ShmAttachError(
            "shared-memory segment %r is gone: it was already unlinked "
            "(attach after destroy_segment?)" % descriptor.name
        ) from None
    try:
        if shm.size < descriptor.nbytes:
            raise ShmAttachError(
                "segment %r holds %d bytes, descriptor promises %d"
                % (descriptor.name, shm.size, descriptor.nbytes)
            )
        view = memoryview(shm.buf).toreadonly().cast("q")
        header = tuple(view[:_HEADER_WORDS])
        if header[0] != _MAGIC or header[1] != _SCHEMA:
            view.release()
            raise ShmAttachError(
                "segment %r is not a schema-%d collection segment"
                % (descriptor.name, _SCHEMA)
            )
        if header[2] != descriptor.records or header[3] != descriptor.total_tokens:
            view.release()
            raise ShmAttachError(
                "segment %r header disagrees with its descriptor "
                "(records %d vs %d, tokens %d vs %d)"
                % (
                    descriptor.name,
                    header[2],
                    descriptor.records,
                    header[3],
                    descriptor.total_tokens,
                )
            )
        if header[6] != descriptor.sig_bits:
            view.release()
            raise ShmAttachError(
                "segment %r was written with %d-bit signatures, "
                "descriptor promises %d-bit"
                % (descriptor.name, header[6], descriptor.sig_bits)
            )
    except ShmAttachError:
        shm.close()
        raise
    columns = RecordColumns.read_from(
        view[_HEADER_WORDS:],
        records=descriptor.records,
        total_tokens=descriptor.total_tokens,
        sig_bits=descriptor.sig_bits,
    )
    collection = columns.to_collection(
        universe_size=header[4], with_signatures=bool(header[5])
    )
    # The collection itself pins the handle: its token views borrow the
    # mapping, so the handle must live at least as long as the records do
    # — even when the AttachedSegment wrapper is dropped first.
    collection._retained_buffer = shm
    sanitizer = _sanitizer()
    if sanitizer is not None:
        sanitizer.on_attach(descriptor.name)
    return AttachedSegment(collection, descriptor, shm)


def destroy_segment(descriptor: ShmDescriptor) -> None:
    """Unlink *descriptor*'s segment; idempotent and owner-only.

    Re-opens by name so it works regardless of which handle created the
    segment; attached processes keep their mappings (POSIX unlink
    semantics) and the pages are reclaimed once the last one exits.
    """
    sanitizer = _sanitizer()
    try:
        shm = shared_memory.SharedMemory(name=descriptor.name, create=False)
    except FileNotFoundError:
        if sanitizer is not None:  # already gone counts as destroyed
            sanitizer.on_destroy(descriptor.name)
        return
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a destroy race
        pass
    shm.close()
    if sanitizer is not None:
        sanitizer.on_destroy(descriptor.name)
