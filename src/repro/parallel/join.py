"""``parallel_topk_join`` — the sharded multiprocessing top-k backend.

The collection is split into *m* contiguous size-sorted shards; the pair
space then
decomposes exactly into ``m(m+1)/2`` independent sub-joins (diagonal
self-joins plus bipartite cross joins) executed by a worker pool.  The
workers cooperate through one shared, monotonically rising lower bound on
the global ``s_k``: a shard that finds good pairs early raises the
early-termination, indexing and accessing bounds in every other worker.
The merger folds the per-task buffers into the exact global top-k.

Execution strategy:

* ``workers > 1`` — a ``multiprocessing`` pool; the collection is
  serialized **once** into a shared-memory segment
  (:mod:`repro.parallel.shm`) and workers attach zero-copy read-only
  views, so data distribution costs no longer grow with the worker
  count.  Where shared memory is unavailable the pool falls back to the
  pickling data plane (``fork`` copy-on-write where possible, a pickle
  per worker under ``spawn``).  Tasks are dispatched diagonals-first so
  the shared bound rises before the large cross tasks start.
* ``workers == 1`` (or pool creation fails, e.g. in sandboxes without
  semaphore support) — the same tasks run serially in-process, still
  sharing the bound from task to task.

This module owns the segment lifecycle: every segment it creates is
destroyed in a ``finally`` block, so success, worker crashes and
KeyboardInterrupt all unlink deterministically.

The result is exact: same similarity multiset as the sequential
:func:`repro.core.topk_join.topk_join`, same pairs wherever similarities
are not tied at the k-th value, and deterministic tie-breaking by record
ids at the boundary.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import os
from contextlib import nullcontext
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    ContextManager,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.metrics import TopkStats
from ..core.results import TopKBuffer
from ..core.seeding import seed_temporary_results
from ..core.topk_join import TopkOptions, _zero_fill, topk_join
from ..core.verification import VerificationRegistry
from ..data.records import RecordCollection
from ..result import JoinResult
from ..similarity.functions import Jaccard, SimilarityFunction
from .bound import LocalSimilarityBound, SharedSimilarityBound
from .merger import absorb_task_traces, merge_task_results
from .partitioner import shard_ranges, task_plan
from .shm import (
    ShmDescriptor,
    create_segment,
    destroy_segment,
)
from .worker import TaskRow, initialize_worker, run_task, teardown_worker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.tracer import Tracer

__all__ = ["parallel_topk_join"]

#: ``(result rows, stats, trace payloads)`` per task, as collected by a
#: runner; payloads are present only when the parent requested tracing.
_TaskOutcome = Tuple[List[List[TaskRow]], List[TopkStats], List[Dict[str, Any]]]

#: Upper limit on the shard count; see the clamp in ``parallel_topk_join``.
MAX_SHARDS = 64


def parallel_topk_join(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    options: Optional[TopkOptions] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    stats: Optional[TopkStats] = None,
    shm: Optional[bool] = None,
) -> List[JoinResult]:
    """The k most similar pairs of *collection*, computed shard-parallel.

    *workers* defaults to the machine's CPU count; *shards* defaults to
    ``2 * workers`` so the pool has enough tasks to balance (a task is at
    most two shards' worth of records).  Per-task counters are aggregated
    into *stats* via :meth:`TopkStats.merge_from`.  Like the sequential
    join, the answer is padded with similarity-0 pairs when fewer than
    *k* pairs share a token.

    *shm* selects the data plane: ``None`` (the default) uses zero-copy
    shared-memory segments whenever a worker pool runs and the host
    supports them, ``True`` additionally forces the single-worker serial
    path through a full create/attach/destroy round-trip (how the
    differential fuzzer exercises the plane), and ``False`` forces the
    legacy pickling plane.
    """
    if k < 1:
        raise ValueError("k must be >= 1, got %d" % k)
    sim = similarity or Jaccard()
    opts = options or TopkOptions()
    worker_count = workers if workers is not None else os.cpu_count() or 1
    worker_count = max(1, worker_count)
    shard_count = shards if shards is not None else 2 * worker_count
    if shard_count < 1:
        raise ValueError("shards must be >= 1, got %d" % shard_count)
    # The task count is quadratic in the shard count (m(m+1)/2 sub-joins,
    # each paying its own seeding scan), so an oversized --shards request
    # would drown the join in per-task overhead.  64 shards = 2080 tasks
    # keeps the busiest sensible pool fed with plenty of slack.
    shard_count = min(shard_count, MAX_SHARDS)

    rid_shards = shard_ranges(len(collection), shard_count)
    plan = task_plan(len(rid_shards))
    if len(plan) <= 1:
        return topk_join(collection, k, similarity=sim, options=opts, stats=stats)

    # Tasks must start from a clean cooperative state; the shared bound
    # and per-task side labels are installed by the workers themselves.
    # The tracer is stripped too — it holds a lock and cannot cross
    # process boundaries; tracing travels as a bool and worker-local
    # tracers come back by value (see repro.parallel.worker).
    tracer = opts.trace
    base = replace(opts, bound_provider=None, bipartite_sides=None, trace=None)

    root: ContextManager[Any] = (
        tracer.span(
            "parallel_topk_join",
            k=k,
            workers=worker_count,
            shards=len(rid_shards),
            tasks=len(plan),
        )
        if tracer is not None
        else nullcontext()
    )
    with root:
        # Seed the shared bound from the *global* collection before any
        # task starts: per-task seeding only sees one or two shards, so
        # without this the first wave of workers would grind with
        # near-zero bounds until some task's buffer fills.  The seed
        # pairs also join the merge (they are exactly verified global
        # pairs), which is what makes pruning at the seeded bound safe
        # for ties.
        seed_bound, seed_rows, seed_stats = _global_seed(collection, k, sim, base)

        outcome = None
        segment: Optional[ShmDescriptor] = None
        try:
            if worker_count > 1:
                if shm is not False:
                    segment = _build_segment(collection, base, tracer)
                outcome = _run_pool(
                    segment if segment is not None else collection,
                    rid_shards,
                    k,
                    sim,
                    base,
                    plan,
                    worker_count,
                    seed_bound,
                    trace=tracer is not None,
                )
            if outcome is None:
                outcome = _run_serial(
                    collection,
                    rid_shards,
                    k,
                    sim,
                    base,
                    plan,
                    seed_bound,
                    trace=tracer is not None,
                    use_shm=shm is True,
                    tracer=tracer,
                )
        finally:
            # Owner-side unlink: runs on success, worker crash and
            # KeyboardInterrupt alike.  Attached workers keep their
            # mappings until they exit (POSIX unlink semantics).
            if segment is not None:
                destroy_segment(segment)

        task_rows, task_stats, task_traces = outcome
        task_rows.append(seed_rows)
        task_stats.append(seed_stats)
        if stats is not None:
            for entry in task_stats:
                stats.merge_from(entry)
        if tracer is not None:
            # The merger's observability counterpart: worker span trees
            # land under task-N containers, and the global seed's
            # counters (it has no tracer of its own) fold in directly.
            absorb_task_traces(tracer, task_traces)
            tracer.metrics.absorb_topk_stats(seed_stats)

        results = merge_task_results(task_rows, k)
        if len(results) < k:
            results.extend(_zero_fill(collection, k - len(results), results))
        return results


def _global_seed(
    collection: RecordCollection,
    k: int,
    sim: SimilarityFunction,
    options: TopkOptions,
) -> Tuple[float, List[TaskRow], TopkStats]:
    """Verify selective-token pairs of the whole collection up front.

    Returns ``(bound, rows, stats)``: a valid lower bound on the global
    ``s_k`` (0.0 when the seed buffer did not fill), the seed pairs as
    merger rows, and their verification count as a stats entry.
    """
    stats = TopkStats()
    if not options.seed_results:
        return 0.0, [], stats
    buffer = TopKBuffer(k)
    registry = VerificationRegistry(sim, mode="off")
    stats.verifications = seed_temporary_results(collection, sim, buffer, registry)
    rows = [(pair[0], pair[1], value) for pair, value in buffer.items()]
    bound = buffer.s_k if buffer.full else 0.0
    return bound, rows, stats


def _build_segment(
    collection: RecordCollection,
    base: TopkOptions,
    tracer: Optional["Tracer"],
) -> Optional[ShmDescriptor]:
    """Encode *collection* into a shared segment; None when unsupported.

    Failure is not an error: sandboxes without a usable ``/dev/shm``
    fall back to the pickling data plane, which computes the identical
    answer.  Signatures are encoded at the options' configured width
    whenever the accelerated kernels will want them, so workers decode
    ``sig_bits // 64`` words per record instead of re-hashing every
    token.
    """
    span: ContextManager[Any] = (
        tracer.span("shm_build") if tracer is not None else nullcontext()
    )
    try:
        with span:
            segment = create_segment(
                collection,
                with_signatures=base.accel != "off",
                sig_bits=base.sig_bits,
            )
    except (ImportError, OSError, PermissionError):
        return None
    if tracer is not None:
        tracer.metrics.gauge(
            "repro_shm_segment_bytes",
            "Size of the shared-memory collection segment.",
            mode="max",
        ).set(float(segment.nbytes))
    return segment


def _run_pool(
    source: Union[RecordCollection, ShmDescriptor],
    rid_shards: Sequence[Sequence[int]],
    k: int,
    sim: SimilarityFunction,
    base: TopkOptions,
    plan: Sequence[Tuple[int, int]],
    worker_count: int,
    seed_bound: float,
    trace: bool = False,
) -> Optional[_TaskOutcome]:
    """Execute *plan* on a process pool; None when no pool can be made.

    *source* is what each worker's initializer receives: a shared-memory
    descriptor on the zero-copy plane, or the collection itself on the
    pickling plane.
    """
    try:
        context = _pool_context()
        shared = SharedSimilarityBound.for_context(context, seed_bound)
        processes = min(worker_count, len(plan))
        pool = context.Pool(
            processes,
            initializer=initialize_worker,
            initargs=(source, rid_shards, k, sim, base, shared.raw, trace),
        )
        # Shut the pool down explicitly: ``Pool.__exit__`` calls
        # ``terminate()``, which kills workers mid-flight and leaks
        # semaphores/pipes that surface as ResourceWarnings at interpreter
        # exit.  ``close()`` + ``join()`` lets every worker drain and
        # release its primitives; ``terminate()`` remains the error path.
        try:
            task_rows: List[List[TaskRow]] = []
            task_stats: List[TopkStats] = []
            task_traces: List[Dict[str, Any]] = []
            for rows, entry, payload in pool.imap_unordered(run_task, plan):
                task_rows.append(rows)
                task_stats.append(entry)
                if payload is not None:
                    task_traces.append(payload)
            pool.close()
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()
        return task_rows, task_stats, task_traces
    except (ImportError, OSError, PermissionError):
        # No usable multiprocessing primitives (e.g. sandboxed /dev/shm);
        # the serial path computes the identical answer.
        return None


def _run_serial(
    collection: RecordCollection,
    rid_shards: Sequence[Sequence[int]],
    k: int,
    sim: SimilarityFunction,
    base: TopkOptions,
    plan: Sequence[Tuple[int, int]],
    seed_bound: float,
    trace: bool = False,
    use_shm: bool = False,
    tracer: Optional["Tracer"] = None,
) -> _TaskOutcome:
    """Execute *plan* in-process, sharing the bound across tasks.

    With *use_shm* the run still goes through a full shared-memory
    round-trip — create, attach, join over the attached views, detach,
    destroy — which is how the differential fuzzer exercises the data
    plane without paying pool start-up per case.
    """
    segment: Optional[ShmDescriptor] = None
    source: Union[RecordCollection, ShmDescriptor] = collection
    if use_shm:
        segment = _build_segment(collection, base, tracer)
        if segment is not None:
            source = segment
    try:
        attach_span: ContextManager[Any] = (
            tracer.span("shm_attach")
            if tracer is not None and segment is not None
            else nullcontext()
        )
        with attach_span:
            initialize_worker(
                source,
                rid_shards,
                k,
                sim,
                base,
                LocalSimilarityBound(seed_bound),
                trace,
            )
        task_rows: List[List[TaskRow]] = []
        task_stats: List[TopkStats] = []
        task_traces: List[Dict[str, Any]] = []
        for task in plan:
            rows, entry, payload = run_task(task)
            task_rows.append(rows)
            task_stats.append(entry)
            if payload is not None:
                task_traces.append(payload)
        return task_rows, task_stats, task_traces
    finally:
        if segment is not None:
            teardown_worker()
            destroy_segment(segment)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (copy-on-write collection); fall back to default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
