"""Sharded multiprocessing backend for the top-k similarity self-join.

The sequential ``topk-join`` maintains one global event heap and one
inverted index; this package decomposes the same computation into
``m(m+1)/2`` independent shard sub-joins coordinated only through a
shared, monotonically rising lower bound on the global ``s_k`` — exact
results, near-linear scaling on multi-core machines.

Entry point: :func:`parallel_topk_join`.  The building blocks
(partitioner, shared bound, per-task worker, merger) are exported for
tests and for composing custom schedulers.
"""

from .bound import LocalSimilarityBound, SharedSimilarityBound
from .join import parallel_topk_join
from .merger import merge_task_results
from .partitioner import shard_collection, subproblem, task_plan
from .worker import initialize_worker, run_task

__all__ = [
    "LocalSimilarityBound",
    "SharedSimilarityBound",
    "parallel_topk_join",
    "merge_task_results",
    "shard_collection",
    "subproblem",
    "task_plan",
    "initialize_worker",
    "run_task",
]
