"""Sharded multiprocessing backend for the top-k similarity self-join.

The sequential ``topk-join`` maintains one global event heap and one
inverted index; this package decomposes the same computation into
``m(m+1)/2`` independent shard sub-joins coordinated only through a
shared, monotonically rising lower bound on the global ``s_k`` — exact
results, near-linear scaling on multi-core machines.

Entry point: :func:`parallel_topk_join`.  The building blocks
(partitioner, shared bound, shared-memory data plane, per-task worker,
merger) are exported for tests and for composing custom schedulers.
"""

from .bound import LocalSimilarityBound, SharedSimilarityBound
from .join import parallel_topk_join
from .merger import merge_task_results
from .partitioner import shard_collection, shard_ranges, subproblem, task_plan
from .shm import (
    AttachedSegment,
    ShmAttachError,
    ShmDescriptor,
    ShmError,
    attach_collection,
    create_segment,
    destroy_segment,
    leaked_segments,
    shm_usable,
)
from .worker import initialize_worker, run_task, teardown_worker

__all__ = [
    "LocalSimilarityBound",
    "SharedSimilarityBound",
    "parallel_topk_join",
    "merge_task_results",
    "shard_collection",
    "shard_ranges",
    "subproblem",
    "task_plan",
    "initialize_worker",
    "run_task",
    "teardown_worker",
    "AttachedSegment",
    "ShmAttachError",
    "ShmDescriptor",
    "ShmError",
    "attach_collection",
    "create_segment",
    "destroy_segment",
    "leaked_segments",
    "shm_usable",
]
