"""Shared, monotonically rising lower bound on the global ``s_k``.

The one piece of state the sharded sub-joins exchange (cf. SWOOP,
arXiv:1711.02476): whenever a task's top-k buffer is full, its local
``s_k`` is the similarity of *k* real pairs of the global collection and
therefore a lower bound on the global ``s_k``.  Publishing the maximum of
those local bounds lets every other task drive its pruning rules — event
termination, indexing bound, accessing bound, candidate filters — with a
threshold that keeps rising as *any* worker makes progress, while the
paper's Lemmas 2-5 stay valid because they hold for any lower bound on
the true ``s_k``.

Both classes implement the tiny protocol ``TopkOptions.bound_provider``
expects: ``offer(value)`` publishes a local bound, ``refresh()`` syncs
with the shared state and returns the latest global bound, ``get()``
returns the last synced value without touching shared state.

The shared variant is backed by a *pair* of cells: a ``Value('d')``
holding the bound itself and a ``Value('q')`` **generation counter**
bumped under its own lock on every publication.  Readers poll the
generation — one aligned shared-memory load, no lock — and only pay the
synchronized value read when it changed, which is what lets the event
loop in :mod:`repro.core.topk_join` check for foreign bound improvements
on *every* iteration instead of once per ``refresh()`` polling cycle.
Unlocked reads are safe by monotonicity: both cells only rise, a stale
value can only make pruning weaker, and the read ordering in
``refresh()`` guarantees a publication is never permanently missed.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.sanitizer import Sanitizer

__all__ = ["LocalSimilarityBound", "SharedSimilarityBound"]


def _sanitizer() -> "Optional[Sanitizer]":
    """The armed runtime sanitizer, or ``None`` without importing it.

    The environment check is the entire cost on the (default) disabled
    path; the analysis package is only imported once ``REPRO_SANITIZE``
    arms the sanitizer.
    """
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        return None
    from ..analysis.sanitizer import active

    return active()


@contextmanager
def _tracked(lock: Any, key: str) -> Iterator[None]:
    """Hold *lock*, reporting acquisition order to the sanitizer as *key*."""
    sanitizer = _sanitizer()
    if sanitizer is not None:
        sanitizer.on_acquire(key)
    try:
        with lock:
            yield
    finally:
        if sanitizer is not None:
            sanitizer.on_release(key)


class LocalSimilarityBound:
    """In-process bound for serial task execution (and tests).

    Running the shard tasks one after another in a single process still
    benefits from the bound: pairs found by an early task raise the
    threshold every later task starts from.
    """

    def __init__(self, floor: float = 0.0) -> None:
        self._value = floor

    def get(self) -> float:
        return self._value

    def refresh(self) -> float:
        return self._value

    def offer(self, candidate: float) -> None:
        if candidate > self._value:
            self._value = candidate


class SharedSimilarityBound:
    """Cross-process bound backed by shared ``multiprocessing`` cells.

    Each worker process wraps the inherited raw cell pair in its own
    instance; ``refresh()`` is generation-gated (no lock, no shared
    write unless something actually changed) and ``offer()`` takes the
    locks only when this process beat its last published bound.  Both
    directions are monotone, so a stale read can only make pruning
    weaker — never incorrect.
    """

    def __init__(
        self,
        cells: Optional[Tuple[Any, Any]] = None,
        floor: float = 0.0,
    ) -> None:
        if cells is None:
            cells = (
                multiprocessing.Value("d", floor),
                multiprocessing.Value("q", 0),
            )
        self._value, self._generation = cells
        self._cached = floor
        self._published = floor
        # Generation this process last synchronized at; -1 forces the
        # first refresh() to read the parent's seed bound.
        self._seen = -1

    @classmethod
    def for_context(cls, context: Any, floor: float = 0.0) -> "SharedSimilarityBound":
        """A fresh bound whose cells come from *context* (the pool parent)."""
        return cls((context.Value("d", floor), context.Value("q", 0)), floor=floor)

    @property
    def raw(self) -> Tuple[Any, Any]:
        """The underlying shared cells, for passing to worker initargs."""
        return (self._value, self._generation)

    @property
    def generation(self) -> Any:
        """The shared generation cell, for the event loop's inline check.

        A rising ``generation.value`` means some cooperating worker
        published a better bound since this process last synchronized;
        the read is one aligned 64-bit load, cheap enough to perform on
        every event-loop iteration.
        """
        return self._generation

    def get(self) -> float:
        return self._cached

    def refresh(self) -> float:
        # Snapshot the generation *before* reading the value: a
        # publication racing in between leaves us with a newer value
        # under an older snapshot, so the next refresh simply re-reads.
        # The opposite order could latch a new generation against a
        # stale value and skip a published bound for good.
        latest_generation = self._generation.value
        if latest_generation == self._seen:
            return self._cached
        latest = self._value.value
        self._seen = latest_generation
        if latest > self._cached:
            self._cached = latest
        return self._cached

    def offer(self, candidate: float) -> None:
        if candidate <= self._published:
            return
        self._published = candidate
        with _tracked(self._value.get_lock(), "bound.value"):
            if candidate > self._value.value:
                self._value.value = candidate
                with _tracked(self._generation.get_lock(), "bound.generation"):
                    self._generation.value += 1
        if candidate > self._cached:
            self._cached = candidate
