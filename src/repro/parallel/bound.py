"""Shared, monotonically rising lower bound on the global ``s_k``.

The one piece of state the sharded sub-joins exchange (cf. SWOOP,
arXiv:1711.02476): whenever a task's top-k buffer is full, its local
``s_k`` is the similarity of *k* real pairs of the global collection and
therefore a lower bound on the global ``s_k``.  Publishing the maximum of
those local bounds lets every other task drive its pruning rules — event
termination, indexing bound, accessing bound, candidate filters — with a
threshold that keeps rising as *any* worker makes progress, while the
paper's Lemmas 2-5 stay valid because they hold for any lower bound on
the true ``s_k``.

Both classes implement the tiny protocol ``TopkOptions.bound_provider``
expects: ``offer(value)`` publishes a local bound, ``refresh()`` syncs
with the shared state and returns the latest global bound, ``get()``
returns the last synced value without touching shared state.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

__all__ = ["LocalSimilarityBound", "SharedSimilarityBound"]


class LocalSimilarityBound:
    """In-process bound for serial task execution (and tests).

    Running the shard tasks one after another in a single process still
    benefits from the bound: pairs found by an early task raise the
    threshold every later task starts from.
    """

    def __init__(self, floor: float = 0.0) -> None:
        self._value = floor

    def get(self) -> float:
        return self._value

    def refresh(self) -> float:
        return self._value

    def offer(self, candidate: float) -> None:
        if candidate > self._value:
            self._value = candidate


class SharedSimilarityBound:
    """Cross-process bound backed by a ``multiprocessing.Value('d')``.

    Each worker process wraps the inherited raw value in its own instance;
    ``refresh()`` performs one synchronized read (called once per event, so
    lock traffic stays far off the hot posting-scan path) and ``offer()``
    takes the lock only when this process actually beat its last published
    bound.  Both directions are monotone, so a stale read can only make
    pruning weaker — never incorrect.
    """

    def __init__(self, value: Optional[object] = None, floor: float = 0.0) -> None:
        if value is None:
            value = multiprocessing.Value("d", floor)
        self._value = value
        self._cached = floor
        self._published = floor

    @property
    def raw(self) -> object:
        """The underlying shared value, for passing to worker initargs."""
        return self._value

    def get(self) -> float:
        return self._cached

    def refresh(self) -> float:
        latest = self._value.value
        if latest > self._cached:
            self._cached = latest
        return self._cached

    def offer(self, candidate: float) -> None:
        if candidate <= self._published:
            return
        self._published = candidate
        with self._value.get_lock():
            if candidate > self._value.value:
                self._value.value = candidate
        if candidate > self._cached:
            self._cached = candidate
