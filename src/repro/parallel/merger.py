"""Folding per-task top-k buffers into the exact global top-k.

Why the union of per-task top-k results contains a valid global top-k:

* every record pair of the collection belongs to exactly one task
  (:mod:`repro.parallel.partitioner`), so each global top-k pair *p* is
  in some task's pair space;
* within that task at most ``k - 1`` pairs beat *p* (they would beat it
  globally too), so *p* survives in that task's buffer — unless it was
  pruned against the shared bound ``B <= global s_k``, which can only
  happen to pairs with ``sim <= B``, i.e. interchangeable ties of the
  global k-th result.  In that case the task that *published* ``B`` holds
  k pairs at or above ``B`` in its own buffer, so the union still
  contains k pairs at or above the true ``s_k``.

Hence taking the k best rows of the union reproduces the sequential
answer's similarity multiset exactly, with ties at the k-th value broken
deterministically by ``JoinResult.sort_key`` (similarity desc, then rid
pair asc) rather than by event processing order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Tuple

from ..result import JoinResult, sort_results
from .worker import TaskRow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.tracer import Tracer

__all__ = ["absorb_task_traces", "merge_task_results"]


def merge_task_results(task_rows: Iterable[List[TaskRow]], k: int) -> List[JoinResult]:
    """The k best rows across all tasks, deduplicated and sorted.

    Task pair spaces are disjoint by construction, so deduplication is
    defensive (it matters only if a caller feeds overlapping shard
    definitions); when a pair does repeat, its similarity values are
    identical because every task verifies exactly.
    """
    best: Dict[Tuple[int, int], float] = {}
    for rows in task_rows:
        for x, y, value in rows:
            pair = (x, y)
            previous = best.get(pair)
            if previous is None or value > previous:
                best[pair] = value
    merged = sort_results(JoinResult(x, y, value) for (x, y), value in best.items())
    return merged[:k]


def absorb_task_traces(tracer: "Tracer", payloads: Iterable[Dict[str, Any]]) -> None:
    """Fold worker-exported trace payloads into the parent tracer.

    The observability counterpart of :func:`merge_task_results`, applied
    alongside ``TopkStats.merge_from``: each task's span subtree lands
    under a ``task-N`` container span, its micro-phase timers and
    profiler samples add up, and its counters / gauges / histograms
    merge by their declared semantics.  Derived gauges (ratios do not
    merge) are re-computed once over the merged counters at the end.
    """
    for number, payload in enumerate(payloads, start=1):
        tracer.absorb(payload, prefix="task-%d" % number)
    tracer.metrics.finalize_derived()
