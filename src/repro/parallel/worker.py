"""Per-task execution for the sharded parallel top-k join.

The module-level state/function pair exists so :mod:`multiprocessing`
pools can run tasks: ``initialize_worker`` is the pool initializer (the
collection — or its shared-memory descriptor — shard table and options
are shipped once per worker process, not once per task) and ``run_task``
is the mapped function.  The serial fallback calls exactly the same pair
in-process, so both execution paths share one code path — and the
in-process path keeps the worker fully visible to coverage tooling.

On the zero-copy data plane (:mod:`repro.parallel.shm`) the initializer
receives a :class:`~repro.parallel.shm.ShmDescriptor` instead of the
collection and attaches read-only views over the shared segment; pool
workers keep the attached handle until process exit, while the serial
round-trip detaches deterministically via :func:`teardown_worker`.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union, cast

from ..core.metrics import TopkStats
from ..core.topk_join import TopkOptions, topk_join_iter
from ..data.records import RecordCollection
from ..obs.tracer import Tracer
from ..similarity.functions import SimilarityFunction
from .bound import SharedSimilarityBound
from .partitioner import subproblem
from .shm import AttachedSegment, ShmDescriptor, attach_collection

__all__ = ["initialize_worker", "run_task", "teardown_worker"]

#: One joined pair in global-rid terms: ``(x, y, similarity)``.
TaskRow = Tuple[int, int, float]

#: Exported trace payload of one task (``None`` when tracing is off).
TaskTrace = Optional[Dict[str, Any]]

_STATE: Dict[str, object] = {}


def initialize_worker(
    source: Union[RecordCollection, ShmDescriptor],
    shards: Sequence[Sequence[int]],
    k: int,
    similarity: SimilarityFunction,
    options: TopkOptions,
    bound: object,
    trace: bool = False,
) -> None:
    """Install the task context shared by every ``run_task`` call.

    *source* is either the record collection itself (fork inheritance /
    serial execution) or a :class:`~repro.parallel.shm.ShmDescriptor`,
    in which case this worker attaches zero-copy token views over the
    shared segment instead of holding its own copy of the records.

    *bound* is either a provider object (serial in-process execution) or
    the raw shared cells inherited from the parent, which each worker
    process wraps in its own :class:`SharedSimilarityBound`.  *trace*
    asks each task to build a worker-local :class:`Tracer` and return
    its exported payload — the parent's tracer never crosses the process
    boundary (it holds a lock), so tracing travels as this bool and
    comes back by value.
    """
    if not hasattr(bound, "offer"):
        bound = SharedSimilarityBound(cast("Tuple[Any, Any]", bound))
    attach_seconds = 0.0
    segment: Optional[AttachedSegment] = None
    if isinstance(source, ShmDescriptor):
        started = time.perf_counter()
        segment = attach_collection(source)
        attach_seconds = time.perf_counter() - started
        collection = segment.collection
    else:
        collection = source
    if options.accel != "off":
        # Build (attached: decode) the collection's bit signatures once
        # per worker at the configured width; every task's subproblem
        # then slices them instead of re-hashing.
        collection.signatures_at(options.sig_bits)
    _STATE["collection"] = collection
    _STATE["segment"] = segment
    _STATE["shards"] = shards
    _STATE["k"] = k
    _STATE["similarity"] = similarity
    _STATE["options"] = options
    _STATE["bound"] = bound
    _STATE["trace"] = trace
    _STATE["attach_seconds"] = attach_seconds


def teardown_worker() -> None:
    """Drop the installed context and detach any attached segment.

    Pool workers never call this — they exit with the pool and the OS
    unmaps their views.  The serial shared-memory round-trip must detach
    deterministically, and ordering matters: the context is cleared
    first (token views die with the collection), then the segment handle
    can close cleanly.
    """
    segment = _STATE.pop("segment", None)
    _STATE.clear()
    if segment is not None:
        cast(AttachedSegment, segment).detach()


def run_task(task: Tuple[int, int]) -> Tuple[List[TaskRow], TopkStats, TaskTrace]:
    """Run one sub-join task ``(i, j)`` against the installed context.

    Diagonal tasks self-join shard *i*; cross tasks run the bipartite
    join ``Ri × Rj``.  Results come back as global-rid rows plus the
    task's :class:`TopkStats` for aggregation and — when the worker was
    initialized with ``trace=True`` — the task's exported trace payload
    for :func:`repro.parallel.merger.absorb_task_traces`.
    """
    i, j = task
    collection = cast(RecordCollection, _STATE["collection"])
    shards = cast("Sequence[Sequence[int]]", _STATE["shards"])
    if i == j:
        sub, sides = subproblem(collection, shards[i])
    else:
        sub, sides = subproblem(collection, shards[i], shards[j])
    base = cast(TopkOptions, _STATE["options"])
    tracer = Tracer() if _STATE.get("trace") else None
    if tracer is not None:
        attach_seconds = cast(float, _STATE.get("attach_seconds", 0.0))
        if attach_seconds > 0.0:
            # mode="max" keeps the per-worker gauge idempotent across
            # this worker's tasks when the parent absorbs the payloads.
            tracer.metrics.gauge(
                "repro_shm_attach_seconds",
                "Worker-side shared-memory attach and decode time.",
                mode="max",
            ).set(attach_seconds)
    options = replace(
        base,
        bound_provider=_STATE["bound"],
        bipartite_sides=sides,
        trace=tracer,
    )
    stats = TopkStats()
    rows: List[TaskRow] = []
    for result in topk_join_iter(
        sub,
        cast(int, _STATE["k"]),
        similarity=cast(SimilarityFunction, _STATE["similarity"]),
        options=options,
        stats=stats,
    ):
        x = sub[result.x].source_id
        y = sub[result.y].source_id
        if x > y:
            x, y = y, x
        rows.append((x, y, result.similarity))
    payload = tracer.export() if tracer is not None else None
    return rows, stats, payload
