"""Naive top-k join: score every pair, keep the best *k*.

The "n(n-1)/2 similarity computations" strawman of Section I and the
correctness oracle every optimized algorithm is tested against.  The
implementation lives in :mod:`repro.oracle.reference` together with the
rest of the correctness harness; this module re-exports it under its
historical name.
"""

from __future__ import annotations

from typing import List, Optional

from ..data.records import RecordCollection
from ..oracle.reference import naive_topk as _reference_naive_topk
from ..result import JoinResult
from ..similarity.functions import SimilarityFunction

__all__ = ["naive_topk"]


def naive_topk(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
) -> List[JoinResult]:
    """The exact top-k pairs by exhaustive scoring (quadratic — tests only)."""
    return _reference_naive_topk(collection, k, similarity=similarity)
