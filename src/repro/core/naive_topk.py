"""Naive top-k join: score every pair, keep the best *k*.

The "n(n-1)/2 similarity computations" strawman of Section I and the
correctness oracle every optimized algorithm is tested against.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..data.records import RecordCollection
from ..result import JoinResult
from ..similarity.functions import Jaccard, SimilarityFunction

__all__ = ["naive_topk"]


def naive_topk(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
) -> List[JoinResult]:
    """The exact top-k pairs by exhaustive scoring (quadratic — tests only)."""
    sim = similarity or Jaccard()
    records = collection.records
    heap: List[JoinResult] = []
    counter = 0
    for a in range(len(records)):
        x = records[a]
        for b in range(a + 1, len(records)):
            y = records[b]
            value = sim.similarity(x.tokens, y.tokens)
            counter += 1
            item = (value, counter, JoinResult(x.rid, y.rid, value))
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif value > heap[0][0]:
                heapq.heappushpop(heap, item)
    ordered = sorted(heap, key=lambda item: (-item[0], item[2].x, item[2].y))
    return [item[2] for item in ordered]
