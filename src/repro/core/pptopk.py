"""``pptopk`` — the baseline algorithm of Section VII-A.

Runs a state-of-the-art threshold similarity join (ppjoin+) repeatedly with
a decreasing threshold schedule until at least *k* pairs are found, then
keeps the best *k*.  The paper's schedule decreases at an equal rate:
``0.95 - 0.05·i`` for Jaccard and ``0.975 - 0.025·i`` for cosine (round
*i* starting at 0).

Each round re-runs the join from scratch — exactly the redundant work the
incremental ``topk-join`` is designed to avoid.  Per-round result sizes are
recorded in :class:`repro.core.metrics.PptopkStats` (they are Table II of
the paper).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..data.records import RecordCollection
from ..joins.filters import DEFAULT_MAXDEPTH
from ..joins.ppjoin import ppjoin_plus
from ..result import JoinResult, sort_results
from ..similarity.functions import Cosine, Jaccard, SimilarityFunction
from .metrics import JoinStats, PptopkStats

__all__ = [
    "pptopk_join",
    "default_threshold_schedule",
    "geometric_threshold_schedule",
]

#: Thresholds never drop below this floor; prefix filtering is undefined at
#: t <= 0 and the last resort is an explicit full join at the floor.
_MIN_THRESHOLD = 0.05


def default_threshold_schedule(
    similarity: SimilarityFunction,
) -> Iterator[float]:
    """The paper's equal-rate schedules (Section VII-A).

    Jaccard: 0.95, 0.90, 0.85, …; cosine: 0.975, 0.950, 0.925, ….  Other
    functions reuse the Jaccard schedule.
    """
    if isinstance(similarity, Cosine):
        start, step = 0.975, 0.025
    else:
        start, step = 0.95, 0.05
    i = 0
    while True:
        threshold = start - step * i
        if threshold < _MIN_THRESHOLD:
            yield _MIN_THRESHOLD
            return
        yield threshold
        i += 1


def geometric_threshold_schedule(
    start: float = 0.95, ratio: float = 0.8
) -> Iterator[float]:
    """A geometric guessing schedule: ``start, start·ratio, start·ratio², …``.

    Section VII-D observes that `pptopk`'s cost is hostage to how the
    guessed thresholds straddle the unknown final ``s_k``: a conservative
    guess (small *ratio*) overshoots and "may produce too many candidate
    pairs and join results", an aggressive one (*ratio* near 1) pays for
    extra rounds.  This schedule exposes that trade-off for the schedule
    ablation benchmark.
    """
    if not 0.0 < ratio < 1.0:
        raise ValueError("ratio must be in (0, 1), got %r" % ratio)
    threshold = start
    while threshold > _MIN_THRESHOLD:
        yield threshold
        threshold *= ratio
    yield _MIN_THRESHOLD


def pptopk_join(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    thresholds: Optional[List[float]] = None,
    maxdepth: int = DEFAULT_MAXDEPTH,
    stats: Optional[PptopkStats] = None,
) -> List[JoinResult]:
    """Top-k join by repeated thresholded ppjoin+ (the paper's baseline).

    *thresholds* overrides the built-in schedule (values must decrease).
    Returns the best *k* pairs found; if even the schedule's floor yields
    fewer than *k* pairs, fewer results are returned (unlike
    :func:`repro.core.topk_join.topk_join`, no zero padding — the baseline
    has no way to enumerate token-disjoint pairs).
    """
    sim = similarity or Jaccard()
    schedule = iter(thresholds) if thresholds is not None else (
        default_threshold_schedule(sim)
    )

    results: List[JoinResult] = []
    for threshold in schedule:
        round_stats = JoinStats()
        results = ppjoin_plus(
            collection, threshold, similarity=sim, maxdepth=maxdepth,
            stats=round_stats,
        )
        if stats is not None:
            stats.rounds += 1
            stats.thresholds.append(threshold)
            stats.round_results.append(len(results))
            stats.candidates += round_stats.candidates
            stats.verifications += round_stats.verifications
        if len(results) >= k:
            break
    return sort_results(results)[:k]
