"""``topk-join`` — the paper's core contribution (Algorithms 3–10).

An event-driven, incremental prefix-filtering join that returns the *k*
most similar record pairs without a similarity threshold:

1. every record starts with a 1-token prefix and a probing upper bound of
   ``sim.max``; prefix events live in a max-heap (:mod:`.events`);
2. popping an event ``<x, p, s_p>`` probes the inverted list of token
   ``x[p]``, pairing *x* with earlier-probed records; survivors of size /
   positional / suffix filtering are verified exactly once
   (:mod:`.verification`) and offered to the top-k buffer (:mod:`.results`);
3. *x* is indexed at position *p* unless Lemma 4's indexing bound shows no
   future probe of that posting can beat ``s_k`` (Algorithms 7–8), in which
   case indexing stops for *x* forever;
4. while scanning a posting list, Algorithm 9/10's accessing bound
   truncates the list permanently as soon as it drops to ``s_k``;
5. the loop stops when the best remaining event bound cannot beat ``s_k``.

Results are emitted progressively: a temporary result whose similarity is
at least the best remaining event bound is final (Section VII-F) and is
yielded immediately.

Every optimisation can be toggled through :class:`TopkOptions` — the
paper's ablations ``record-all`` (Fig. 3a) and ``w/o-index-opt``
(Fig. 3b–c) are ``verification_mode="all"`` and
``index_optimization=False`` respectively.

Two further options generalize the join beyond the paper's single-process
self-join, and power :mod:`repro.parallel`:

* ``bound_provider`` — a cooperative *external lower bound* on the global
  ``s_k``.  Any full top-k buffer of any concurrently running sub-join
  holds *k* real pairs of the global collection, so its local ``s_k``
  never exceeds the global one; the paper's pruning rules (event
  termination, indexing bound, accessing bound, candidate filters) stay
  conservative when driven by ``max(local s_k, external bound)`` because
  Lemmas 2–5 hold for *any* lower bound on the true ``s_k``.
* ``bipartite_sides`` — per-record side labels turning the self-join into
  an exact R×S join: each side keeps its own inverted index, records probe
  only the opposite side's index, and therefore only cross pairs are ever
  generated.  No bound depends on which side a record belongs to, so the
  event machinery runs unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..accel.kernel import make_kernel
from ..data.records import RecordCollection, signature_width
from ..index.inverted import BoundedInvertedIndex
from ..joins.filters import DEFAULT_MAXDEPTH, suffix_admits
from ..oracle.invariants import CheckHooks, invariant_checks_enabled
from ..result import JoinResult
from ..similarity.functions import Jaccard, SimilarityFunction
from ..similarity.overlap import overlap_with_common_positions
from .events import EventQueue
from .metrics import EmitEvent, TopkStats
from .results import TopKBuffer
from .seeding import seed_temporary_results
from .verification import VerificationRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.tracer import Tracer

__all__ = ["TopkOptions", "topk_join", "topk_join_iter"]


@dataclass
class TopkOptions:
    """Feature switches for :func:`topk_join`.

    The defaults correspond to the fully optimized ``topk-join`` of the
    paper's experiments.
    """

    #: Group prefix events by ``(record size, prefix length)`` (Section V-C).
    compress_events: bool = True
    #: ``"optimized"`` (Algorithm 6), ``"all"`` (record-all), or ``"off"``.
    verification_mode: str = "optimized"
    #: Apply Lemma 4's indexing bound and the stop-indexing flag (Alg. 7–8).
    index_optimization: bool = True
    #: Truncate posting lists via the accessing bound (Alg. 9–10).
    access_optimization: bool = True
    #: Positional filtering (Section V-A).
    positional_filter: bool = True
    #: Suffix filtering (Section V-A).
    suffix_filter: bool = True
    #: Suffix-filter recursion depth (2 for word tokens, 4 for q-grams).
    maxdepth: int = DEFAULT_MAXDEPTH
    #: Seed ``T`` from a medium-frequency token (Section V-B).
    seed_results: bool = True
    #: Cooperative lower bound on the *global* ``s_k`` for multi-task runs
    #: (see :mod:`repro.parallel`).  Any object with ``refresh() -> float``
    #: (sync, then return the latest external bound) and ``offer(value)``
    #: (publish this run's local ``s_k``); polled once per event.  A
    #: provider may also expose ``generation`` — a shared counter cell
    #: bumped on every cross-process publication — in which case the
    #: event loop detects foreign improvements every iteration from one
    #: unlocked load and refreshes only when the counter moved.
    bound_provider: Optional[Any] = None
    #: Per-record side labels (0/1) turning the join into an exact R×S
    #: join over cross pairs only.  ``bipartite_sides[rid]`` must be
    #: indexable for every record id of the joined collection.
    bipartite_sides: Optional[Sequence[int]] = None
    #: Hot-path acceleration (see :mod:`repro.accel.kernel`): ``"on"``
    #: picks the NumPy batch kernel when NumPy is importable and the
    #: pure-Python kernel otherwise; ``"native"`` escalates to the
    #: numba-compiled kernel when numba is importable and otherwise
    #: falls down the same ladder (NumPy, then pure Python — never an
    #: error, the compiled path is an opt-in accelerator, not a
    #: dependency); ``"python"`` / ``"numpy"`` force one implementation;
    #: ``"off"`` runs the historical scan loop (kept for ablation and as
    #: the benchmark-gate baseline).  All modes are exact — the
    #: differential fuzzer cross-checks them against the oracle.
    accel: str = "on"
    #: Width of the bitmap-filter signatures in bits (any value in
    #: :data:`repro.data.records.SUPPORTED_SIGNATURE_BITS`).  Wider
    #: signatures collide less — higher prune rates on token-rich
    #: records — at the cost of more 64-bit words per XOR+popcount;
    #: 128 is the sweet spot for the paper's word-token workloads (see
    #: docs/PERFORMANCE.md for width-selection guidance).  Ignored with
    #: ``accel="off"`` *except* by result seeding, the streaming
    #: engine's arrival probe and the shared-memory data plane, which
    #: serialize signatures at exactly this width.
    sig_bits: int = 128
    #: Verify prefilter survivors in one vectorized pass over the flat
    #: token columns (the second-generation kernel's batch-verify layer)
    #: instead of the per-candidate Python suffix-filter + merge.  Only
    #: the NumPy/native kernels read it; ``False`` restores the
    #: first-generation sequential tail — kept reachable as the
    #: benchmark gate's comparison point and as a differential-fuzzer
    #: backend.
    batch_verify: bool = True
    #: Assert the paper's invariants at runtime (event order, ``s_k``
    #: monotonicity, verify-exactly-once, Lemma 1/4 reference bounds,
    #: emission guarantees) via :mod:`repro.oracle.invariants`.  Also
    #: enabled globally by exporting ``REPRO_CHECK=1``.  Zero-cost when
    #: off: the hot loops pay one ``is not None`` test per hook site.
    check_invariants: bool = False
    #: Observability hook (see :mod:`repro.obs`): a tracer collecting
    #: spans, metrics and profiler samples for this run.  ``None`` (the
    #: default) disables all instrumentation — the join then pays one
    #: ``is not None`` test per *phase* boundary, never per event.  A
    #: tracer holds a lock and must not cross process boundaries:
    #: :mod:`repro.parallel` strips it from the options it ships to
    #: workers and merges worker-local trace payloads at the parent.
    trace: Optional["Tracer"] = None
    #: Sliding-window extent for the streaming engine
    #: (:mod:`repro.stream`): the number of most-recent records kept
    #: live under the ``"count"`` policy, or the window width in stream
    #: time units under the ``"time"`` policy.  ``0`` means unbounded —
    #: records then expire only through explicit ``expire``/``advance``
    #: calls.  The batch join ignores it.
    window_size: int = 0
    #: Streaming window policy: ``"count"`` (the window holds the last
    #: ``window_size`` records; an arrival displaces the oldest) or
    #: ``"time"`` (a record expires once the stream clock has advanced
    #: ``window_size`` past its arrival).  The batch join ignores it.
    window_policy: str = "count"


def topk_join(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    options: Optional[TopkOptions] = None,
    stats: Optional[TopkStats] = None,
) -> List[JoinResult]:
    """The k most similar pairs of *collection*, best first.

    When the collection holds fewer than *k* pairs sharing any token, the
    remainder is padded with (similarity-0) pairs so exactly
    ``min(k, n·(n-1)/2)`` results are returned — matching what an oracle
    scoring all pairs would report.  (With ``bipartite_sides`` the pair
    space, and hence the padding, covers cross pairs only.)
    """
    opts = options or TopkOptions()
    results = list(
        topk_join_iter(
            collection, k, similarity=similarity, options=opts, stats=stats
        )
    )
    if len(results) < k:
        results.extend(
            _zero_fill(
                collection,
                k - len(results),
                results,
                sides=opts.bipartite_sides,
            )
        )
    return results


def topk_join_iter(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    options: Optional[TopkOptions] = None,
    stats: Optional[TopkStats] = None,
) -> Iterator[JoinResult]:
    """Progressive top-k join: yields each result as soon as it is *final*.

    A yielded pair is guaranteed to have similarity no smaller than every
    pair yielded later and every pair not yielded at all — the progressive
    guarantee of Section VII-F.  Only pairs actually sharing a token are
    yielded (no zero-similarity padding; see :func:`topk_join`).
    """
    opts = options or TopkOptions()
    tracer = opts.trace
    if tracer is None:
        yield from _topk_join_run(collection, k, similarity, opts, stats)
        return
    with tracer.span(
        "topk_join", k=k, records=len(collection), accel=opts.accel
    ):
        yield from _topk_join_run(
            collection, k, similarity, opts, stats, tracer
        )


def _topk_join_run(
    collection: RecordCollection,
    k: int,
    similarity: Optional[SimilarityFunction],
    opts: TopkOptions,
    stats: Optional[TopkStats],
    tracer: Optional["Tracer"] = None,
) -> Iterator[JoinResult]:
    """The join proper; see :func:`topk_join_iter` for the contract.

    *tracer* is ``opts.trace``, threaded through by the wrapper that
    opened the ``topk_join`` root span.  When set, the run is carved
    into ``seed`` / ``event_loop`` / ``drain`` child spans and finishes
    by publishing end-of-run gauges and absorbing *run_stats* into the
    tracer's metrics registry; when ``None``, the historical code paths
    run untouched.
    """
    sim = similarity or Jaccard()
    # Reject unsupported widths up front, in every accel mode: sig_bits
    # configures seeding/kernel/shm alike, so a typo'd width must fail
    # loudly here rather than silently join at the default.
    signature_width(opts.sig_bits)
    run_stats = stats if stats is not None else TopkStats()
    span = tracer.span if tracer is not None else _null_span
    start = time.perf_counter()

    buffer = TopKBuffer(k)
    registry = VerificationRegistry(sim, mode=opts.verification_mode)
    sides = opts.bipartite_sides
    if sides is None:
        indexes = (BoundedInvertedIndex(),)
    else:
        # Bipartite mode: one index per side; records probe the opposite
        # side's index, so only cross pairs are ever generated.
        indexes = (BoundedInvertedIndex(), BoundedInvertedIndex())
    queue = EventQueue(collection, sim, compressed=opts.compress_events)
    stop_indexing = bytearray(len(collection))
    provider = opts.bound_provider
    external = 0.0
    checks = None
    if invariant_checks_enabled(opts):
        checks = CheckHooks(
            sim,
            k,
            collection=collection,
            sides=sides,
            dedup_active=opts.verification_mode != "off",
        )

    # The verified-pair set and the scan kernel are per-run state: both are
    # captured once here instead of once per event (the registry's set
    # object is stable for the lifetime of the run).
    seen_pairs = registry.fast_set()
    kernel = make_kernel(
        collection, sim, opts, buffer, registry, seen_pairs, run_stats,
        checks,
    )

    with span("seed"):
        if opts.seed_results:
            run_stats.verifications += seed_temporary_results(
                collection, sim, buffer, registry, sides=sides,
                checks=checks, stats=run_stats, bitmap=kernel is not None,
                sig_bits=opts.sig_bits,
            )
        if provider is not None:
            if buffer.full:
                provider.offer(buffer.s_k)
            external = provider.refresh()

    emitted = 0

    # Shared-bound fast path (see repro.parallel.bound): providers backed
    # by shared-memory cells expose a generation counter bumped on every
    # publication.  One aligned load per iteration detects foreign bound
    # improvements immediately, without paying a refresh() per event;
    # plain providers (no such attribute) keep the per-event polling
    # below.  Reading the generation before refresh() can at worst pair a
    # new generation with a not-yet-visible value — the provider re-syncs
    # on the next bump, and a stale bound only weakens pruning.
    generation = getattr(provider, "generation", None)
    seen_generation = generation.value if generation is not None else 0

    with span("event_loop"):
        while queue:
            if generation is not None and generation.value != seen_generation:
                seen_generation = generation.value
                refreshed = provider.refresh()
                if refreshed > external:
                    external = refreshed
            bound, prefix, rids = queue.pop()
            run_stats.events += 1
            if checks is not None:
                checks.on_pop(
                    bound, prefix, len(collection[rids[0]]), buffer.s_k
                )
            if buffer.full and bound <= buffer.s_k:
                break
            if external > 0.0 and bound <= external:
                # No remaining event of this sub-join can beat the global
                # s_k lower bound: everything still findable is at best an
                # interchangeable tie of the global k-th result.
                break
            size = len(collection[rids[0]])
            for rid in rids:
                if sides is None:
                    probe_index = insert_index = indexes[0]
                else:
                    side = sides[rid]
                    probe_index = indexes[1 - side]
                    insert_index = indexes[side]
                _process_event(
                    collection,
                    rid,
                    prefix,
                    bound,
                    sim,
                    opts,
                    buffer,
                    registry,
                    probe_index,
                    insert_index,
                    stop_indexing,
                    external,
                    run_stats,
                    checks,
                    seen_pairs,
                    kernel,
                )
            cutoff = buffer.s_k
            if external > cutoff:
                cutoff = external
            queue.push_next(size, prefix, rids, cutoff=cutoff)
            if provider is not None:
                if buffer.full:
                    provider.offer(buffer.s_k)
                external = provider.refresh()

            remaining = queue.peek_bound()
            if remaining is None:
                break
            for pair, value in buffer.pop_emittable(remaining):
                emitted += 1
                if checks is not None:
                    checks.on_emit(pair, value, remaining, progressive=True)
                run_stats.emits.append(
                    EmitEvent(
                        index=emitted,
                        similarity=value,
                        upper_bound=remaining,
                        s_k=buffer.s_k,
                        elapsed=time.perf_counter() - start,
                    )
                )
                yield JoinResult(pair[0], pair[1], value)

    with span("drain"):
        final_bound = queue.peek_bound() or 0.0
        for pair, value in buffer.drain():
            emitted += 1
            if checks is not None:
                checks.on_emit(pair, value, final_bound, progressive=False)
            run_stats.emits.append(
                EmitEvent(
                    index=emitted,
                    similarity=value,
                    upper_bound=final_bound,
                    s_k=buffer.s_k,
                    elapsed=time.perf_counter() - start,
                )
            )
            yield JoinResult(pair[0], pair[1], value)

    run_stats.hash_entries_peak = registry.peak_entries
    run_stats.index_inserted = sum(ix.inserted for ix in indexes)
    run_stats.index_deleted = sum(ix.deleted for ix in indexes)
    run_stats.index_entries_peak = sum(ix.peak_entries for ix in indexes)

    if tracer is not None:
        _publish_run_metrics(
            tracer, run_stats, buffer, queue, indexes, registry,
            len(collection),
        )


class _NullSpan:
    """Inert context manager standing in for a span when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


def _null_span(name: str, **meta: Any) -> _NullSpan:
    """Span factory used in place of ``Tracer.span`` when tracing is off."""
    return _NULL_SPAN


def _publish_run_metrics(
    tracer: "Tracer",
    run_stats: TopkStats,
    buffer: TopKBuffer,
    queue: EventQueue,
    indexes: Tuple[BoundedInvertedIndex, ...],
    registry: VerificationRegistry,
    record_count: int,
) -> None:
    """End-of-run gauge snapshot plus counter/histogram absorption.

    Runs once per traced join, after the drain, so tracing adds nothing
    to the per-event path.  Gauge modes encode how cooperating tasks
    merge: footprints (heap / index / hash peaks) *sum*, matching
    ``TopkStats.merge_from``'s worst-case-simultaneous semantics, while
    ``s_k`` takes the *max* because every task's local bound is a lower
    bound on the global one.
    """
    metrics = tracer.metrics
    metrics.gauge(
        "repro_s_k", "k-th best similarity at the end of the run.",
        mode="max",
    ).set(buffer.s_k)
    metrics.gauge(
        "repro_heap_size", "Events left in the queue at termination.",
        mode="sum",
    ).set(float(len(queue)))
    metrics.gauge(
        "repro_heap_size_peak", "Peak number of events in the queue.",
        mode="sum",
    ).set(float(queue.peak_size))
    metrics.gauge(
        "repro_index_entries_live",
        "Inverted-index postings alive at termination.", mode="sum",
    ).set(float(sum(ix.inserted - ix.deleted for ix in indexes)))
    registry.publish_metrics(metrics)
    metrics.absorb_topk_stats(run_stats, record_count=record_count)


def _process_event(
    collection: RecordCollection,
    rid: int,
    prefix: int,
    bound: float,
    sim: SimilarityFunction,
    opts: TopkOptions,
    buffer: TopKBuffer,
    registry: VerificationRegistry,
    probe_index: BoundedInvertedIndex,
    insert_index: BoundedInvertedIndex,
    stop_indexing: bytearray,
    external: float,
    stats: TopkStats,
    checks: Optional[CheckHooks] = None,
    seen_pairs: Optional[Set[Tuple[int, int]]] = None,
    kernel: Optional[Any] = None,
) -> None:
    """Probe one record at one prefix position, then maybe index it.

    This is the innermost loop of the whole algorithm (one iteration per
    posting scanned).  With acceleration on (the default), the probe is
    delegated to a scan kernel from :mod:`repro.accel.kernel` — flat
    column access, the bitmap-signature prefilter and (with NumPy) batch
    vectorization.  With ``accel="off"`` the historical loop below runs;
    invariants are hoisted aggressively there: ``s_k``, fullness, the
    accessing-bound cutoff and the per-partner-size required overlap α
    are all locals refreshed only when the buffer changes.  Note the size
    filter *is* ``α <= min(|x|, |y|)`` (a partner too small/large to
    reach ``s_k`` has an impossible α), so one cached α serves the size,
    positional and suffix filters and the verification abort threshold.

    *external* is a lower bound on the global ``s_k`` of a cooperating
    multi-task run (0.0 when standalone); every threshold below uses
    ``max(buffer.s_k, external)``, which is conservative because each
    bound holds for any lower bound on the true ``s_k``.  In the
    standalone self-join *probe_index* and *insert_index* are the same
    object; in bipartite mode they belong to opposite sides.
    *seen_pairs* is the registry's live verified-pair set, captured once
    per run by the caller (``None`` when verification dedup is off).
    """
    x = collection[rid]
    size_x = len(x)
    tokens_x = x.tokens
    token = tokens_x[prefix - 1]

    if kernel is not None:
        kernel.scan(probe_index, token, rid, prefix, bound, external)
        _maybe_index(
            sim, opts, buffer, insert_index, stop_indexing, external,
            stats, checks, token, rid, prefix, bound, size_x,
        )
        return

    columns = probe_index.columns(token)
    if columns is not None and len(columns.rids) > 0:
        col_rids = columns.rids
        col_positions = columns.positions
        col_bounds = columns.bounds
        records = collection.records
        positional_on = opts.positional_filter
        suffix_on = opts.suffix_filter
        maxdepth = opts.maxdepth
        access_on = opts.access_optimization
        rest_x = size_x - prefix

        full = buffer.full
        s_k = buffer.s_k
        if external > 0.0:
            full = True
            if external > s_k:
                s_k = external
        alpha_by_size: dict = {}
        prefix_by_size: dict = {}
        access_cutoff = (
            sim.accessing_cutoff(bound, s_k) if (access_on and full) else -1.0
        )

        candidates = duplicates = size_pruned = 0
        positional_pruned = suffix_pruned = verifications = 0

        for position in range(len(col_rids)):
            bound_y = col_bounds[position]

            # Accessing-bound truncation (Algorithms 9-10): entries from
            # here on were inserted with even smaller bounds, and future
            # probes come with even smaller ``bound`` — the tail is dead
            # forever.  The cutoff is a conservative closed-form inverse;
            # the exact bound confirms before anything is deleted.
            if bound_y <= access_cutoff:
                if sim.accessing_upper_bound(bound, bound_y) <= s_k:
                    probe_index.truncate(token, position)
                    break

            candidates += 1
            rid_y = col_rids[position]
            pair = (rid, rid_y) if rid < rid_y else (rid_y, rid)
            if seen_pairs is not None and pair in seen_pairs:
                duplicates += 1
                continue

            size_y = len(records[rid_y].tokens)
            alpha = alpha_by_size.get(size_y)
            if alpha is None:
                alpha = (
                    sim.required_overlap(s_k, size_x, size_y) if full else 0
                )
                alpha_by_size[size_y] = alpha

            # Size filter: no partner of this size can reach s_k.
            if alpha > (size_x if size_x < size_y else size_y):
                size_pruned += 1
                continue
            if positional_on:
                rest_y = size_y - col_positions[position]
                best = 1 + (rest_x if rest_x < rest_y else rest_y)
                if best < alpha:
                    positional_pruned += 1
                    continue
            tokens_y = records[rid_y].tokens
            if suffix_on and alpha > 1:
                if not suffix_admits(
                    sim, s_k, tokens_x, tokens_y,
                    prefix, col_positions[position],
                    seen_overlap=1, maxdepth=maxdepth, alpha=alpha,
                ):
                    suffix_pruned += 1
                    continue

            # Let the merge cover the maximum prefixes before aborting so
            # the verification registry can decide re-generability exactly
            # (see OverlapProbe.scanned_x / scanned_y).
            scan_x = prefix_by_size.get(size_x)
            if scan_x is None:
                scan_x = sim.probing_prefix_length(size_x, s_k)
                prefix_by_size[size_x] = scan_x
            scan_y = prefix_by_size.get(size_y)
            if scan_y is None:
                scan_y = sim.probing_prefix_length(size_y, s_k)
                prefix_by_size[size_y] = scan_y

            probe = overlap_with_common_positions(
                tokens_x, tokens_y, alpha, scan_x, scan_y
            )
            verifications += 1
            if checks is not None:
                checks.on_verified(pair)
            if not probe.aborted:
                value = sim.from_overlap(probe.overlap, size_x, size_y)
                if buffer.add(pair, value):
                    new_s_k = buffer.s_k
                    if external > new_s_k:
                        new_s_k = external
                    # s_k is monotone non-decreasing, so "changed" is
                    # exactly "rose" — no float equality needed.
                    if new_s_k > s_k or not full:
                        s_k = new_s_k
                        full = buffer.full or external > 0.0
                        alpha_by_size = {}
                        prefix_by_size = {}
                        access_cutoff = (
                            sim.accessing_cutoff(bound, s_k)
                            if (access_on and full)
                            else -1.0
                        )
            registry.record(pair, probe, size_x, size_y, s_k)

        stats.candidates += candidates
        stats.duplicates_skipped += duplicates
        stats.size_pruned += size_pruned
        stats.positional_pruned += positional_pruned
        stats.suffix_pruned += suffix_pruned
        stats.verifications += verifications

    _maybe_index(
        sim, opts, buffer, insert_index, stop_indexing, external, stats,
        checks, token, rid, prefix, bound, size_x,
    )


def _maybe_index(
    sim: SimilarityFunction,
    opts: TopkOptions,
    buffer: TopKBuffer,
    insert_index: BoundedInvertedIndex,
    stop_indexing: bytearray,
    external: float,
    stats: TopkStats,
    checks: Optional[CheckHooks],
    token: int,
    rid: int,
    prefix: int,
    bound: float,
    size_x: int,
) -> None:
    """Index insertion after a probe (Algorithms 7-8)."""
    if opts.index_optimization:
        if not stop_indexing[rid]:
            threshold = buffer.s_k
            if external > threshold:
                threshold = external
            indexing_bound = sim.indexing_upper_bound(size_x, prefix)
            inserted = indexing_bound > threshold
            if checks is not None:
                checks.on_index_decision(
                    rid, size_x, prefix, threshold, inserted
                )
            if inserted:
                insert_index.add(token, rid, prefix, bound)
            else:
                stop_indexing[rid] = 1
                stats.index_insertions_skipped += 1
        else:
            stats.index_insertions_skipped += 1
    else:
        insert_index.add(token, rid, prefix, bound)


def _zero_fill(
    collection: RecordCollection,
    missing: int,
    found: List[JoinResult],
    sides: Optional[Sequence[int]] = None,
) -> List[JoinResult]:
    """Pad with similarity-0 pairs (records sharing no token).

    Only reachable when fewer than *k* pairs share any token, in which case
    the event loop has provably enumerated every pair with positive
    similarity — the remaining pairs all score exactly 0.  With *sides*
    only cross pairs are eligible (the bipartite pair space).
    """
    present: Set[Tuple[int, int]] = {(r.x, r.y) for r in found}
    padding: List[JoinResult] = []
    n = len(collection)
    for a in range(n):
        if missing <= 0:
            break
        for b in range(a + 1, n):
            if missing <= 0:
                break
            if (a, b) in present:
                continue
            if sides is not None and sides[a] == sides[b]:
                continue
            padding.append(JoinResult(a, b, 0.0))
            missing -= 1
    return padding
