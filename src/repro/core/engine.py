"""Engine lifecycle — explicit ``new -> open -> closed`` state machine.

The batch join is a one-shot function call, but two consumers hold join
state across many calls: the interactive :class:`~repro.core.session.
TopkSession` (lazy, resumable retrieval over a static collection) and
the sliding-window :class:`~repro.stream.engine.StreamingTopkEngine`
(records arrive and expire over time).  Both need the same contract —
resources are acquired at a well-defined point, operations are rejected
outside the open state, and closing is idempotent and final — so the
contract lives here once.

States::

    new ──open()──▶ open ──close()──▶ closed
                      │                  ▲
                      └────── close() ───┘   (close() from "new" is legal
                                              and skips the teardown hook)

``open()`` is idempotent while open, and reopening a closed engine is an
error — a closed engine has torn down its indexes and cannot resume.
Engines are context managers: ``with engine:`` opens on entry and closes
on exit, even on error.
"""

from __future__ import annotations

from types import TracebackType
from typing import Optional, Type, TypeVar

__all__ = ["EngineLifecycle", "EngineStateError"]

#: Lifecycle state names (compared as plain strings; no enum dependency).
STATE_NEW = "new"
STATE_OPEN = "open"
STATE_CLOSED = "closed"

E = TypeVar("E", bound="EngineLifecycle")


class EngineStateError(RuntimeError):
    """An operation was issued in a lifecycle state that forbids it."""


class EngineLifecycle:
    """Base class providing the ``new -> open -> closed`` state machine.

    Subclasses override :meth:`_on_open` (acquire state: build indexes,
    start iterators) and :meth:`_on_close` (release it).  The hooks run
    exactly once each: ``_on_open`` on the first successful :meth:`open`,
    ``_on_close`` on the first :meth:`close` of an engine that was open.
    """

    def __init__(self) -> None:
        self._lifecycle_state = STATE_NEW

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"new"``, ``"open"`` or ``"closed"``."""
        return self._lifecycle_state

    @property
    def is_open(self) -> bool:
        return self._lifecycle_state == STATE_OPEN

    @property
    def closed(self) -> bool:
        return self._lifecycle_state == STATE_CLOSED

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def open(self: E) -> E:
        """Enter the open state (idempotent while open); returns self."""
        if self._lifecycle_state == STATE_CLOSED:
            raise EngineStateError(
                "%s is closed and cannot be reopened; construct a new one"
                % type(self).__name__
            )
        if self._lifecycle_state == STATE_NEW:
            self._on_open()
            self._lifecycle_state = STATE_OPEN
        return self

    def close(self) -> None:
        """Enter the closed state, releasing resources (idempotent)."""
        if self._lifecycle_state == STATE_CLOSED:
            return
        was_open = self._lifecycle_state == STATE_OPEN
        self._lifecycle_state = STATE_CLOSED
        if was_open:
            self._on_close()

    def _require_open(self, action: str) -> None:
        """Raise :class:`EngineStateError` unless the engine is open."""
        if self._lifecycle_state != STATE_OPEN:
            raise EngineStateError(
                "cannot %s: %s is %s (call open() first)"
                % (action, type(self).__name__, self._lifecycle_state)
            )

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _on_open(self) -> None:
        """Acquire engine state; runs once, before entering ``open``."""

    def _on_close(self) -> None:
        """Release engine state; runs once, when leaving ``open``."""

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------

    def __enter__(self: E) -> E:
        return self.open()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()
