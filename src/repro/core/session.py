"""Interactive top-k session — lazy, resumable result retrieval.

The paper's interactive scenario (Sections I and VII-F): "a user may input
an initial k = 100 but terminate the execution of algorithm when she is
already satisfied with the first k' results" — or keep asking for more.

:class:`TopkSession` wraps the progressive iterator with a result cache so
a caller can ask for any prefix of the top-``max_k`` ranking, repeatedly
and in any order, paying only for the deepest prefix ever requested:

    session = TopkSession(collection, max_k=1000)
    first = session.top(10)       # runs until 10 results are final
    more = session.top(50)        # resumes, 40 more results
    again = session.top(25)       # served from cache, no work

The session is an engine with an explicit lifecycle (see
:mod:`repro.core.engine`): construction opens it immediately — the
historical behaviour — and :meth:`~repro.core.engine.EngineLifecycle.
close` releases the underlying join iterator.  Results already confirmed
final stay readable through :attr:`results_so_far` after close, but
asking a closed session for *more* work raises
:class:`~repro.core.engine.EngineStateError`.  Sessions are context
managers: ``with TopkSession(coll) as session: ...``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..data.records import RecordCollection
from ..result import JoinResult
from ..similarity.functions import SimilarityFunction
from .engine import EngineLifecycle
from .metrics import TopkStats
from .topk_join import TopkOptions, topk_join_iter

__all__ = ["TopkSession"]


class TopkSession(EngineLifecycle):
    """A pausable top-k join over one collection.

    *max_k* bounds how deep the ranking can ever be explored; it sizes the
    internal top-k buffer, so pick it generously (cost is O(max_k) memory,
    not time — the event loop only runs as far as the results actually
    requested force it to).
    """

    def __init__(
        self,
        collection: RecordCollection,
        max_k: int = 1000,
        similarity: Optional[SimilarityFunction] = None,
        options: Optional[TopkOptions] = None,
    ) -> None:
        super().__init__()
        if max_k < 1:
            raise ValueError("max_k must be >= 1, got %d" % max_k)
        self.collection = collection
        self.max_k = max_k
        self.stats = TopkStats()
        self._similarity = similarity
        self._options = options
        self._iterator: Optional[Iterator[JoinResult]] = None
        self._cache: List[JoinResult] = []
        self._exhausted = False
        self.open()

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def _on_open(self) -> None:
        self._iterator = topk_join_iter(
            self.collection, self.max_k, similarity=self._similarity,
            options=self._options, stats=self.stats,
        )

    def _on_close(self) -> None:
        # Drop the suspended generator (and the join state it captures:
        # event heap, inverted index, verification table).  The cache of
        # already-final results is kept readable.
        self._iterator = None

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def top(self, k: int) -> List[JoinResult]:
        """The best *k* pairs (k <= max_k), resuming the join if needed."""
        if k > self.max_k:
            raise ValueError(
                "k=%d exceeds the session's max_k=%d" % (k, self.max_k)
            )
        self._advance_to(k)
        return self._cache[:k]

    def __iter__(self) -> Iterator[JoinResult]:
        """Stream results best-first up to max_k (cache-aware)."""
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
                index += 1
                continue
            if self._exhausted:
                return
            self._advance_to(index + 1)
            if index >= len(self._cache):
                return

    @property
    def results_so_far(self) -> List[JoinResult]:
        """Everything confirmed final so far (no additional work)."""
        return list(self._cache)

    def _advance_to(self, k: int) -> None:
        if len(self._cache) >= k or self._exhausted:
            return
        self._require_open("resume the join for %d results" % k)
        assert self._iterator is not None
        while len(self._cache) < k and not self._exhausted:
            try:
                self._cache.append(next(self._iterator))
            except StopIteration:
                self._exhausted = True
