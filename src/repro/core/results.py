"""The temporary-result buffer ``T`` of Algorithm 3.

A fixed-capacity min-heap of the best *k* pairs seen so far.  ``T[k].sim``
— exposed as :attr:`TopKBuffer.s_k` — is the similarity of the k-th best
temporary result and grows monotonically; every filter in the top-k join
uses it as its (rising) threshold.

The buffer also powers progressive emission (Section VII-F): a mirrored
max-heap hands out, in decreasing similarity order, every pair whose
similarity is at least the current upper bound of all unseen pairs.  Such a
pair is *final*: no unseen pair can beat it, and it can never be evicted
(eviction would need a strictly better new pair, which the bound forbids).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Tuple

__all__ = ["TopKBuffer"]

Pair = Tuple[int, int]


class TopKBuffer:
    """Best-k pair buffer with monotone ``s_k`` and progressive emission."""

    def __init__(self, k: int, floor: float = 0.0) -> None:
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        self.k = k
        self.floor = floor
        self._heap: List[Tuple[float, int, Pair]] = []
        self._desc: List[Tuple[float, int, Pair]] = []
        self._members: Dict[Pair, float] = {}
        #: Sequence number of the *live* heap entry per member pair.  The
        #: descending heap keeps stale entries after evictions; matching
        #: on the integer sequence (not the float similarity) identifies
        #: the live one exactly.
        self._live_seq: Dict[Pair, int] = {}
        self._emitted: set = set()
        self._sequence = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def s_k(self) -> float:
        """Similarity of the k-th temporary result (the floor while not full).

        Monotonically non-decreasing over the buffer's lifetime.
        """
        if len(self._heap) >= self.k:
            return self._heap[0][0]
        return self.floor

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._members

    def similarity_of(self, pair: Pair) -> float:
        return self._members[pair]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, pair: Pair, similarity: float) -> bool:
        """Offer a pair; keep it only if it improves the top-k.

        Duplicate pairs are ignored (a pair may be verified again when the
        verification-dedup optimisation is disabled).  Returns whether the
        pair was retained.
        """
        if pair in self._members:
            return False
        self._sequence += 1
        entry = (similarity, self._sequence, pair)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            self._members[pair] = similarity
            self._live_seq[pair] = self._sequence
            heapq.heappush(self._desc, (-similarity, self._sequence, pair))
            return True
        if similarity <= self._heap[0][0]:
            return False
        evicted = heapq.heappushpop(self._heap, entry)
        del self._members[evicted[2]]
        del self._live_seq[evicted[2]]
        self._members[pair] = similarity
        self._live_seq[pair] = self._sequence
        heapq.heappush(self._desc, (-similarity, self._sequence, pair))
        return True

    # ------------------------------------------------------------------
    # Progressive emission
    # ------------------------------------------------------------------

    def pop_emittable(self, remaining_bound: float) -> List[Tuple[Pair, float]]:
        """Pairs whose similarity >= *remaining_bound*, best first.

        Each pair is emitted at most once.  Evicted pairs linger in the
        descending heap and are discarded lazily by checking membership.
        """
        out: List[Tuple[Pair, float]] = []
        while self._desc and -self._desc[0][0] >= remaining_bound:
            negated, seq, pair = heapq.heappop(self._desc)
            similarity = -negated
            # Liveness by integer sequence number, not by comparing the
            # float similarity: an evicted-and-readded pair gets a fresh
            # sequence, so stale heap entries can never masquerade as
            # live ones even at an identical similarity value.
            if self._live_seq.get(pair) != seq or pair in self._emitted:
                continue
            self._emitted.add(pair)
            out.append((pair, similarity))
        return out

    def drain(self) -> Iterator[Tuple[Pair, float]]:
        """Emit everything not yet emitted, best first (end of the join)."""
        for pair, similarity in self.pop_emittable(float("-inf")):
            yield pair, similarity

    def items(self) -> List[Tuple[Pair, float]]:
        """Current contents, best first (does not mark anything emitted)."""
        return sorted(
            self._members.items(), key=lambda item: (-item[1], item[0])
        )
