"""Initialization of temporary results (Section V-B).

Starting the join with an empty buffer means ``s_k = 0``: no filter prunes
anything until *k* pairs have been verified, and the verification hash
stores everything.  The paper therefore seeds ``T`` before the event loop:
records sharing a *selective* (low document frequency) token are likely
similar, so pairs drawn from short inverted lists make excellent initial
temporary results — Figure 5(b) of the paper shows ``s_k`` already near
its final value when the first result is emitted.

This module implements a budgeted generalization of the paper's scheme:
tokens are visited in increasing document frequency (df >= 2 — a df-2
token yields exactly one, usually very similar, pair), each token
contributes the pairs of its holder list, and verification stops once the
pair budget is exhausted.  The paper's single medium-df token (df in
[10, 100] with ``df·(df-1)/2 >= k``) is the special case of one visited
token; :func:`choose_seed_token` still implements that selection rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..data.records import (
    SIGNATURE_BITS,
    RecordCollection,
    signature_overlap_bound,
)
from ..result import ordered_pair
from ..similarity.functions import SimilarityFunction
from ..similarity.overlap import overlap_with_common_positions
from .results import TopKBuffer
from .verification import VerificationRegistry

if TYPE_CHECKING:
    from ..oracle.invariants import CheckHooks
    from .metrics import TopkStats

__all__ = ["choose_seed_token", "seed_temporary_results"]

#: The paper examines tokens with document frequency in [10, 100].
_PREFERRED_DF = (10, 100)
#: Hard cap on seed verifications, independent of k.
_MAX_SEED_PAIRS = 20000
#: Seed verification budget as a multiple of k.
_BUDGET_FACTOR = 4
#: Tokens rarer than this never help (df 0/1 yield no pairs).
_MIN_DF = 2
#: Tokens more frequent than this are too noisy to seed from.
_MAX_DF = 100


def choose_seed_token(
    frequencies: Dict[int, int], k: int
) -> Optional[int]:
    """Pick a single seed token per the paper's original rule.

    Among tokens with document frequency in the preferred band, choose the
    one with the *smallest* df such that ``df·(df-1)/2 >= k``.  When the
    band has no such token, fall back to the smallest-df token anywhere
    that supplies enough pairs; return ``None`` when none does.
    """
    low, high = _PREFERRED_DF
    best: Optional[Tuple[int, int]] = None
    fallback: Optional[Tuple[int, int]] = None
    for token, df in frequencies.items():
        if df * (df - 1) // 2 < k:
            continue
        if low <= df <= high:
            if best is None or (df, token) < best:
                best = (df, token)
        elif fallback is None or (df, token) < fallback:
            fallback = (df, token)
    chosen = best if best is not None else fallback
    return None if chosen is None else chosen[1]


def seed_temporary_results(
    collection: RecordCollection,
    similarity: SimilarityFunction,
    buffer: TopKBuffer,
    registry: VerificationRegistry,
    sides: Optional[Sequence[int]] = None,
    checks: Optional["CheckHooks"] = None,
    stats: Optional["TopkStats"] = None,
    bitmap: bool = True,
    sig_bits: int = SIGNATURE_BITS,
) -> int:
    """Fill *buffer* with pairs sharing selective tokens.

    Visits tokens in increasing document frequency (rarest first, df in
    ``[2, 100]``), verifies the pairs of each token's holder list, and
    stops after ``min(4k, 20000)`` verifications.  Every verified seed pair
    is recorded in *registry*: the event loop will re-generate these pairs
    and must not verify them again.  Returns the number of pairs verified.

    Once the buffer is full, candidate pairs whose bitmap-signature
    overlap bound (see :func:`repro.data.records.signature_overlap_bound`)
    cannot reach ``s_k`` are skipped *without* verifying or recording
    them — the event loop regenerates and verifies them later if they
    matter, so the verify-once discipline is untouched.  *sig_bits*
    selects the signature width, matching the caller's kernel so the
    per-width cache is warmed exactly once per run.  *stats* is an
    optional :class:`repro.core.metrics.TopkStats` receiving the bitmap
    counters.

    With *sides* (bipartite joins) only cross-side pairs are seeded — a
    same-side pair is outside the pair space and must never reach the
    buffer.  *checks* is the caller's optional
    :class:`repro.oracle.invariants.CheckHooks`; seed verifications are
    reported to it so the emitted-implies-verified and verify-once
    invariants cover the seeding phase too.
    """
    budget = min(max(buffer.k * _BUDGET_FACTOR, buffer.k), _MAX_SEED_PAIRS)
    frequencies = collection.token_frequencies()

    candidates = sorted(
        (
            (df, token)
            for token, df in frequencies.items()
            if _MIN_DF <= df <= _MAX_DF
        ),
    )
    if not candidates:
        return 0

    # Choose a token prefix whose cumulative pair count covers the budget,
    # then gather holder lists for exactly those tokens in one pass.
    chosen: List[int] = []
    cumulative = 0
    for df, token in candidates:
        chosen.append(token)
        cumulative += df * (df - 1) // 2
        if cumulative >= budget:
            break
    wanted = set(chosen)
    holders: Dict[int, List[int]] = {token: [] for token in chosen}
    for record in collection:
        for token in record.tokens:
            if token in wanted:
                holders[token].append(record.rid)

    signatures = collection.signatures_at(sig_bits) if bitmap else None
    verified = 0
    seen: set = set()
    for token in chosen:
        rids = holders[token]
        for a in range(len(rids)):
            x = collection[rids[a]]
            size_x = len(x)
            for b in range(a + 1, len(rids)):
                if verified >= budget:
                    return verified
                if sides is not None and sides[rids[a]] == sides[rids[b]]:
                    continue
                pair = ordered_pair(rids[a], rids[b])
                if pair in seen:
                    continue
                seen.add(pair)
                y = collection[rids[b]]
                if signatures is not None and buffer.full:
                    # Bitmap prune: skip (without verifying or recording)
                    # a pair that provably cannot enter the full buffer.
                    size_y = len(y)
                    alpha = similarity.required_overlap(
                        buffer.s_k, size_x, size_y
                    )
                    if alpha > 0:
                        limit = signature_overlap_bound(
                            signatures[rids[a]], signatures[rids[b]],
                            size_x, size_y,
                        )
                        if stats is not None:
                            stats.bitmap_checked += 1
                        if limit < alpha:
                            if stats is not None:
                                stats.bitmap_pruned += 1
                            continue
                probe = overlap_with_common_positions(x.tokens, y.tokens)
                if checks is not None:
                    checks.on_verified(pair)
                value = similarity.from_overlap(
                    probe.overlap, len(x), len(y)
                )
                buffer.add(pair, value)
                registry.record_seed(pair, probe, len(x), len(y), buffer.s_k)
                verified += 1
    return verified
