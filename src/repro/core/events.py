"""Prefix events and the event priority queue (Section III-B, V-C).

A *prefix event* ``<x, p, s_p>`` says: record *x* is about to expose its
p-th prefix token; ``s_p`` is the probing similarity upper bound — the
largest similarity *x* can reach with a record it shares no earlier prefix
token with.  Events are consumed in decreasing ``s_p`` order from a
max-heap, which is what makes the bound of the heap's top a valid upper
bound for **all** unseen pairs.

Because ``s_p`` depends only on ``(|x|, p)``, events for equal-size records
can be *compressed* into one entry per ``(size, p)`` (Section V-C).  The
queue hides this behind a common interface: :meth:`pop` returns the bound,
the prefix position and the batch of record ids to process.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..data.records import RecordCollection
from ..similarity.functions import SimilarityFunction

__all__ = ["EventQueue"]


class EventQueue:
    """Max-heap of prefix events, optionally compressed by record size."""

    def __init__(
        self,
        collection: RecordCollection,
        similarity: SimilarityFunction,
        compressed: bool = True,
    ) -> None:
        self._collection = collection
        self._similarity = similarity
        self.compressed = compressed
        self._heap: List[Tuple[float, int, int, Tuple[int, ...]]] = []
        self.events_pushed = 0
        self.peak_size = 0
        self._initialize()

    def _initialize(self) -> None:
        """Seed one event per record (or per size block) at prefix 1.

        The initial probing bound is the function's maximum — 1.0 for the
        normalized functions, ``|x|`` for overlap similarity.
        """
        sim = self._similarity
        if self.compressed:
            for size, start, stop in self._collection.size_blocks():
                bound = sim.probing_upper_bound(size, 1)
                self._push(bound, size, 1, tuple(range(start, stop)))
        else:
            for record in self._collection:
                bound = sim.probing_upper_bound(len(record), 1)
                self._push(bound, len(record), 1, (record.rid,))

    def _push(
        self, bound: float, size: int, prefix: int, rids: Tuple[int, ...]
    ) -> None:
        heapq.heappush(self._heap, (-bound, size, prefix, rids))
        self.events_pushed += 1
        if len(self._heap) > self.peak_size:
            self.peak_size = len(self._heap)

    # ------------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def peek_bound(self) -> Optional[float]:
        """Upper bound of the best unprocessed event (None when empty)."""
        if not self._heap:
            return None
        return -self._heap[0][0]

    def pop(self) -> Tuple[float, int, Tuple[int, ...]]:
        """Pop the best event: ``(bound, prefix_position, record_ids)``."""
        negated, __, prefix, rids = heapq.heappop(self._heap)
        return -negated, prefix, rids

    def push_next(
        self,
        size: int,
        prefix: int,
        rids: Sequence[int],
        cutoff: float,
    ) -> None:
        """Schedule the follow-up event ``prefix + 1`` for *rids*.

        Skipped when the prefix is exhausted or when the next bound cannot
        beat *cutoff* (the current ``s_k`` — pairs found at or below it can
        at best tie the k-th result, which cannot change the answer
        multiset).
        """
        next_prefix = prefix + 1
        if next_prefix > size:
            return
        bound = self._similarity.probing_upper_bound(size, next_prefix)
        if bound <= cutoff:
            return
        self._push(bound, size, next_prefix, tuple(rids))
