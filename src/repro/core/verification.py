"""Verification with exact-once deduplication (Section IV-A, Algorithm 6).

A candidate pair sharing *d* prefix tokens can be generated up to *d* times
by the event loop.  Remembering every verified pair in a hash table would
work but waste memory: most pairs can only be generated once and need no
entry.  The paper's optimisation stores a pair **only if** it can actually
be generated again — i.e. only if the pair's *second* common token lies
inside both records' *maximum prefixes*, the longest prefixes the event
loop can still reach given the current ``s_k`` (prefixes shrink as ``s_k``
rises, so the test is conservative in the right direction).

``mode`` selects the paper's ablations:

* ``"optimized"`` — Algorithm 6 (the default);
* ``"all"``       — the ``record-all`` baseline of Fig. 3(a): remember every
  verified pair;
* ``"off"``       — no hash table at all; duplicates are re-verified (the
  result buffer still deduplicates pairs, so answers are unchanged).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set, Tuple

from ..similarity.functions import SimilarityFunction
from ..similarity.overlap import OverlapProbe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

__all__ = ["VerificationRegistry"]

Pair = Tuple[int, int]

_MODES = ("optimized", "all", "off")


class VerificationRegistry:
    """Hash table of pairs that must not be verified a second time."""

    def __init__(self, similarity: SimilarityFunction, mode: str = "optimized") -> None:
        if mode not in _MODES:
            raise ValueError("mode must be one of %s, got %r" % (_MODES, mode))
        self.similarity = similarity
        self.mode = mode
        self._seen: set = set()
        self.peak_entries = 0
        self._cached_s_k = -1.0
        self._prefix_cache: dict = {}

    def __len__(self) -> int:
        return len(self._seen)

    def fast_set(self) -> Optional[Set[Pair]]:
        """The seen-pair set for hot-loop membership tests (None if off).

        This is the *live* set object — it reflects later insertions, so
        callers hoist it once per run.  It replaced a per-pair
        ``already_verified(pair)`` method that paid a Python call per
        candidate in the hottest loop.
        """
        if self.mode == "off":
            return None
        return self._seen

    def _max_prefix(self, size: int, s_k: float) -> int:
        """Cached maximum probing prefix length under the current ``s_k``."""
        # s_k is monotone non-decreasing over a run, so "changed" is
        # exactly "rose" — no float equality needed.
        if s_k > self._cached_s_k:
            self._cached_s_k = s_k
            self._prefix_cache.clear()
        length = self._prefix_cache.get(size)
        if length is None:
            length = self.similarity.probing_prefix_length(size, s_k)
            self._prefix_cache[size] = length
        return length

    def record(
        self,
        pair: Pair,
        probe: OverlapProbe,
        size_x: int,
        size_y: int,
        s_k: float,
    ) -> None:
        """Register a just-verified pair if it could be generated again.

        *probe* is the merge transcript of the verification.  The pair is
        remembered exactly when it could be generated again, i.e. when a
        second common token exists at 1-based positions within both
        records' *maximum prefixes* (the longest prefixes still reachable
        under the current ``s_k``).  Pairs without such a token can never
        be re-generated and are never stored — that is the whole memory
        saving.

        When the probe aborted before covering either maximum prefix
        (``scanned_x`` / ``scanned_y``), the existence of a second common
        token is unknown and the pair is stored conservatively; skipping a
        duplicate is always safe because ``s_k`` only rises, so a
        verification outcome is final.
        """
        if self.mode == "off":
            return
        if self.mode == "all":
            self._insert(pair)
            return
        max_x = self._max_prefix(size_x, s_k)
        max_y = self._max_prefix(size_y, s_k)
        if probe.second_x is not None:
            if probe.second_x <= max_x and probe.second_y <= max_y:
                self._insert(pair)
            return
        # No second common token found; decisive only if the merge covered
        # at least one maximum prefix entirely.
        if probe.scanned_x >= max_x or probe.scanned_y >= max_y:
            return
        self._insert(pair)

    def record_seed(
        self,
        pair: Pair,
        probe: OverlapProbe,
        size_x: int,
        size_y: int,
        s_k: float,
    ) -> None:
        """Register a pair verified during *seeding* (Section V-B).

        Algorithm 6's second-common-token rule assumes the pair was
        already generated once by the event loop; a seed pair has not
        been, so it must be stored whenever the loop can generate it *at
        all* — i.e. when its **first** common token lies within both
        records' maximum prefixes.  (Common tokens of two sorted arrays
        appear at monotonically increasing positions in both, so if the
        first one is out of reach every later one is too.)  Using the
        loop rule here double-verified every seed pair whose only common
        token sits inside the prefixes — caught by the ``verify-once``
        runtime invariant of :mod:`repro.oracle.invariants`.
        """
        if self.mode == "off":
            return
        if self.mode == "all":
            self._insert(pair)
            return
        if probe.first_x is None:
            # No common token: the event loop can never generate the
            # pair (unless the merge aborted before finding one, which a
            # full seeding merge never does — handled conservatively).
            if probe.aborted:
                self._insert(pair)
            return
        if (
            probe.first_x <= self._max_prefix(size_x, s_k)
            and probe.first_y <= self._max_prefix(size_y, s_k)
        ):
            self._insert(pair)

    def _insert(self, pair: Pair) -> None:
        self._seen.add(pair)
        if len(self._seen) > self.peak_entries:
            self.peak_entries = len(self._seen)

    def publish_metrics(self, metrics: "MetricsRegistry") -> None:
        """Snapshot the hash table's footprint into gauge families.

        The *peak* is exported by ``absorb_topk_stats`` (it lives in
        ``TopkStats.hash_entries_peak``); this adds the live size, which
        only the registry knows.  ``sum`` mode because concurrent tasks'
        tables coexist in memory.
        """
        metrics.gauge(
            "repro_hash_entries_live",
            "Verified-pair hash entries alive at termination.",
            mode="sum",
        ).set(float(len(self._seen)))
