"""The paper's contribution: topk-join, the pptopk baseline, and metrics."""

from .events import EventQueue
from .metrics import EmitEvent, JoinStats, PptopkStats, TopkStats
from .naive_topk import naive_topk
from .pptopk import default_threshold_schedule, pptopk_join
from .results import TopKBuffer
from .rs_join import TaggedCollection, naive_topk_rs, topk_join_rs
from .seeding import choose_seed_token, seed_temporary_results
from .session import TopkSession
from .topk_join import TopkOptions, topk_join, topk_join_iter
from .verification import VerificationRegistry

__all__ = [
    "TopkOptions",
    "topk_join",
    "topk_join_iter",
    "topk_join_rs",
    "naive_topk_rs",
    "TaggedCollection",
    "TopkSession",
    "pptopk_join",
    "default_threshold_schedule",
    "naive_topk",
    "TopKBuffer",
    "EventQueue",
    "VerificationRegistry",
    "choose_seed_token",
    "seed_temporary_results",
    "JoinStats",
    "TopkStats",
    "PptopkStats",
    "EmitEvent",
]
