"""Top-k join between two collections (R-S join).

The paper states its algorithms "focus on the self-join case for the ease
of exposition" (Section II-A); the general form joins two sets of records
R and S and ranks cross pairs only.  This module provides that extension:

* both sides are canonicalized against a *joint* token universe (prefix
  filtering requires one global ordering), and
* the event-driven join runs unchanged, except that a candidate pair is
  admitted only when its records come from different sides.

Every bound of the self-join remains valid — none of them depends on which
side a record belongs to — so the implementation simply runs the core
machinery over the tagged union of R and S.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..data.ordering import document_frequencies, idf_ordering
from ..data.records import Record, RecordCollection
from ..result import JoinResult
from ..similarity.functions import Jaccard, SimilarityFunction
from .metrics import TopkStats
from .topk_join import TopkOptions, topk_join_iter

__all__ = ["TaggedCollection", "topk_join_rs", "naive_topk_rs"]


class TaggedCollection:
    """Union of two record sets over one token universe, with side tags.

    ``side(rid)`` is 0 for records from R and 1 for records from S.
    ``original_index(rid)`` recovers the position in the input sequence
    the record came from (R and S indexed independently).
    """

    def __init__(
        self, collection: RecordCollection, sides: Sequence[int]
    ):
        self.collection = collection
        self._sides = bytes(sides)

    @classmethod
    def from_token_lists(
        cls,
        r_lists: Sequence[Sequence[str]],
        s_lists: Sequence[Sequence[str]],
    ) -> "TaggedCollection":
        """Canonicalize R and S jointly (shared df ordering, no dedupe).

        Deduplication is disabled: identical records on opposite sides are
        a legitimate (similarity 1) join result.
        """
        combined = list(r_lists) + list(s_lists)
        df = document_frequencies(combined)
        rank_of = idf_ordering(df)

        canonical: List[Tuple[Tuple[int, ...], int, int]] = []
        for position, tokens in enumerate(combined):
            ranked = tuple(sorted({rank_of[t] for t in tokens}))
            if not ranked:
                continue
            side = 0 if position < len(r_lists) else 1
            source = position if side == 0 else position - len(r_lists)
            canonical.append((ranked, side, source))

        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source)
            for rid, (tokens, __, source) in enumerate(canonical)
        ]
        collection = RecordCollection(records, universe_size=len(rank_of))
        sides = [side for __, side, __unused in canonical]
        return cls(collection, sides)

    @classmethod
    def from_integer_sets(
        cls,
        r_sets: Sequence[Sequence[int]],
        s_sets: Sequence[Sequence[int]],
    ) -> "TaggedCollection":
        """Joint collection from pre-ranked integer token sets."""
        canonical: List[Tuple[Tuple[int, ...], int, int]] = []
        universe = 0
        for side, sets in ((0, r_sets), (1, s_sets)):
            for source, tokens in enumerate(sets):
                ranked = tuple(sorted(set(tokens)))
                if not ranked:
                    continue
                universe = max(universe, ranked[-1] + 1)
                canonical.append((ranked, side, source))
        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source)
            for rid, (tokens, __, source) in enumerate(canonical)
        ]
        collection = RecordCollection(records, universe_size=universe)
        sides = [side for __, side, __unused in canonical]
        return cls(collection, sides)

    def side(self, rid: int) -> int:
        return self._sides[rid]

    def __len__(self) -> int:
        return len(self.collection)


def topk_join_rs(
    tagged: TaggedCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    options: Optional[TopkOptions] = None,
    stats: Optional[TopkStats] = None,
) -> List[JoinResult]:
    """The k most similar **cross** pairs (one record from R, one from S).

    Implementation note: the self-join enumerates pairs in decreasing
    similarity order, so filtering its progressive stream down to
    cross-side pairs and keeping the first k is exact.  Because the
    underlying buffer also holds only k pairs, same-side pairs can crowd
    out cross pairs; the stream is therefore drawn from a self-join with an
    enlarged k and re-run with a larger budget in the (rare) case the
    filtered stream ran dry before k cross pairs appeared.
    """
    sim = similarity or Jaccard()
    sides = tagged
    n = len(tagged)
    total_pairs = n * (n - 1) // 2

    budget = min(max(4 * k, k + 16), total_pairs) if total_pairs else 0
    while True:
        cross: List[JoinResult] = []
        yielded = 0
        for result in topk_join_iter(
            tagged.collection, budget or 1,
            similarity=sim, options=options, stats=stats,
        ):
            yielded += 1
            if sides.side(result.x) != sides.side(result.y):
                cross.append(result)
                if len(cross) >= k:
                    return cross
        if yielded < budget or budget >= total_pairs:
            # The stream enumerated every pair sharing a token; the
            # remaining cross pairs all have similarity 0.
            cross.extend(_zero_fill_cross(tagged, k - len(cross), cross))
            return cross[:k]
        budget = min(budget * 4, total_pairs)


def _zero_fill_cross(
    tagged: TaggedCollection, missing: int, found: List[JoinResult]
) -> List[JoinResult]:
    """Pad with similarity-0 cross pairs when R x S has fewer sharing pairs."""
    present = {(r.x, r.y) for r in found}
    padding: List[JoinResult] = []
    n = len(tagged)
    for a in range(n):
        if missing <= 0:
            break
        for b in range(a + 1, n):
            if missing <= 0:
                break
            if tagged.side(a) == tagged.side(b) or (a, b) in present:
                continue
            padding.append(JoinResult(a, b, 0.0))
            missing -= 1
    return padding


def naive_topk_rs(
    tagged: TaggedCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
) -> List[JoinResult]:
    """Exhaustive R-S oracle (quadratic; tests only)."""
    sim = similarity or Jaccard()
    records = tagged.collection.records
    heap: List[Tuple[float, int, JoinResult]] = []
    counter = 0
    for a in range(len(records)):
        for b in range(a + 1, len(records)):
            if tagged.side(a) == tagged.side(b):
                continue
            value = sim.similarity(records[a].tokens, records[b].tokens)
            counter += 1
            item = (value, counter, JoinResult(a, b, value))
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif value > heap[0][0]:
                heapq.heappushpop(heap, item)
    ordered = sorted(heap, key=lambda item: (-item[0], item[2].x, item[2].y))
    return [item[2] for item in ordered]
