"""Top-k join between two collections (R-S join).

The paper states its algorithms "focus on the self-join case for the ease
of exposition" (Section II-A); the general form joins two sets of records
R and S and ranks cross pairs only.  This module provides that extension:

* both sides are canonicalized against a *joint* token universe (prefix
  filtering requires one global ordering), and
* the event-driven join runs natively bipartite via
  ``TopkOptions.bipartite_sides``: each side keeps its own inverted
  index and records probe only the opposite side's index, so exactly
  the cross pairs are generated.

Every bound of the self-join remains valid — none of them depends on which
side a record belongs to — so the implementation simply runs the core
machinery over the tagged union of R and S.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from ..data.ordering import document_frequencies, idf_ordering
from ..data.records import Record, RecordCollection
from ..oracle.reference import naive_topk
from ..result import JoinResult
from ..similarity.functions import Jaccard, SimilarityFunction
from .metrics import TopkStats
from .topk_join import TopkOptions, topk_join

__all__ = ["TaggedCollection", "topk_join_rs", "naive_topk_rs"]


class TaggedCollection:
    """Union of two record sets over one token universe, with side tags.

    ``side(rid)`` is 0 for records from R and 1 for records from S.
    ``original_index(rid)`` recovers the position in the input sequence
    the record came from (R and S indexed independently).
    """

    def __init__(
        self, collection: RecordCollection, sides: Sequence[int]
    ) -> None:
        self.collection = collection
        self._sides = bytes(sides)

    @classmethod
    def from_token_lists(
        cls,
        r_lists: Sequence[Sequence[str]],
        s_lists: Sequence[Sequence[str]],
    ) -> "TaggedCollection":
        """Canonicalize R and S jointly (shared df ordering, no dedupe).

        Deduplication is disabled: identical records on opposite sides are
        a legitimate (similarity 1) join result.
        """
        combined = list(r_lists) + list(s_lists)
        df = document_frequencies(combined)
        rank_of = idf_ordering(df)

        canonical: List[Tuple[Tuple[int, ...], int, int]] = []
        for position, tokens in enumerate(combined):
            ranked = tuple(sorted({rank_of[t] for t in tokens}))
            if not ranked:
                continue
            side = 0 if position < len(r_lists) else 1
            source = position if side == 0 else position - len(r_lists)
            canonical.append((ranked, side, source))

        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source)
            for rid, (tokens, __, source) in enumerate(canonical)
        ]
        collection = RecordCollection(records, universe_size=len(rank_of))
        sides = [side for __, side, __unused in canonical]
        return cls(collection, sides)

    @classmethod
    def from_integer_sets(
        cls,
        r_sets: Sequence[Sequence[int]],
        s_sets: Sequence[Sequence[int]],
    ) -> "TaggedCollection":
        """Joint collection from pre-ranked integer token sets."""
        canonical: List[Tuple[Tuple[int, ...], int, int]] = []
        universe = 0
        for side, sets in ((0, r_sets), (1, s_sets)):
            for source, tokens in enumerate(sets):
                ranked = tuple(sorted(set(tokens)))
                if not ranked:
                    continue
                universe = max(universe, ranked[-1] + 1)
                canonical.append((ranked, side, source))
        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source)
            for rid, (tokens, __, source) in enumerate(canonical)
        ]
        collection = RecordCollection(records, universe_size=universe)
        sides = [side for __, side, __unused in canonical]
        return cls(collection, sides)

    def side(self, rid: int) -> int:
        return self._sides[rid]

    @property
    def sides(self) -> bytes:
        """The per-rid side labels, in ``TopkOptions.bipartite_sides`` form."""
        return self._sides

    def __len__(self) -> int:
        return len(self.collection)


def topk_join_rs(
    tagged: TaggedCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
    options: Optional[TopkOptions] = None,
    stats: Optional[TopkStats] = None,
) -> List[JoinResult]:
    """The k most similar **cross** pairs (one record from R, one from S).

    Runs the core join in native bipartite mode (per-side inverted
    indexes; only cross pairs are generated, buffered or zero-padded), so
    there is no risk of same-side pairs crowding cross pairs out of the
    buffer and no enlarged-k re-runs — one pass, exactly like the
    self-join.

    ``options.accel`` applies unchanged: the scan kernels (see
    :mod:`repro.accel.kernel`) are side-agnostic — bit signatures live on
    the joint collection, and the kernel only ever sees the opposite
    side's posting columns.
    """
    sim = similarity or Jaccard()
    opts = replace(options or TopkOptions(), bipartite_sides=tagged.sides)
    tracer = opts.trace
    if tracer is not None:
        # The core join's own "topk_join" span nests under this one, so
        # a trace distinguishes an R-S run from a plain self-join.
        with tracer.span("topk_join_rs", k=k, records=len(tagged)):
            return topk_join(
                tagged.collection, k, similarity=sim, options=opts,
                stats=stats,
            )
    return topk_join(
        tagged.collection, k, similarity=sim, options=opts, stats=stats
    )


def naive_topk_rs(
    tagged: TaggedCollection,
    k: int,
    similarity: Optional[SimilarityFunction] = None,
) -> List[JoinResult]:
    """Exhaustive R-S oracle (quadratic; tests only).

    Delegates to the harness oracle, restricted to cross pairs.
    """
    return naive_topk(
        tagged.collection, k, similarity=similarity, sides=tagged.sides
    )
