"""Intraprocedural CFG + dataflow layer under the flow-sensitive checkers.

The pattern-based checkers (PR 4) reason about *syntax*: a ``.value``
write must sit lexically inside ``with ... get_lock():``.  The
concurrency and lifecycle invariants of the shared-memory data plane
need *paths*: every segment created must reach ``destroy_segment`` on
every exit — normal, early-return and exception alike.  This module
gives checkers that vocabulary:

* :func:`build_cfg` — a statement-level control-flow graph of one
  function.  ``try``/``except``/``finally`` are modeled precisely:
  ``finally`` bodies are *duplicated* per continuation (normal fall-
  through, exception, ``return``/``break``/``continue``) exactly as
  CPython compiles them, so a leak query never conflates the return
  path with the fall-through path.  ``with`` blocks compile to the
  equivalent try/finally with a synthetic ``with-exit`` node on every
  continuation.  Explicit ``raise`` statements produce ``"raise"``
  edges routed type-aware against enclosing handlers; statements
  containing calls produce ``"call"`` edges into the enclosing
  handler/finally chain (a call with no enclosing ``try`` is assumed
  non-raising — the analysis is intraprocedural and anything stronger
  would drown every function in phantom error paths).

* :func:`reaching_definitions` — a classic worklist analysis over the
  CFG; checkers use it to ask which binding of a name reaches a use
  (e.g. "was this attribute's base loaded from ``_STATE``?").

* :func:`leak_path_exists` — the resource-lifecycle query: is there a
  path from an acquisition to a function exit that hits neither a
  release nor an escape?  Edges whose branch condition implies the
  tracked name is ``None`` are pruned (``if segment is not None:
  destroy_segment(segment)`` discharges the obligation), and the caller
  chooses which edge kinds participate, so the exception-safety checker
  can restrict itself to explicit-``raise`` error paths.

Everything here is pure stdlib ``ast`` over one function at a time; no
module executes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "ALL_EDGE_KINDS",
    "CFG",
    "CFGNode",
    "Edge",
    "FunctionLike",
    "ReachingDefinitions",
    "build_cfg",
    "leak_path_exists",
    "reaching_definitions",
    "stmt_calls",
    "stmt_defs",
    "stmt_loads",
]

FunctionLike = ast.FunctionDef

#: Edge kinds: ``"step"`` (normal flow, including branch edges),
#: ``"raise"`` (origin is an explicit ``raise``) and ``"call"`` (origin
#: is a statement whose calls may raise into an enclosing handler).
ALL_EDGE_KINDS: FrozenSet[str] = frozenset({"step", "raise", "call"})

#: Handler type names treated as catching anything.
_CATCH_ALL_NAMES = frozenset({"BaseException", "Exception"})

#: Scope boundaries a statement-local walk must not cross: names bound
#: or used inside these belong to a nested scope, not the function
#: being analyzed (comprehension targets stopped leaking in Python 3).
_NESTED_SCOPES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.GeneratorExp,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
)


@dataclass(frozen=True)
class Edge:
    """One control-flow edge.

    ``test``/``branch`` are set on conditional edges: the branch
    condition expression and which way it went.  The leak query uses
    them to prune paths on which the tracked name is provably ``None``.
    """

    target: int
    kind: str = "step"
    test: Optional[ast.expr] = None
    branch: Optional[bool] = None


@dataclass
class CFGNode:
    """One node: a statement (or a synthetic entry/exit/join point)."""

    index: int
    stmt: Optional[ast.AST]
    label: str


class CFG:
    """A statement-level control-flow graph of one function."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self._succs: List[List[Edge]] = []
        self.entry = self._add(None, "entry")
        #: Normal completion (fall-through and ``return``).
        self.exit = self._add(None, "exit")
        #: Exceptional completion (an exception left the function).
        self.raise_exit = self._add(None, "raise-exit")

    def _add(self, stmt: Optional[ast.AST], label: str) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, stmt, label))
        self._succs.append([])
        return index

    def _link(self, source: int, edge: Edge) -> None:
        self._succs[source].append(edge)

    def successors(self, index: int) -> Sequence[Edge]:
        return self._succs[index]

    def nodes_for(self, stmt: ast.AST) -> List[int]:
        """Every node anchored at *stmt*.

        ``finally`` duplication means one statement can appear as
        several nodes — a query must consider all of them.
        """
        return [node.index for node in self.nodes if node.stmt is stmt]

    def nodes_with_label(self, label: str) -> List[int]:
        return [node.index for node in self.nodes if node.label == label]

    def reachable_from(
        self, start: int, kinds: FrozenSet[str] = ALL_EDGE_KINDS
    ) -> Set[int]:
        """All nodes reachable from *start* along edges of *kinds*."""
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for edge in self._succs[current]:
                if edge.kind in kinds and edge.target not in seen:
                    seen.add(edge.target)
                    frontier.append(edge.target)
        return seen


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


@dataclass
class _Route:
    """Where abrupt completions go from the region being built.

    Each field is a thunk so ``finally`` duplication happens lazily and
    is memoized per continuation — the classic way to compile ``try``/
    ``finally`` without exponential blowup on honest code.
    """

    raise_to: Callable[[Optional[str]], int]
    call_to: Optional[Callable[[], int]]
    return_to: Callable[[], int]
    break_to: Optional[Callable[[], int]] = None
    continue_to: Optional[Callable[[], int]] = None


def _raised_name(stmt: ast.Raise) -> Optional[str]:
    """The terminal type name of ``raise X(...)`` / ``raise X``; else None."""
    exc = stmt.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _handler_names(handler: ast.ExceptHandler) -> Optional[FrozenSet[str]]:
    """Type names one handler catches; ``None`` means catch-all."""
    if handler.type is None:
        return None
    types: List[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    names: Set[str] = set()
    for entry in types:
        if isinstance(entry, ast.Name):
            names.add(entry.id)
        elif isinstance(entry, ast.Attribute):
            names.add(entry.attr)
        else:
            return None  # dynamic type expression: treat as catch-all
    if names & _CATCH_ALL_NAMES:
        return None
    return frozenset(names)


def _head_exprs(stmt: ast.AST) -> List[ast.AST]:
    """The expressions a node *evaluates itself* (not its nested body)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []  # anchor node only; the body has its own nodes
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def _contains_call(roots: Sequence[ast.AST]) -> bool:
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                return True
    return False


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg

    # -- small helpers ----------------------------------------------------

    def _node(self, stmt: Optional[ast.AST], label: str) -> int:
        return self.cfg._add(stmt, label)

    def _edge(
        self,
        source: int,
        target: int,
        kind: str = "step",
        test: Optional[ast.expr] = None,
        branch: Optional[bool] = None,
    ) -> None:
        self.cfg._link(source, Edge(target, kind, test, branch))

    def _exc_edges(self, source: int, stmt: ast.stmt, route: _Route) -> None:
        """Attach raise/call edges a statement's own evaluation produces."""
        if isinstance(stmt, ast.Raise):
            return  # the raise edge is the statement's only exit
        if route.call_to is not None and _contains_call(_head_exprs(stmt)):
            self._edge(source, route.call_to(), kind="call")

    # -- statement sequencing ---------------------------------------------

    def sequence(
        self, stmts: Sequence[ast.stmt], follow: int, route: _Route
    ) -> int:
        """Build *stmts*; control falls through to *follow*.  Returns entry."""
        entry = follow
        for stmt in reversed(stmts):
            entry = self.statement(stmt, entry, route)
        return entry

    def statement(self, stmt: ast.stmt, follow: int, route: _Route) -> int:
        if isinstance(stmt, ast.If):
            return self._if(stmt, follow, route)
        if isinstance(stmt, (ast.While, ast.For)):
            return self._loop(stmt, follow, route)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, follow, route)
        if isinstance(stmt, ast.With):
            return self._with(stmt, follow, route)
        if isinstance(stmt, ast.Return):
            node = self._node(stmt, "return")
            self._exc_edges(node, stmt, route)
            self._edge(node, route.return_to())
            return node
        if isinstance(stmt, ast.Raise):
            node = self._node(stmt, "raise")
            self._edge(node, route.raise_to(_raised_name(stmt)), kind="raise")
            return node
        if isinstance(stmt, ast.Break) and route.break_to is not None:
            node = self._node(stmt, "break")
            self._edge(node, route.break_to())
            return node
        if isinstance(stmt, ast.Continue) and route.continue_to is not None:
            node = self._node(stmt, "continue")
            self._edge(node, route.continue_to())
            return node
        node = self._node(stmt, type(stmt).__name__.lower())
        self._exc_edges(node, stmt, route)
        self._edge(node, follow)
        return node

    # -- compound statements ----------------------------------------------

    def _if(self, stmt: ast.If, follow: int, route: _Route) -> int:
        test = self._node(stmt, "if-test")
        self._exc_edges(test, stmt, route)
        body = self.sequence(stmt.body, follow, route)
        self._edge(test, body, test=stmt.test, branch=True)
        orelse = self.sequence(stmt.orelse, follow, route)
        self._edge(test, orelse, test=stmt.test, branch=False)
        return test

    def _loop(self, stmt: ast.stmt, follow: int, route: _Route) -> int:
        assert isinstance(stmt, (ast.While, ast.For))
        test = self._node(stmt, "loop-test")
        self._exc_edges(test, stmt, route)
        loop_route = _Route(
            raise_to=route.raise_to,
            call_to=route.call_to,
            return_to=route.return_to,
            break_to=lambda: follow,
            continue_to=lambda: test,
        )
        body = self.sequence(stmt.body, test, loop_route)
        condition = stmt.test if isinstance(stmt, ast.While) else None
        self._edge(test, body, test=condition, branch=True)
        orelse = self.sequence(stmt.orelse, follow, route)
        self._edge(test, orelse, test=condition, branch=False)
        return test

    def _with(self, stmt: ast.With, follow: int, route: _Route) -> int:
        """``with`` compiles to try/finally around a synthetic exit node."""
        enter = self._node(stmt, "with-enter")
        self._exc_edges(enter, stmt, route)
        inner = self._finally_region(
            build_final=lambda next_target: self._with_exit(stmt, next_target),
            route=route,
        )
        body = self.sequence(stmt.body, self._with_exit(stmt, follow), inner)
        self._edge(enter, body)
        return enter

    def _with_exit(self, stmt: ast.With, next_target: int) -> int:
        node = self._node(stmt, "with-exit")
        self._edge(node, next_target)
        return node

    def _finally_region(
        self, build_final: Callable[[int], int], route: _Route
    ) -> _Route:
        """A route whose every abrupt exit first runs a finalizer copy."""
        memo: Dict[Tuple[str, int], int] = {}

        def through(kind: str, target: int) -> int:
            key = (kind, target)
            if key not in memo:
                memo[key] = build_final(target)
            return memo[key]

        def raise_to(name: Optional[str]) -> int:
            return through("raise", route.raise_to(name))

        def call_to() -> int:
            if route.call_to is not None:
                return through("call", route.call_to())
            return through("call", route.raise_to(None))

        return _Route(
            raise_to=raise_to,
            call_to=call_to,
            return_to=lambda: through("return", route.return_to()),
            break_to=(
                (lambda: through("break", route.break_to()))  # type: ignore[misc]
                if route.break_to is not None
                else None
            ),
            continue_to=(
                (lambda: through("continue", route.continue_to()))  # type: ignore[misc]
                if route.continue_to is not None
                else None
            ),
        )

    def _try(self, stmt: ast.Try, follow: int, route: _Route) -> int:
        outer = route
        after = follow
        if stmt.finalbody:

            def build_final(next_target: int) -> int:
                return self.sequence(stmt.finalbody, next_target, outer)

            route = self._finally_region(build_final, outer)
            after = self.sequence(stmt.finalbody, follow, outer)

        handler_route = route
        if not stmt.handlers:
            body = self.sequence(
                stmt.body, self.sequence(stmt.orelse, after, route), route
            )
            return body

        entries: List[Tuple[Optional[FrozenSet[str]], int]] = []
        for handler in stmt.handlers:
            entry = self._node(handler, "except")
            handled = self.sequence(handler.body, after, handler_route)
            self._edge(entry, handled)
            entries.append((_handler_names(handler), entry))

        def body_raise_to(name: Optional[str]) -> int:
            if name is not None:
                for names, entry in entries:
                    if names is None or name in names:
                        return entry
                return route.raise_to(name)
            dispatch = self._node(stmt, "exc-dispatch")
            caught_all = False
            for names, entry in entries:
                self._edge(dispatch, entry)
                if names is None:
                    caught_all = True
                    break
            if not caught_all:
                if route.call_to is not None:
                    self._edge(dispatch, route.call_to())
                else:
                    self._edge(dispatch, route.raise_to(None))
            return dispatch

        body_route = _Route(
            raise_to=body_raise_to,
            call_to=lambda: body_raise_to(None),
            return_to=route.return_to,
            break_to=route.break_to,
            continue_to=route.continue_to,
        )
        orelse = self.sequence(stmt.orelse, after, route)
        return self.sequence(stmt.body, orelse, body_route)


def build_cfg(function: FunctionLike) -> CFG:
    """The statement-level CFG of one (sync) function definition."""
    cfg = CFG()
    builder = _Builder(cfg)
    route = _Route(
        raise_to=lambda name: cfg.raise_exit,
        call_to=None,
        return_to=lambda: cfg.exit,
    )
    entry = builder.sequence(function.body, cfg.exit, route)
    cfg._link(cfg.entry, Edge(entry))
    return cfg


# ---------------------------------------------------------------------------
# Name binding / use extraction (statement-local, scope-aware)
# ---------------------------------------------------------------------------


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node* without descending into nested scopes."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _NESTED_SCOPES):
            continue
        yield from _walk_scope(child)


def stmt_defs(stmt: ast.AST) -> Set[str]:
    """Names a statement binds in the enclosing function's scope.

    Comprehension targets and anything inside a nested function or
    lambda are excluded — they bind in their own scope.
    """
    names: Set[str] = set()
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return {stmt.name}
    if isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.add(stmt.name)
        return names
    roots = _head_exprs(stmt) if isinstance(stmt, ast.stmt) else [stmt]
    if isinstance(stmt, ast.With):
        roots = list(roots) + [
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        ]
    for root in roots:
        for node in _walk_scope(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    names.add(bound)
    return names


def stmt_loads(stmt: ast.AST) -> Set[str]:
    """Names a statement reads (its own evaluation, nested scopes skipped)."""
    names: Set[str] = set()
    roots = (
        _head_exprs(stmt)
        if isinstance(stmt, (ast.stmt, ast.ExceptHandler))
        else [stmt]
    )
    for root in roots:
        for node in _walk_scope(root):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return names


def stmt_calls(stmt: ast.AST) -> List[ast.Call]:
    """Every call a statement's own evaluation performs."""
    calls: List[ast.Call] = []
    roots = (
        _head_exprs(stmt)
        if isinstance(stmt, (ast.stmt, ast.ExceptHandler))
        else [stmt]
    )
    for root in roots:
        for node in _walk_scope(root):
            if isinstance(node, ast.Call):
                calls.append(node)
    return calls


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


@dataclass
class ReachingDefinitions:
    """``in`` sets of a reaching-definitions pass: name -> defining nodes."""

    cfg: CFG
    in_defs: List[Dict[str, Set[int]]] = field(default_factory=list)

    def definitions_reaching(self, node: int, name: str) -> Set[int]:
        """CFG nodes whose binding of *name* can reach *node*'s entry."""
        return set(self.in_defs[node].get(name, set()))


def reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    """Classic forward worklist analysis over the statement CFG."""
    gens: List[Set[str]] = []
    for node in cfg.nodes:
        gens.append(stmt_defs(node.stmt) if node.stmt is not None else set())

    in_defs: List[Dict[str, Set[int]]] = [{} for __ in cfg.nodes]
    visited: Set[int] = set()
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        visited.add(index)
        out = {name: set(sites) for name, sites in in_defs[index].items()}
        for name in gens[index]:
            out[name] = {index}
        for edge in cfg.successors(index):
            target_in = in_defs[edge.target]
            changed = edge.target not in visited and edge.target not in worklist
            for name, sites in out.items():
                known = target_in.setdefault(name, set())
                if not sites <= known:
                    known |= sites
                    changed = True
            if changed:
                worklist.append(edge.target)
    return ReachingDefinitions(cfg, in_defs)


# ---------------------------------------------------------------------------
# The leak query
# ---------------------------------------------------------------------------


def _edge_implies_none(edge: Edge, name: str) -> bool:
    """True when following *edge* proves *name* is None/falsy."""
    test = edge.test
    if test is None or edge.branch is None:
        return False
    if isinstance(test, ast.Name) and test.id == name:
        return edge.branch is False
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.left, ast.Name)
        and test.left.id == name
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return edge.branch is True
        if isinstance(test.ops[0], ast.IsNot):
            return edge.branch is False
    return False


def leak_path_exists(
    cfg: CFG,
    start: int,
    name: str,
    blockers: Set[int],
    targets: Set[int],
    kinds: FrozenSet[str] = ALL_EDGE_KINDS,
) -> bool:
    """Whether some path leaks the resource bound to *name*.

    Starting from the *normal* successors of the acquiring node *start*
    (if the acquisition itself raised, no resource exists), follow edges
    whose kind is in *kinds*, never expanding a node in *blockers* (a
    release, an escape, or a re-binding of *name*) and pruning edges
    that prove *name* is None.  Returns True when any node in *targets*
    (typically ``{cfg.exit, cfg.raise_exit}``) is reachable.
    """
    frontier = [
        edge.target
        for edge in cfg.successors(start)
        if edge.kind == "step" and not _edge_implies_none(edge, name)
    ]
    seen: Set[int] = set(frontier)
    while frontier:
        current = frontier.pop()
        if current in targets:
            return True
        if current in blockers:
            continue
        for edge in cfg.successors(current):
            if edge.kind not in kinds:
                continue
            if _edge_implies_none(edge, name):
                continue
            if edge.target not in seen:
                seen.add(edge.target)
                frontier.append(edge.target)
    return False
