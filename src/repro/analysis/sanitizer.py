"""Runtime shm/lock sanitizer (``REPRO_SANITIZE=1``).

The static checkers prove lifecycle and lock discipline over the paths
the *source* admits; this sanitizer observes the paths a *process
actually takes*.  With ``REPRO_SANITIZE=1`` in the environment, the
shared-memory data plane (:mod:`repro.parallel.shm`) and the shared
bound (:mod:`repro.parallel.bound`) report their lifecycle events here:

* segment ``create``/``attach``/``detach``/``destroy`` keep a ledger;
  a segment created but never destroyed by this process is a **leak**
  (attach without detach is not — pool workers unmap at exit by
  design);
* lock ``acquire``/``release`` maintain a per-thread held-lock stack
  and a global acquisition-order graph; acquiring ``a`` then ``b`` in
  one place and ``b`` then ``a`` in another records a **lock-order
  violation** (the dynamic mirror of the ``lock-discipline`` checker's
  static rule).

At process exit an armed sanitizer prints its findings to stderr —
worker processes inherit the environment variable, so pool children
self-report too.  The test suite and the differential fuzzer instead
call :func:`check_clean` at deterministic points.  Hook call sites pay
a single cached environment check when the sanitizer is off; nothing
here imports the analysis engine, so arming it does not drag the
checker machinery into the hot path.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = [
    "Sanitizer",
    "SanitizerReport",
    "active",
    "check_clean",
    "enabled",
    "reset",
]

_ENV_VAR = "REPRO_SANITIZE"


def enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` arms the sanitizer in this process."""
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


@dataclass
class SanitizerReport:
    """What the sanitizer observed: leaks and lock-order violations."""

    leaked_segments: List[str] = field(default_factory=list)
    lock_order_violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.leaked_segments and not self.lock_order_violations

    def render(self) -> str:
        lines = ["repro sanitizer report:"]
        if self.clean:
            lines.append("  no leaked segments, no lock-order violations")
        for name in self.leaked_segments:
            lines.append(
                "  LEAK: segment %r created but never destroyed by this "
                "process" % name
            )
        for violation in self.lock_order_violations:
            lines.append("  LOCK-ORDER: %s" % violation)
        return "\n".join(lines)


class Sanitizer:
    """Per-process event ledger behind the module-level hooks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._created: Set[str] = set()
        self._destroyed: Set[str] = set()
        self._attached: Dict[str, int] = {}
        self._order: Dict[Tuple[str, str], str] = {}
        self._violations: List[str] = []
        self._violated_pairs: Set[FrozenSet[str]] = set()
        self._held = threading.local()

    # -- segment lifecycle -------------------------------------------------

    def on_create(self, name: str) -> None:
        with self._lock:
            self._created.add(name)
            self._destroyed.discard(name)

    def on_attach(self, name: str) -> None:
        with self._lock:
            self._attached[name] = self._attached.get(name, 0) + 1

    def on_detach(self, name: str) -> None:
        with self._lock:
            self._attached[name] = self._attached.get(name, 0) - 1

    def on_destroy(self, name: str) -> None:
        with self._lock:
            self._destroyed.add(name)

    # -- lock ordering -----------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquire(self, key: str) -> None:
        stack = self._stack()
        with self._lock:
            for outer in stack:
                if outer == key:
                    continue
                self._order.setdefault((outer, key), "%s -> %s" % (outer, key))
                reverse = (key, outer)
                pair = frozenset((outer, key))
                if reverse in self._order and pair not in self._violated_pairs:
                    self._violated_pairs.add(pair)
                    self._violations.append(
                        "%r acquired while holding %r, but the opposite "
                        "order (%s) was also observed — the two paths "
                        "deadlock under contention"
                        % (key, outer, self._order[reverse])
                    )
        stack.append(key)

    def on_release(self, key: str) -> None:
        stack = self._stack()
        if stack and stack[-1] == key:
            stack.pop()
        elif key in stack:  # released out of order; drop the entry anyway
            stack.remove(key)

    # -- reporting ---------------------------------------------------------

    def report(self) -> SanitizerReport:
        with self._lock:
            leaked = sorted(self._created - self._destroyed)
            violations = list(self._violations)
        return SanitizerReport(leaked, violations)

    def reset(self) -> None:
        with self._lock:
            self._created.clear()
            self._destroyed.clear()
            self._attached.clear()
            self._order.clear()
            self._violations.clear()
            self._violated_pairs.clear()


_SINGLETON: Optional[Sanitizer] = None


def active() -> Optional[Sanitizer]:
    """The process sanitizer, or ``None`` when not armed.

    The first armed call installs the atexit reporter; pool children
    re-run this in their own process (the environment variable is
    inherited) and therefore self-report.
    """
    global _SINGLETON
    if not enabled():
        return None
    if _SINGLETON is None:
        _SINGLETON = Sanitizer()
        atexit.register(_report_at_exit)
    return _SINGLETON


def reset() -> None:
    """Clear the ledger (tests run several joins per process)."""
    if _SINGLETON is not None:
        _SINGLETON.reset()


def check_clean() -> SanitizerReport:
    """The current report; raises ``RuntimeError`` when it is not clean.

    The differential fuzzer calls this after every shm round-trip so a
    leak is attributed to the case that caused it instead of surfacing
    as an end-of-process diagnostic.
    """
    sanitizer = active()
    if sanitizer is None:
        return SanitizerReport()
    report = sanitizer.report()
    if not report.clean:
        raise RuntimeError(report.render())
    return report


def _report_at_exit() -> None:
    if _SINGLETON is None:
        return
    report = _SINGLETON.report()
    if not report.clean:
        print(report.render(), file=sys.stderr)
