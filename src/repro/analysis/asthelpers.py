"""Small AST utilities shared by the domain checkers."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

__all__ = [
    "terminal_name",
    "identifier_words",
    "dataclass_field_names",
    "iter_functions",
    "attribute_reads",
    "getattr_literal_reads",
]


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name or attribute chain.

    ``s_k`` -> ``"s_k"``, ``buffer.s_k`` -> ``"s_k"``,
    ``sim.from_overlap(...)`` (the ``func``) -> ``"from_overlap"``;
    anything else -> ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def identifier_words(name: str) -> Set[str]:
    """The snake_case words of an identifier, lowercased."""
    return {word for word in name.lower().split("_") if word}


def dataclass_field_names(class_def: ast.ClassDef) -> List[str]:
    """Names of the annotated fields declared in a (dataclass) class body."""
    fields: List[str] = []
    for statement in class_def.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            fields.append(statement.target.id)
    return fields


def iter_functions(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Every function definition in *tree* with its enclosing class.

    Yields ``(function, enclosing_class)`` where the class is the nearest
    lexically enclosing ``ClassDef`` (``None`` for module-level and
    closure functions nested in plain functions).
    """

    def walk(
        node: ast.AST, enclosing: Optional[ast.ClassDef]
    ) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, enclosing
                yield from walk(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            else:
                yield from walk(child, enclosing)

    yield from walk(tree, None)


def attribute_reads(tree: ast.AST) -> Set[str]:
    """All attribute names read (``Load`` context) anywhere in *tree*."""
    reads: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            reads.add(node.attr)
    return reads


def getattr_literal_reads(tree: ast.AST) -> Set[str]:
    """Attribute names read via ``getattr(obj, "literal", ...)`` calls."""
    reads: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            reads.add(node.args[1].value)
    return reads
