"""The finding model shared by every checker and both CLI output modes.

A :class:`Finding` is one violated invariant at one source location.  It
is deliberately flat — checker id, location, message — so the text and
JSON renderers, the self-tests and the CI job all consume the same
object without adapters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location (sortable by location)."""

    #: Repo-relative posix path of the offending file.
    path: str
    #: 1-based line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Registered id of the checker that fired (e.g. ``"bound-safety"``).
    checker: str
    #: Human-readable description of the violated invariant.
    message: str

    def render(self) -> str:
        """The one-line text form: ``path:line:col: [checker] message``."""
        return "%s:%d:%d: [%s] %s" % (
            self.path, self.line, self.col, self.checker, self.message
        )

    def to_json(self) -> Dict[str, Union[str, int]]:
        """The JSON-object form used by ``repro lint --json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
            "message": self.message,
        }
