"""The lint engine: run registered checkers over a project.

One entry point for every consumer — the ``repro lint`` CLI, the
seeded-fault self-tests and the CI job all call :func:`run_checkers`
(or :func:`lint_paths`, which loads sources from disk first).  Syntax
errors surface as findings under the reserved ``syntax`` id rather than
exceptions, so one broken file cannot mask findings elsewhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .findings import Finding
from .project import Project, load_project
from .registry import all_checkers, checker_ids

__all__ = [
    "SYNTAX_CHECKER_ID",
    "UnknownCheckerError",
    "lint_paths",
    "run_checkers",
    "selected_checker_ids",
]

#: Reserved id for unparseable files (not a registered checker).
SYNTAX_CHECKER_ID = "syntax"


class UnknownCheckerError(ValueError):
    """A ``--select`` / ``--ignore`` id that no checker registered."""

    def __init__(self, unknown: Sequence[str]) -> None:
        self.unknown = list(unknown)
        super().__init__(
            "unknown checker id(s) %s (choose from %s)"
            % (
                ", ".join(sorted(self.unknown)),
                ", ".join(checker_ids() + [SYNTAX_CHECKER_ID]),
            )
        )


def selected_checker_ids(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[str]:
    """Resolve ``--select`` / ``--ignore`` into the ids to run.

    Raises :class:`UnknownCheckerError` on ids no checker registered —
    a misspelled id must fail loudly, not silently lint nothing.
    """
    known = set(checker_ids()) | {SYNTAX_CHECKER_ID}
    requested = list(select) if select else sorted(known)
    ignored = set(ignore) if ignore else set()
    unknown = [i for i in list(requested) + sorted(ignored) if i not in known]
    if unknown:
        raise UnknownCheckerError(unknown)
    return [i for i in requested if i not in ignored]


def run_checkers(
    project: Project,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """All findings of the selected checkers over *project*, sorted."""
    active = set(selected_checker_ids(select=select, ignore=ignore))
    findings: List[Finding] = []
    if SYNTAX_CHECKER_ID in active:
        for module in project.modules:
            if module.syntax_error is not None:
                error = module.syntax_error
                findings.append(
                    Finding(
                        path=module.path,
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                        checker=SYNTAX_CHECKER_ID,
                        message="file does not parse: %s" % error.msg,
                    )
                )
    for checker in all_checkers():
        if checker.id not in active:
            continue
        findings.extend(checker.check(project))
    return sorted(findings)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    base: Optional[Path] = None,
) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under *paths*.

    Returns ``(findings, file_count)``; raises :class:`FileNotFoundError`
    when a requested path does not exist and :class:`UnknownCheckerError`
    for bad checker ids (the CLI maps both to exit code 2).
    """
    project, missing = load_project(paths, base=base)
    if missing:
        raise FileNotFoundError("no such path(s): %s" % ", ".join(sorted(missing)))
    findings = run_checkers(project, select=select, ignore=ignore)
    return findings, len(project.modules)


def report_to_json(
    findings: Sequence[Finding], files: int, checkers: Sequence[str]
) -> Dict[str, Union[int, List[str], List[Dict[str, Union[str, int]]]]]:
    """The ``repro lint --json`` document."""
    return {
        "files": files,
        "checkers": list(checkers),
        "findings": [finding.to_json() for finding in findings],
    }
