"""The lint engine: run registered checkers over a project.

One entry point for every consumer — the ``repro lint`` CLI, the
seeded-fault self-tests and the CI job all call :func:`run_checkers`
(or :func:`lint_paths`, which loads sources from disk first).  Syntax
errors surface as findings under the reserved ``syntax`` id rather than
exceptions, so one broken file cannot mask findings elsewhere.

A finding can be silenced at its line with an inline
``# repro-lint: ignore[checker-id]`` comment (several ids separated by
commas).  Suppressions are themselves checked: one that silences
nothing is reported under the reserved ``unused-suppression`` id, so
stale ignores cannot quietly accumulate after the underlying code is
fixed.  A line may opt out of that meta-check by including
``unused-suppression`` among its own ids (for suppressions kept
deliberately, e.g. guarding platform-specific code).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .findings import Finding
from .project import Project, load_project
from .registry import all_checkers, checker_ids

__all__ = [
    "SYNTAX_CHECKER_ID",
    "UNUSED_SUPPRESSION_ID",
    "UnknownCheckerError",
    "lint_paths",
    "run_checkers",
    "selected_checker_ids",
]

#: Reserved id for unparseable files (not a registered checker).
SYNTAX_CHECKER_ID = "syntax"

#: Reserved id for ``# repro-lint: ignore[...]`` comments that silence
#: nothing (not a registered checker).
UNUSED_SUPPRESSION_ID = "unused-suppression"

#: Ids the engine owns; every other id belongs to a registered checker.
RESERVED_IDS = (SYNTAX_CHECKER_ID, UNUSED_SUPPRESSION_ID)


class UnknownCheckerError(ValueError):
    """A ``--select`` / ``--ignore`` id that no checker registered."""

    def __init__(self, unknown: Sequence[str]) -> None:
        self.unknown = list(unknown)
        super().__init__(
            "unknown checker id(s) %s (choose from %s)"
            % (
                ", ".join(sorted(self.unknown)),
                ", ".join(checker_ids() + list(RESERVED_IDS)),
            )
        )


def selected_checker_ids(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[str]:
    """Resolve ``--select`` / ``--ignore`` into the ids to run.

    Raises :class:`UnknownCheckerError` on ids no checker registered —
    a misspelled id must fail loudly, not silently lint nothing.
    """
    known = set(checker_ids()) | set(RESERVED_IDS)
    requested = list(select) if select else sorted(known)
    ignored = set(ignore) if ignore else set()
    unknown = [i for i in list(requested) + sorted(ignored) if i not in known]
    if unknown:
        raise UnknownCheckerError(unknown)
    return [i for i in requested if i not in ignored]


def run_checkers(
    project: Project,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """All findings of the selected checkers over *project*, sorted."""
    active = set(selected_checker_ids(select=select, ignore=ignore))
    findings: List[Finding] = []
    if SYNTAX_CHECKER_ID in active:
        for module in project.modules:
            if module.syntax_error is not None:
                error = module.syntax_error
                findings.append(
                    Finding(
                        path=module.path,
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                        checker=SYNTAX_CHECKER_ID,
                        message="file does not parse: %s" % error.msg,
                    )
                )
    for checker in all_checkers():
        if checker.id not in active:
            continue
        findings.extend(checker.check(project))
    return sorted(_apply_suppressions(project, findings, active))


def _apply_suppressions(
    project: Project, findings: List[Finding], active: Set[str]
) -> List[Finding]:
    """Filter inline-suppressed findings; flag suppressions that fired on
    nothing under :data:`UNUSED_SUPPRESSION_ID`."""
    by_path = {module.path: module for module in project.modules}
    kept: List[Finding] = []
    used: Set[Tuple[str, int]] = set()
    for finding in findings:
        module = by_path.get(finding.path)
        ids = module.suppressions.get(finding.line) if module else None
        if ids is not None and finding.checker in ids:
            used.add((finding.path, finding.line))
        else:
            kept.append(finding)
    if UNUSED_SUPPRESSION_ID not in active:
        return kept
    for module in project.modules:
        for line, ids in sorted(module.suppressions.items()):
            if (module.path, line) in used:
                continue
            if UNUSED_SUPPRESSION_ID in ids:
                continue  # deliberately-kept suppression, opted out
            kept.append(
                Finding(
                    path=module.path,
                    line=line,
                    col=0,
                    checker=UNUSED_SUPPRESSION_ID,
                    message=(
                        "suppression ignore[%s] silences nothing on this "
                        "line — remove it, or add %r to keep it "
                        "deliberately"
                        % (", ".join(sorted(ids)), UNUSED_SUPPRESSION_ID)
                    ),
                )
            )
    return kept


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    base: Optional[Path] = None,
) -> Tuple[List[Finding], int]:
    """Lint every ``.py`` file under *paths*.

    Returns ``(findings, file_count)``; raises :class:`FileNotFoundError`
    when a requested path does not exist and :class:`UnknownCheckerError`
    for bad checker ids (the CLI maps both to exit code 2).
    """
    project, missing = load_project(paths, base=base)
    if missing:
        raise FileNotFoundError("no such path(s): %s" % ", ".join(sorted(missing)))
    findings = run_checkers(project, select=select, ignore=ignore)
    return findings, len(project.modules)


def report_to_json(
    findings: Sequence[Finding], files: int, checkers: Sequence[str]
) -> Dict[str, Union[int, List[str], List[Dict[str, Union[str, int]]]]]:
    """The ``repro lint --json`` document."""
    return {
        "files": files,
        "checkers": list(checkers),
        "findings": [finding.to_json() for finding in findings],
    }
