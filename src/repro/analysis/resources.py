"""Resource acquisition/release/escape modeling over the CFG.

The two lifecycle checkers (``shm-lifecycle``, ``exception-safety``)
share one question — *can this acquired resource reach a function exit
unreleased?* — and differ only in what counts as a resource and which
exits they challenge.  This module owns the shared vocabulary:

* an :class:`Acquisition` is an ``x = <call>`` statement matched by a
  :class:`ResourceSpec` (``SharedMemory(...)``, ``create_segment(...)``,
  ``memoryview(...)``, ``open(...)``, ...);
* a **release** is a statement invoking one of the spec's release
  methods on the bound name (``x.close()``) or passing the bare name to
  a release function (``destroy_segment(x)``);
* an **escape** transfers ownership out of the function: returning or
  yielding the name, storing it into an attribute/subscript (that is
  how ``attach_collection`` parks the handle on the collection and how
  ``initialize_worker`` parks the segment in ``_STATE``), or aliasing
  it to another name.  Passing the name as a *call argument* is NOT an
  escape — the callee borrows, the caller still owns, and treating
  argument-passing as a transfer would blind the checker to exactly the
  leak it exists for (create the segment, hand it to the pool, forget
  the ``finally``).

The analysis is deliberately conservative in the safe direction for
aliases (an alias discharges the obligation — the checker does not
track ownership through multiple names) and deliberately strict for the
paths it does follow: the caller picks the CFG edge kinds, so
``exception-safety`` challenges only explicit-``raise`` error paths
while ``shm-lifecycle`` challenges normal completion too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .dataflow import (
    CFG,
    build_cfg,
    leak_path_exists,
    stmt_calls,
    stmt_defs,
)

__all__ = [
    "Acquisition",
    "ResourceSpec",
    "find_acquisitions",
    "iter_sync_functions",
    "leaking_acquisitions",
]


@dataclass(frozen=True)
class ResourceSpec:
    """How one resource class is acquired and released.

    ``constructors`` are terminal callable names whose result is the
    resource (``SharedMemory``, ``memoryview``, ``open``).  A release is
    either ``name.<release_method>()`` or ``<release_func>(name)``.
    """

    kind: str
    constructors: FrozenSet[str]
    release_methods: FrozenSet[str] = frozenset()
    release_funcs: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Acquisition:
    """One tracked ``name = <constructor>(...)`` statement."""

    stmt: ast.Assign
    name: str
    spec: ResourceSpec


def _terminal_callable(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a call's ``func`` expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def iter_sync_functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every synchronous function definition in *tree* (methods too)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def find_acquisitions(
    function: ast.FunctionDef, specs: Sequence[ResourceSpec]
) -> List[Acquisition]:
    """Every ``name = <constructor>(...)`` statement in *function*.

    Only single-Name targets are tracked — tuple unpacking and
    attribute targets never occur for the resource classes modeled here,
    and the escape rules already treat attribute stores as transfers.
    Nested function bodies are excluded (they get their own CFG).
    """
    acquisitions: List[Acquisition] = []
    for stmt in _function_statements(function):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        constructed = {
            name
            for call in stmt_calls(stmt)
            if (name := _terminal_callable(call.func)) is not None
        }
        for spec in specs:
            if constructed & spec.constructors:
                acquisitions.append(Acquisition(stmt, target.id, spec))
                break
    return acquisitions


def _function_statements(function: ast.FunctionDef) -> Iterator[ast.stmt]:
    """Statements of *function*'s own body, not of nested functions."""

    def walk(stmts: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield stmt
            for field in ("body", "orelse", "finalbody"):
                yield from walk(getattr(stmt, field, []))
            for handler in getattr(stmt, "handlers", []):
                yield from walk(handler.body)

    yield from walk(function.body)


def _is_release(stmt: ast.AST, acquisition: Acquisition) -> bool:
    """Whether *stmt*'s own evaluation releases the acquired name."""
    for call in stmt_calls(stmt):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in acquisition.spec.release_methods
            and isinstance(func.value, ast.Name)
            and func.value.id == acquisition.name
        ):
            return True
        terminal = _terminal_callable(func)
        if terminal in acquisition.spec.release_funcs and any(
            isinstance(arg, ast.Name) and arg.id == acquisition.name
            for arg in call.args
        ):
            return True
    return False


def _loads_outside_calls(node: ast.AST, name: str) -> bool:
    """Whether *name* is read in *node* outside any call's subtree.

    ``source = segment`` escapes; ``outcome = run(segment)`` does not —
    the callee only borrows the reference for the duration of the call.
    """
    if isinstance(node, ast.Call):
        return False
    if isinstance(node, ast.Name):
        return node.id == name and isinstance(node.ctx, ast.Load)
    return any(
        _loads_outside_calls(child, name) for child in ast.iter_child_nodes(node)
    )


def _is_escape(stmt: ast.AST, name: str) -> bool:
    """Whether *stmt* transfers ownership of *name* out of the function."""
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _name_loaded_anywhere(stmt.value, name)
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = stmt.value
        return value is not None and _loads_outside_calls(value, name)
    if isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, (ast.Yield, ast.YieldFrom)
    ):
        return _name_loaded_anywhere(stmt.value, name)
    return False


def _name_loaded_anywhere(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Name)
        and child.id == name
        and isinstance(child.ctx, ast.Load)
        for child in ast.walk(node)
    )


def leaking_acquisitions(
    function: ast.FunctionDef,
    specs: Sequence[ResourceSpec],
    kinds: FrozenSet[str],
    include_normal_exit: bool,
) -> List[Tuple[Acquisition, CFG]]:
    """Acquisitions in *function* with an unreleased path to an exit.

    *kinds* selects which CFG edges a leak path may follow (see
    :mod:`repro.analysis.dataflow`); *include_normal_exit* decides
    whether normal completion is challenged in addition to the
    exceptional exit.
    """
    acquisitions = find_acquisitions(function, specs)
    if not acquisitions:
        return []
    cfg = build_cfg(function)
    targets = {cfg.raise_exit}
    if include_normal_exit:
        targets.add(cfg.exit)
    leaking: List[Tuple[Acquisition, CFG]] = []
    for acquisition in acquisitions:
        start_nodes = set(cfg.nodes_for(acquisition.stmt))
        blockers: Set[int] = set()
        for node in cfg.nodes:
            if node.stmt is None or node.index in start_nodes:
                continue
            if (
                _is_release(node.stmt, acquisition)
                or _is_escape(node.stmt, acquisition.name)
                or acquisition.name in stmt_defs(node.stmt)
            ):
                blockers.add(node.index)
        if any(
            leak_path_exists(
                cfg, start, acquisition.name, blockers, targets, kinds
            )
            for start in start_nodes
        ):
            leaking.append((acquisition, cfg))
    return leaking
