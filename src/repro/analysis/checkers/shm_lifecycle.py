"""``shm-lifecycle`` — every shared-memory segment create reaches a destroy.

The zero-copy data plane's one hard contract (see
:mod:`repro.parallel.shm`): the creating process owns the segment and
must unlink it on every exit — success, worker crash, and
KeyboardInterrupt alike.  A segment that misses its ``destroy_segment``
survives on ``/dev/shm`` until reboot; the test suite catches that *at
runtime* (the ``leaked_segments`` fixture), but only on the paths a test
actually executes.  This checker proves it on **all** paths: for every
``x = SharedMemory(...)`` / ``x = create_segment(...)`` style
acquisition it walks the function's CFG (``finally`` bodies duplicated
per continuation, ``with`` blocks modeled, ``raise`` statements routed
type-aware to their handlers) and flags any path to a function exit that
hits neither a release (``close``/``unlink``/``detach``/
``destroy_segment``) nor an ownership transfer (return, attribute or
subscript store, alias).

Paths are challenged along normal flow and explicit-``raise`` edges.
Call-origin exception edges are exempt: intraprocedurally *every* call
can raise, and demanding cleanup on all of them would flag the
deliberate design of ``attach_collection`` (reader-side handles are
pinned by the views and unmapped at process exit).  The owner-side
``finally`` blocks that this checker does demand also cover those
paths in practice.
"""

from __future__ import annotations

from typing import Iterator

from ..dataflow import ALL_EDGE_KINDS
from ..findings import Finding
from ..project import Project
from ..registry import Checker, register
from ..resources import ResourceSpec, iter_sync_functions, leaking_acquisitions

__all__ = ["ShmLifecycleChecker"]

#: Normal flow plus explicit raises; call-origin exception edges exempt.
_PATH_KINDS = ALL_EDGE_KINDS - {"call"}

_SPECS = (
    ResourceSpec(
        kind="shared-memory handle",
        constructors=frozenset({"SharedMemory", "_Segment"}),
        release_methods=frozenset({"close", "unlink"}),
        release_funcs=frozenset({"destroy_segment"}),
    ),
    ResourceSpec(
        kind="shared-memory segment",
        constructors=frozenset({"create_segment", "_build_segment"}),
        release_funcs=frozenset({"destroy_segment"}),
    ),
    ResourceSpec(
        kind="attached segment",
        constructors=frozenset({"attach_collection"}),
        release_methods=frozenset({"detach", "close"}),
    ),
)


@register
class ShmLifecycleChecker(Checker):
    """Segment creates must reach destroy/close/transfer on every path."""

    id = "shm-lifecycle"
    description = (
        "every SharedMemory/segment acquisition must reach a destroy/"
        "close or an ownership transfer on every path, exceptions "
        "included"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules():
            assert module.tree is not None
            for function in iter_sync_functions(module.tree):
                for acquisition, cfg in leaking_acquisitions(
                    function, _SPECS, _PATH_KINDS, include_normal_exit=True
                ):
                    del cfg  # location comes from the acquisition itself
                    yield self.finding(
                        module,
                        acquisition.stmt,
                        "%s %r acquired in %r can reach a function exit "
                        "without %s; release it in a finally block (or "
                        "transfer ownership) so every path — including "
                        "exceptions — unlinks it"
                        % (
                            acquisition.spec.kind,
                            acquisition.name,
                            function.name,
                            _release_words(acquisition.spec),
                        ),
                    )


def _release_words(spec: ResourceSpec) -> str:
    names = sorted(spec.release_methods) + sorted(
        "%s()" % func for func in spec.release_funcs
    )
    return "/".join(names) or "a release"
