"""``registry-coverage`` — every top-k join backend is differentially fuzzed.

The differential oracle (:mod:`repro.oracle.differential`) is the
correctness net: a backend it never runs can drift arbitrarily far from
the reference without any test noticing.  The rule: every public
top-level function whose name contains ``topk_join`` — the naming
convention every exact top-k entry point in this repo follows
(``topk_join``, ``topk_join_rs``, ``pptopk_join``, ``parallel_topk_join``,
``weighted_topk_join``) — must be referenced somewhere in
``oracle/differential.py``.

Exemptions are explicit and carry their justification, so a reviewer
sees exactly why a backend is allowed to skip the fuzzer.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from ..findings import Finding
from ..project import Project
from ..registry import Checker, register

__all__ = ["RegistryCoverageChecker"]

_DIFFERENTIAL_MODULE = "oracle/differential.py"
_BACKEND_MARKER = "topk_join"

#: Package prefixes that host backends (everything else — the oracle
#: itself, the analyzer, benchmarks, the CLI — is not a backend).
_EXCLUDED_PREFIXES = ("oracle/", "analysis/", "bench/")
_EXCLUDED_MODULES = ("cli.py", "__main__.py")

#: name -> reason it may legitimately skip the differential registry.
_EXEMPT: Dict[str, str] = {
    "topk_join_iter": (
        "the progressive iterator is the body of topk_join; every "
        "differential case drives it through the wrapper"
    ),
}


def _referenced_names(tree: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.name.split(".")[-1])
    return names


@register
class RegistryCoverageChecker(Checker):
    """Top-k join backends missing from the differential fuzzer."""

    id = "registry-coverage"
    description = (
        "every public *topk_join* backend must be exercised by "
        "oracle/differential.py (or carry an explicit exemption)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        differential = project.module(_DIFFERENTIAL_MODULE)
        if differential is None or differential.tree is None:
            return
        covered = _referenced_names(differential.tree)
        for module, function in self._backends(project):
            name = function.name
            if name in covered or name in _EXEMPT:
                continue
            yield self.finding(
                module,
                function,
                "backend %r is never referenced by oracle/differential.py "
                "— register it (or add an explicit exemption with a "
                "reason) so the fuzzer cross-checks it against the oracle"
                % name,
            )

    def _backends(self, project: Project) -> Iterator[Tuple[object, ast.FunctionDef]]:
        for module in project.repro_modules():
            repro_path = module.repro_path or ""
            if repro_path.startswith(_EXCLUDED_PREFIXES):
                continue
            if repro_path in _EXCLUDED_MODULES:
                continue
            assert module.tree is not None
            for node in module.tree.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and _BACKEND_MARKER in node.name
                    and not node.name.startswith("_")
                ):
                    yield module, node
