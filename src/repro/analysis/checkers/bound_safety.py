"""``bound-safety`` — no exact float comparison or floor division in bound math.

The join's correctness rests on bound formulas (``ub_p``, ``ub_i``, the
accessing bound, α) never undercutting the true similarity.  Two bug
classes silently violate that:

* **float equality** on similarity/bound values.  The production code
  has no legitimate use for ``==`` / ``!=`` between similarity-valued
  floats: monotone quantities (``s_k`` and its caches) compare with
  ``>``; identity-of-computation checks compare integer sequence
  numbers.  The oracle layer (``repro/oracle/``) is exempt — it is the
  referee and recomputes bounds through an independent path where exact
  equality is the point — as are the blessed epsilon helpers in
  ``repro/similarity/epsilon.py``.

* **floor division** inside a bound formula.  ``o // union`` truncates
  toward zero and makes the bound *too tight*, dropping true results —
  the exact failure mode PAPERS.md's bitmap-filter work warns about.
  Integer bound arithmetic that is provably floor-safe belongs in a
  helper outside the bound-formula namespace (cf.
  ``signature_overlap_bound``, which bounds an integer overlap with a
  shift).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..asthelpers import identifier_words, iter_functions, terminal_name
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["BoundSafetyChecker"]

#: Identifier words marking a similarity-valued expression.
_SIM_WORDS = frozenset({"bound", "bounds", "similarity", "sim", "threshold", "cutoff"})

#: Calls whose result is a similarity/bound value.
_SIM_VALUED_CALLS = frozenset(
    {
        "from_overlap",
        "similarity",
        "verify",
        "probing_upper_bound",
        "indexing_upper_bound",
        "accessing_upper_bound",
        "accessing_cutoff",
    }
)

#: Function names that constitute bound formulas (floor division banned).
_BOUND_FORMULA_RE = re.compile(
    r"(upper_bound|lower_bound|cutoff|from_overlap|required_overlap"
    r"|prefix_length|_raw_|overlap_bound)"
)

#: Modules exempt from the float-equality rule (the referee layer).
_EXEMPT_PREFIXES = ("oracle/", "analysis/")
_EPSILON_MODULE = "similarity/epsilon.py"


def _is_similarity_valued(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_similarity_valued(node.operand)
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in _SIM_VALUED_CALLS
    name = terminal_name(node)
    if name is None:
        return False
    if "s_k" in name.lower():
        return True
    return bool(_SIM_WORDS & identifier_words(name))


def _compares_none(comparison: ast.Compare) -> bool:
    operands = [comparison.left] + list(comparison.comparators)
    return any(isinstance(op, ast.Constant) and op.value is None for op in operands)


@register
class BoundSafetyChecker(Checker):
    """Exact float comparison / floor division in bound arithmetic."""

    id = "bound-safety"
    description = (
        "no float ==/!= on similarity or bound values outside the blessed "
        "epsilon helpers; no floor division inside bound formulas"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules():
            repro_path = module.repro_path or ""
            if repro_path == _EPSILON_MODULE:
                continue
            if not repro_path.startswith(_EXEMPT_PREFIXES):
                yield from self._float_equality(module)
            yield from self._floor_division(module)

    def _float_equality(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if _compares_none(node):
                continue
            operands = [node.left] + list(node.comparators)
            offender: Optional[ast.expr] = next(
                (op for op in operands if _is_similarity_valued(op)), None
            )
            if offender is None:
                continue
            yield self.finding(
                module,
                node,
                "exact ==/!= on similarity-valued expression %r; use a "
                "monotone comparison (>, >=) or the epsilon helpers in "
                "repro.similarity.epsilon" % ast.unparse(offender),
            )

    def _floor_division(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        for function, __ in iter_functions(module.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _BOUND_FORMULA_RE.search(function.name):
                continue
            for node in ast.walk(function):
                floordiv = (
                    isinstance(node, (ast.BinOp, ast.AugAssign))
                    and isinstance(node.op, ast.FloorDiv)
                )
                if floordiv:
                    yield self.finding(
                        module,
                        node,
                        "floor division inside bound formula %r truncates "
                        "toward zero and can make the bound undercut the "
                        "true similarity; use true division (or math.ceil "
                        "for integer thresholds)" % function.name,
                    )
