"""``lock-discipline`` — flow-sensitive rules for cross-process state.

The pattern-based ``race`` checker enforces the *lexical* contract
(``.value`` writes sit inside ``with <cell>.get_lock():``; only the
blessed initializer installs worker state).  Three bug classes slip
through a lexical check and need the dataflow layer:

* **compare-then-lock (TOCTOU)** — the guard ``if candidate >
  cell.value:`` evaluated *outside* the lock that protects the update
  inside.  Both the read and the write are individually blessed, but
  between them another process can publish a larger bound and the
  locked write moves the shared maximum backwards.  The correct shape
  (what ``SharedSimilarityBound.offer`` does) takes the lock first and
  compares inside it.

* **inconsistent acquisition order** — ``with a.get_lock(): with
  b.get_lock():`` in one place and the reverse nesting in another is a
  deadlock waiting for contention.  The checker collects every nested
  acquisition pair in the module and flags a pair acquired in both
  orders.

* **bare shared-object mutation** — a worker/stream function that
  mutates an attribute or element of an object it *loaded from the
  shared worker state* (a subscript of a module-level container such as
  ``_STATE``).  Reaching definitions connect the local name back to the
  load, so aliasing does not hide the write; writes under a held
  ``get_lock()`` and the blessed install/teardown functions are exempt.
  Writing through the module-level container itself is the ``race``
  checker's territory — this rule covers the aliased object the
  lexical checker cannot see.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..dataflow import CFG, ReachingDefinitions, build_cfg, reaching_definitions
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register
from ..resources import iter_sync_functions

__all__ = ["LockDisciplineChecker"]

_SCOPE_PREFIXES = ("parallel/", "stream/")

#: Functions allowed to install/tear down shared state wholesale.
_BLESSED_WRITERS = frozenset(
    {"initialize_worker", "teardown_worker", "__init__", "__enter__", "__exit__"}
)


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for statement in tree.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _lock_bases(node: ast.With) -> List[str]:
    """Rendered base expressions of every ``get_lock()`` item of *node*.

    Walks each context expression in full so a lock threaded through a
    wrapper — the runtime sanitizer's ``_tracked(cell.get_lock(), ...)``
    — is still recognized as an acquisition of that cell's lock.
    """
    bases: List[str] = []
    for item in node.items:
        for expr in ast.walk(item.context_expr):
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "get_lock"
            ):
                bases.append(ast.unparse(expr.func.value))
    return bases


def _value_bases_read(node: ast.AST) -> Set[str]:
    """Rendered bases of every ``<base>.value`` read inside *node*."""
    bases: Set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and child.attr == "value"
            and isinstance(child.ctx, ast.Load)
        ):
            bases.add(ast.unparse(child.value))
    return bases


def _writes_value_of(node: ast.AST, base: str) -> bool:
    """Whether *node* contains a store to ``<base>.value``."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and child.attr == "value"
            and isinstance(child.ctx, ast.Store)
            and ast.unparse(child.value) == base
        ):
            return True
    return False


@register
class LockDisciplineChecker(Checker):
    """Flow-sensitive lock rules over ``parallel/`` and ``stream/``."""

    id = "lock-discipline"
    description = (
        "no compare-then-lock on shared cells, one global lock "
        "acquisition order, and no bare mutation of objects loaded "
        "from shared worker state"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for prefix in _SCOPE_PREFIXES:
            for module in project.repro_modules(prefix):
                assert module.tree is not None
                yield from self._compare_then_lock(module)
                yield from self._acquisition_order(module)
                yield from self._aliased_shared_writes(module)

    # -- rule 1: TOCTOU ----------------------------------------------------

    def _compare_then_lock(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.If, ast.While)):
                continue
            read_bases = _value_bases_read(node.test)
            if not read_bases:
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.With):
                    continue
                for base in _lock_bases(inner):
                    if base in read_bases and _writes_value_of(inner, base):
                        yield self.finding(
                            module,
                            node,
                            "compare-then-lock on shared cell %s: the "
                            "guard reads %s.value outside the lock that "
                            "protects the update inside — another process "
                            "can publish between the check and the "
                            "acquisition; take the lock first and compare "
                            "under it" % (base, base),
                        )

    # -- rule 2: acquisition order ----------------------------------------

    def _acquisition_order(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        edges: Dict[Tuple[str, str], ast.With] = {}

        def walk(node: ast.AST, held: List[str]) -> None:
            acquired: List[str] = []
            if isinstance(node, ast.With):
                acquired = _lock_bases(node)
                for inner in acquired:
                    for outer in held:
                        edges.setdefault((outer, inner), node)
                held.extend(acquired)
            for child in ast.iter_child_nodes(node):
                walk(child, held)
            for __ in acquired:
                held.pop()

        walk(module.tree, [])
        for (outer, inner), node in sorted(
            edges.items(), key=lambda entry: entry[1].lineno
        ):
            if (inner, outer) in edges and outer < inner:
                other = edges[(inner, outer)]
                yield self.finding(
                    module,
                    node if node.lineno >= other.lineno else other,
                    "inconsistent lock order: %s.get_lock() nests inside "
                    "%s.get_lock() here, but the opposite nesting exists "
                    "at line %d — under contention the two paths deadlock"
                    % (
                        inner,
                        outer,
                        min(node.lineno, other.lineno),
                    ),
                )

    # -- rule 3: aliased shared-object writes ------------------------------

    def _aliased_shared_writes(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        containers = _module_level_names(module.tree)
        if not containers:
            return
        for function in iter_sync_functions(module.tree):
            if function.name in _BLESSED_WRITERS:
                continue
            yield from self._writes_in(module, function, containers)

    def _writes_in(
        self,
        module: ModuleSource,
        function: ast.FunctionDef,
        containers: Set[str],
    ) -> Iterator[Finding]:
        locked = _statements_under_locks(function)
        cfg = build_cfg(function)
        reaching = reaching_definitions(cfg)
        for node in cfg.nodes:
            stmt = node.stmt
            if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                continue
            if id(stmt) in locked:
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                base = target.value
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                if self._comes_from_shared_state(
                    cfg, reaching, node.index, base.id, containers
                ):
                    yield self.finding(
                        module,
                        stmt,
                        "function %r mutates %s, an object loaded from "
                        "shared worker state: under a process pool the "
                        "write is process-local (fork) or lost (spawn), "
                        "and under threads it races — publish through "
                        "SharedSimilarityBound/a Value or hold its lock"
                        % (function.name, ast.unparse(target)),
                    )

    @staticmethod
    def _comes_from_shared_state(
        cfg: CFG,
        reaching: ReachingDefinitions,
        node_index: int,
        name: str,
        containers: Set[str],
    ) -> bool:
        sites = reaching.definitions_reaching(node_index, name)
        for site in sites:
            stmt = cfg.nodes[site].stmt
            if stmt is None:
                continue
            for child in ast.walk(stmt):
                if (
                    isinstance(child, ast.Subscript)
                    and isinstance(child.ctx, ast.Load)
                    and isinstance(child.value, ast.Name)
                    and child.value.id in containers
                ):
                    return True
        return False


def _statements_under_locks(function: ast.FunctionDef) -> Set[int]:
    """``id()`` of every statement lexically inside a ``get_lock()`` with."""
    inside: Set[int] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.With) and _lock_bases(node):
            for child in ast.walk(node):
                if isinstance(child, ast.stmt):
                    inside.add(id(child))
    return inside
