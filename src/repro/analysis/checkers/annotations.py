"""``annotations`` — full type annotations across the repro package.

``mypy --strict`` is the real type gate (wired in CI), but it needs mypy
installed; this checker is the dependency-free completeness proxy that
runs everywhere ``repro lint`` runs: every function in ``src/repro`` —
public or private, method or closure — must annotate every parameter and
its return type.  That is exactly the surface ``--strict``'s
``disallow_untyped_defs`` / ``disallow_incomplete_defs`` reject, so a
clean ``repro lint`` keeps the annotation sweep from regressing even on
machines without mypy.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from ..asthelpers import iter_functions
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["AnnotationsChecker"]

_SELF_NAMES = frozenset({"self", "cls"})


def _missing_annotations(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> List[str]:
    missing: List[str] = []
    arguments = function.args
    positional = list(arguments.posonlyargs) + list(arguments.args)
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in _SELF_NAMES:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in arguments.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if arguments.vararg is not None and arguments.vararg.annotation is None:
        missing.append("*" + arguments.vararg.arg)
    if arguments.kwarg is not None and arguments.kwarg.annotation is None:
        missing.append("**" + arguments.kwarg.arg)
    if function.returns is None:
        missing.append("return")
    return missing


@register
class AnnotationsChecker(Checker):
    """Functions with unannotated parameters or return types."""

    id = "annotations"
    description = (
        "every function in src/repro must annotate all parameters and its "
        "return type (the local proxy for mypy --strict)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules():
            yield from self._check_module(module)

    def _check_module(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        for function, __ in iter_functions(module.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing = _missing_annotations(function)
            if missing:
                yield self.finding(
                    module,
                    function,
                    "function %r is missing annotations for: %s"
                    % (function.name, ", ".join(missing)),
                )
