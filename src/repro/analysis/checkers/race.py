"""``race`` — shared-state discipline of the multiprocessing backend.

The sharded backend's one piece of cross-process state is the shared
``s_k`` bound (:mod:`repro.parallel.bound`); everything else shipped to a
worker is read-only after ``initialize_worker`` installs it.  Two rules
keep that true statically:

* **worker-side global mutation** — inside ``repro/parallel/``, only the
  blessed initializer (``initialize_worker``) may write module-level or
  closed-over state.  Any other function that declares ``global`` /
  ``nonlocal``, assigns into a module-level container, or calls a
  mutating method on one is flagged: under a process pool such writes
  are silently per-process (fork) or lost (spawn), and under threads
  they are races.

* **un-locked shared-bound write** — a write to ``<obj>.value`` (the
  payload of a ``multiprocessing.Value``) must sit lexically inside
  ``with <obj>.get_lock():``.  Un-locked *reads* stay legal — the bound
  is monotone, so a stale read only weakens pruning — but a read-
  modify-write without the lock can move the published bound backwards,
  and a regressed bound breaks the monotonicity every pruning lemma
  assumes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..asthelpers import terminal_name
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["RaceChecker"]

_SCOPE_PREFIX = "parallel/"

#: Functions allowed to install (or tear down) module-level worker state.
#: ``teardown_worker`` is the initializer's inverse — the serial
#: shared-memory round-trip must drop the installed context so the
#: segment can detach deterministically.
_BLESSED_WRITERS = frozenset({"initialize_worker", "teardown_worker"})

#: Container methods that mutate their receiver.
_MUTATORS = frozenset(
    {
        "update",
        "setdefault",
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "clear",
        "pop",
        "popitem",
    }
)


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound by module-level (ann)assignments."""
    names: Set[str] = set()
    for statement in tree.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _base_name(node: ast.expr) -> ast.expr:
    """The root expression of a subscript/attribute chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node


class _LockTracker(ast.NodeVisitor):
    """Collects ``.value`` writes outside a ``with <base>.get_lock():``."""

    def __init__(self) -> None:
        self.unlocked_writes: List[ast.AST] = []
        self._held_locks: List[str] = []

    def visit_With(self, node: ast.With) -> None:
        # Walk the whole context expression (not just its head call) so a
        # lock passed through a wrapper — the runtime sanitizer's
        # ``_tracked(cell.get_lock(), ...)`` — still counts as held.
        acquired: List[str] = []
        for item in node.items:
            for expr in ast.walk(item.context_expr):
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "get_lock"
                ):
                    acquired.append(ast.unparse(expr.func.value))
        self._held_locks.extend(acquired)
        self.generic_visit(node)
        for __ in acquired:
            self._held_locks.pop()

    def _record_if_unlocked(self, target: ast.expr, node: ast.AST) -> None:
        if not (isinstance(target, ast.Attribute) and target.attr == "value"):
            return
        base = ast.unparse(target.value)
        if base not in self._held_locks:
            self.unlocked_writes.append(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_if_unlocked(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_if_unlocked(node.target, node)
        self.generic_visit(node)


@register
class RaceChecker(Checker):
    """Worker-side shared-state writes in ``repro/parallel/``."""

    id = "race"
    description = (
        "parallel workers must not mutate module-level/closed-over state "
        "outside initialize_worker, and every shared-bound .value write "
        "must hold get_lock()"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules(_SCOPE_PREFIX):
            assert module.tree is not None
            yield from self._global_mutations(module)
            yield from self._unlocked_bound_writes(module)

    def _global_mutations(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        module_names = _module_level_names(module.tree)
        for statement in module.tree.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if statement.name in _BLESSED_WRITERS:
                continue
            yield from self._mutations_in(module, statement, module_names)

    def _mutations_in(
        self,
        module: ModuleSource,
        function: ast.AST,
        module_names: Set[str],
    ) -> Iterator[Finding]:
        name = getattr(function, "name", "<function>")
        for node in ast.walk(function):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.finding(
                    module,
                    node,
                    "worker function %r rebinds enclosing-scope state "
                    "(%s %s); only initialize_worker may install shared "
                    "state"
                    % (
                        name,
                        "global"
                        if isinstance(node, ast.Global)
                        else "nonlocal",
                        ", ".join(node.names),
                    ),
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    base = _base_name(target)
                    if isinstance(base, ast.Name) and base.id in module_names:
                        yield self.finding(
                            module,
                            node,
                            "worker function %r writes module-level state "
                            "%r; per-process writes diverge under "
                            "multiprocessing — pass state through task "
                            "arguments or initialize_worker"
                            % (name, ast.unparse(target)),
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    base = _base_name(func.value)
                    if isinstance(base, ast.Name) and base.id in module_names:
                        yield self.finding(
                            module,
                            node,
                            "worker function %r mutates module-level state "
                            "via %s()" % (name, ast.unparse(func)),
                        )

    def _unlocked_bound_writes(self, module: ModuleSource) -> Iterator[Finding]:
        assert module.tree is not None
        tracker = _LockTracker()
        tracker.visit(module.tree)
        for node in tracker.unlocked_writes:
            yield self.finding(
                module,
                node,
                "write to a shared multiprocessing Value payload without "
                "holding get_lock(); an un-serialized read-modify-write "
                "can move the published s_k bound backwards",
            )
