"""``options-plumbing`` — every ``TopkOptions`` field reaches every backend.

A new ``TopkOptions`` flag is wired correctly only if (a) something
actually reads it and (b) the parallel backend forwards it to the
workers.  Both failure modes are silent — the flag parses, defaults
apply, results stay plausible — so they are checked statically:

* **dead flag** — every field declared on ``TopkOptions`` must be read
  (``options.field`` or ``getattr(options, "field", ...)``) somewhere in
  the repro package outside the declaring class.  A field nobody reads
  is a no-op waiting to be trusted.

* **rebuilt options** — inside ``repro/parallel/``, constructing
  ``TopkOptions(...)`` from scratch is banned: any field not named in
  the call silently resets to its default under ``--workers``.  The
  parallel layer must derive per-task options via ``dataclasses.replace``
  on the caller's object, which forwards every field by construction.

* **non-blessed override** — ``replace()`` calls in ``repro/parallel/``
  may only override the per-task plumbing fields (``bound_provider``,
  ``bipartite_sides``, ``trace``).  Overriding anything else
  second-guesses the caller's configuration on one execution path only.

* **uninstalled plumbing field** — the inverse: every blessed field must
  actually appear as a ``replace()`` keyword somewhere in
  ``repro/parallel/``.  A field blessed but never installed means the
  parallel layer forgot its half of the contract — e.g. a tracer that
  silently rides into (or is dropped by) the workers under
  ``--workers`` while the sequential path honors it.

* **uninstalled entry parameter** — the parallel entry point's keyword
  surface (``workers``, ``shards``, ``shm``, ...) is plumbing of its own:
  every parameter ``parallel_topk_join`` accepts must be read somewhere
  in its body.  An accepted-but-unread parameter is the same silent
  failure one level up — the CLI forwards the flag, the signature
  swallows it, and the join runs as if it were never passed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..asthelpers import (
    attribute_reads,
    dataclass_field_names,
    getattr_literal_reads,
    terminal_name,
)
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["OptionsPlumbingChecker"]

_OPTIONS_MODULE = "core/topk_join.py"
_OPTIONS_CLASS = "TopkOptions"
_PARALLEL_PREFIX = "parallel/"

#: Fields the parallel layer installs per task (the plumbing itself).
#: ``trace`` is plumbing too: the parent's tracer must be stripped from
#: shipped options (it holds a lock) and worker-local tracers installed.
_BLESSED_OVERRIDES = frozenset({"bound_provider", "bipartite_sides", "trace"})

#: Modules whose presence signals the whole tree is being linted; the
#: dead-flag rule needs the full package to avoid false positives on
#: partial-tree runs.
_FULL_TREE_MODULES = ("core/topk_join.py", "parallel/join.py")

#: Public entry points whose parameter list is itself plumbing: every
#: parameter accepted by these functions must be read in their body.
_ENTRY_POINTS = {"parallel/join.py": ("parallel_topk_join",)}


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise LookupError(name)


@register
class OptionsPlumbingChecker(Checker):
    """Unread or unforwarded ``TopkOptions`` fields."""

    id = "options-plumbing"
    description = (
        "every TopkOptions field must be read somewhere and forwarded by "
        "the parallel backend via dataclasses.replace (never rebuilt), "
        "and every parallel entry-point parameter must be used"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        options_module = project.module(_OPTIONS_MODULE)
        if options_module is None or options_module.tree is None:
            return
        try:
            options_class = _find_class(options_module.tree, _OPTIONS_CLASS)
        except LookupError:
            return

        full_tree = all(project.module(path) is not None for path in _FULL_TREE_MODULES)
        if full_tree:
            yield from self._dead_flags(project, options_module, options_class)
        installed: Set[str] = set()
        parallel_modules = list(project.repro_modules(_PARALLEL_PREFIX))
        for module in parallel_modules:
            yield from self._parallel_construction(module, installed)
            yield from self._entry_plumbing(module)
        if full_tree and parallel_modules:
            declared = set(dataclass_field_names(options_class))
            for name in sorted((_BLESSED_OVERRIDES & declared) - installed):
                anchor = parallel_modules[0]
                assert anchor.tree is not None
                yield self.finding(
                    anchor,
                    anchor.tree.body[0] if anchor.tree.body else anchor.tree,
                    "TopkOptions.%s is blessed per-task plumbing but no "
                    "replace() in the parallel backend installs it — the "
                    "flag silently no-ops (or leaks the caller's object) "
                    "under --workers" % name,
                )

    def _dead_flags(
        self,
        project: Project,
        options_module: ModuleSource,
        options_class: ast.ClassDef,
    ) -> Iterator[Finding]:
        fields = dataclass_field_names(options_class)
        reads: Set[str] = set()
        for module in project.repro_modules():
            repro_path = module.repro_path or ""
            if repro_path.startswith("analysis/"):
                continue
            assert module.tree is not None
            tree: ast.AST = module.tree
            if module is options_module:
                # Ignore the declaring class body itself: an AnnAssign
                # default like ``maxdepth: int = DEFAULT_MAXDEPTH`` is
                # not a read of the field.
                tree = ast.Module(
                    body=[
                        node
                        for node in module.tree.body
                        if node is not options_class
                    ],
                    type_ignores=[],
                )
            reads |= attribute_reads(tree)
            reads |= getattr_literal_reads(tree)
        for field_node in options_class.body:
            if not (
                isinstance(field_node, ast.AnnAssign)
                and isinstance(field_node.target, ast.Name)
            ):
                continue
            name = field_node.target.id
            if name in fields and name not in reads:
                yield self.finding(
                    options_module,
                    field_node,
                    "TopkOptions.%s is never read anywhere in the repro "
                    "package — the flag is a silent no-op" % name,
                )

    def _entry_plumbing(self, module: ModuleSource) -> Iterator[Finding]:
        entry_names = _ENTRY_POINTS.get(module.repro_path or "", ())
        if not entry_names:
            return
        assert module.tree is not None
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in entry_names:
                continue
            # Positional and keyword-only parameters alike; the body is
            # walked statement by statement so parameter *annotations*
            # (which mention nothing) cannot mask a missing read.
            parameters = [
                arg.arg
                for arg in list(node.args.args) + list(node.args.kwonlyargs)
            ]
            reads = {
                name.id
                for statement in node.body
                for name in ast.walk(statement)
                if isinstance(name, ast.Name)
                and isinstance(name.ctx, ast.Load)
            }
            for parameter in parameters:
                if parameter not in reads:
                    yield self.finding(
                        module,
                        node,
                        "entry point %s() accepts %r but never reads it — "
                        "callers' flag parses and silently no-ops"
                        % (node.name, parameter),
                    )

    def _parallel_construction(
        self, module: ModuleSource, installed: Set[str]
    ) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = terminal_name(node.func)
            if name == _OPTIONS_CLASS and (node.args or node.keywords):
                # ``TopkOptions()`` with no arguments is fine — pure
                # defaults as the fallback when the caller passed None.
                # The bug is *partial* construction, which silently
                # resets every unnamed field.
                yield self.finding(
                    module,
                    node,
                    "the parallel backend constructs TopkOptions from "
                    "scratch; fields not named here silently reset to "
                    "their defaults under --workers — derive per-task "
                    "options with dataclasses.replace(caller_options, ...)",
                )
            elif name == "replace":
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    if keyword.arg in _BLESSED_OVERRIDES:
                        installed.add(keyword.arg)
                    else:
                        yield self.finding(
                            module,
                            node,
                            "replace() in the parallel backend overrides "
                            "TopkOptions.%s, which is not per-task "
                            "plumbing (%s); the parallel path would "
                            "diverge from the sequential one"
                            % (
                                keyword.arg,
                                ", ".join(sorted(_BLESSED_OVERRIDES)),
                            ),
                        )
