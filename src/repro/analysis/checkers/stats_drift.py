"""``stats-drift`` — mergeable stats classes must merge every field.

``TopkStats`` is aggregated across parallel tasks via ``merge_from`` /
``combined``.  A counter added to the dataclass but not to ``merge_from``
silently reads 0 under ``--workers`` while being correct sequentially —
exactly the kind of drift a benchmark comparison then mis-attributes to
the backend.  The rule is generic: **every** class in the repro package
that defines both dataclass-style annotated fields and a ``merge_from``
method must mention each field on both ``self`` and the merged-in
parameter inside ``merge_from``, and its ``combined`` classmethod (when
present) must delegate to ``merge_from`` rather than re-listing fields.

A second rule guards the observability bridge: the *absorber* functions
that fold a finished run's stats into the metrics registry
(``absorb_topk_stats`` for ``TopkStats``, ``absorb_join_stats`` for
``JoinStats``, see :mod:`repro.obs.metrics`) must read **every** field
of their source dataclass.  A counter added to the dataclass but not to
its absorber would be correct in the raw stats yet silently absent from
every exporter — Prometheus text, JSON traces and the phase tree would
all under-report without any test failing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from ..asthelpers import dataclass_field_names
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["StatsDriftChecker"]

#: Where the stats dataclasses the absorbers bridge from are declared.
_STATS_MODULE = "core/metrics.py"

#: Absorber function name -> source dataclass it must cover in full.
_ABSORBERS = {
    "absorb_topk_stats": "TopkStats",
    "absorb_join_stats": "JoinStats",
    "absorb_stream_stats": "StreamStats",
    "absorb_serve_stats": "ServeStats",
}


def _method(class_def: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in class_def.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _attributes_of(tree: ast.AST, receiver: str) -> Set[str]:
    """Attribute names accessed on the variable *receiver* in *tree*."""
    found: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == receiver
        ):
            found.add(node.attr)
    return found


@register
class StatsDriftChecker(Checker):
    """Fields missing from ``merge_from`` / ``combined`` aggregation."""

    id = "stats-drift"
    description = (
        "every field of a stats class with merge_from must be folded from "
        "the other instance into self, and combined must delegate to "
        "merge_from"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)
        yield from self._check_absorbers(project)

    def _check_class(
        self, module: ModuleSource, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        merge_from = _method(class_def, "merge_from")
        if merge_from is None:
            return
        fields = dataclass_field_names(class_def)
        if not fields:
            return
        args = merge_from.args.args
        if len(args) < 2:
            yield self.finding(
                module,
                merge_from,
                "%s.merge_from takes no source instance to merge from"
                % class_def.name,
            )
            return
        other = args[1].arg
        self_reads = _attributes_of(merge_from, args[0].arg)
        other_reads = _attributes_of(merge_from, other)
        for name in fields:
            if name not in self_reads or name not in other_reads:
                yield self.finding(
                    module,
                    merge_from,
                    "%s.%s is not merged by merge_from (missing on %s); "
                    "parallel runs silently drop this counter"
                    % (
                        class_def.name,
                        name,
                        "self and %s" % other
                        if name not in self_reads and name not in other_reads
                        else ("self" if name not in self_reads else other),
                    ),
                )
        combined = _method(class_def, "combined")
        if combined is not None:
            calls_merge = any(
                isinstance(node, ast.Attribute)
                and node.attr == "merge_from"
                for node in ast.walk(combined)
            )
            if not calls_merge:
                yield self.finding(
                    module,
                    combined,
                    "%s.combined does not delegate to merge_from; two "
                    "aggregation code paths will drift apart"
                    % class_def.name,
                )

    def _check_absorbers(self, project: Project) -> Iterator[Finding]:
        """Absorber functions must read every field of their source class.

        Skipped silently on partial-tree runs where the declaring module
        is not part of the lint target.
        """
        declaring = project.module(_STATS_MODULE)
        if declaring is None or declaring.tree is None:
            return
        fields_of: Dict[str, Set[str]] = {}
        for node in ast.walk(declaring.tree):
            if isinstance(node, ast.ClassDef) and node.name in _ABSORBERS.values():
                fields_of[node.name] = set(dataclass_field_names(node))
        for module in project.repro_modules():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.FunctionDef) and node.name in _ABSORBERS):
                    continue
                class_name = _ABSORBERS[node.name]
                fields = fields_of.get(class_name)
                if not fields:
                    continue
                receiver = _stats_param(node)
                if receiver is None:
                    yield self.finding(
                        module,
                        node,
                        "%s takes no stats parameter to absorb from"
                        % node.name,
                    )
                    continue
                reads = _attributes_of(node, receiver)
                for name in sorted(fields - reads):
                    yield self.finding(
                        module,
                        node,
                        "%s does not read %s.%s; the field is counted at "
                        "runtime but silently missing from every metric "
                        "exporter" % (node.name, class_name, name),
                    )


def _stats_param(func: ast.FunctionDef) -> Optional[str]:
    """The first non-self/cls positional parameter of *func*."""
    for arg in func.args.args:
        if arg.arg not in ("self", "cls"):
            return arg.arg
    return None
