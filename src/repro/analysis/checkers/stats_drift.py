"""``stats-drift`` — mergeable stats classes must merge every field.

``TopkStats`` is aggregated across parallel tasks via ``merge_from`` /
``combined``.  A counter added to the dataclass but not to ``merge_from``
silently reads 0 under ``--workers`` while being correct sequentially —
exactly the kind of drift a benchmark comparison then mis-attributes to
the backend.  The rule is generic: **every** class in the repro package
that defines both dataclass-style annotated fields and a ``merge_from``
method must mention each field on both ``self`` and the merged-in
parameter inside ``merge_from``, and its ``combined`` classmethod (when
present) must delegate to ``merge_from`` rather than re-listing fields.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..asthelpers import dataclass_field_names
from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["StatsDriftChecker"]


def _method(class_def: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in class_def.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _attributes_of(tree: ast.AST, receiver: str) -> Set[str]:
    """Attribute names accessed on the variable *receiver* in *tree*."""
    found: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == receiver
        ):
            found.add(node.attr)
    return found


@register
class StatsDriftChecker(Checker):
    """Fields missing from ``merge_from`` / ``combined`` aggregation."""

    id = "stats-drift"
    description = (
        "every field of a stats class with merge_from must be folded from "
        "the other instance into self, and combined must delegate to "
        "merge_from"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleSource, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        merge_from = _method(class_def, "merge_from")
        if merge_from is None:
            return
        fields = dataclass_field_names(class_def)
        if not fields:
            return
        args = merge_from.args.args
        if len(args) < 2:
            yield self.finding(
                module,
                merge_from,
                "%s.merge_from takes no source instance to merge from"
                % class_def.name,
            )
            return
        other = args[1].arg
        self_reads = _attributes_of(merge_from, args[0].arg)
        other_reads = _attributes_of(merge_from, other)
        for name in fields:
            if name not in self_reads or name not in other_reads:
                yield self.finding(
                    module,
                    merge_from,
                    "%s.%s is not merged by merge_from (missing on %s); "
                    "parallel runs silently drop this counter"
                    % (
                        class_def.name,
                        name,
                        "self and %s" % other
                        if name not in self_reads and name not in other_reads
                        else ("self" if name not in self_reads else other),
                    ),
                )
        combined = _method(class_def, "combined")
        if combined is not None:
            calls_merge = any(
                isinstance(node, ast.Attribute)
                and node.attr == "merge_from"
                for node in ast.walk(combined)
            )
            if not calls_merge:
                yield self.finding(
                    module,
                    combined,
                    "%s.combined does not delegate to merge_from; two "
                    "aggregation code paths will drift apart"
                    % class_def.name,
                )
