"""``kernel-parity`` — the scan-kernel ladder stays observably identical.

The accelerated kernels (``NumpyScanKernel``, ``NativeScanKernel``) are
drop-in replacements for ``PythonScanKernel``: same candidates, same
results, and — the part this checker guards — the same *observability
contract*.  The differential fuzzer proves result equality per input;
what it cannot prove is that a kernel silently stopped attributing work
to a ``TopkStats`` counter, or stopped honoring a ``TopkOptions`` knob,
because a missing counter is not a wrong answer.  Stats drift between
kernels silently breaks Figure 5/6-style ablation comparisons (the
numbers stop measuring the same thing per backend).

The checker computes, per kernel class, the **reachable attribute
footprint**: starting from ``__init__`` and ``scan`` it resolves
``self.m(...)`` through the class's MRO (most-derived first),
``Base.m(self, ...)`` calls to the named class, and ``super().m(...)``
past the defining class, then unions every ``stats.<field>`` write and
every ``options.<knob>`` read in the reached methods.  Resolving
through the MRO (instead of unioning everything each class inherits)
is what makes *removals* visible: a base-class write that a derived
class still performs through its own helper shows up as a footprint
difference, not a shared blind spot.

Two rules:

* every kernel class must write the same stats fields and read the same
  options knobs as the others (symmetric difference is reported on the
  divergent class);
* the ``batch_verify`` ablation pair (``_verify_survivors_batched`` /
  ``_process_survivors``) must each keep the verification accounting —
  ``verifications`` and ``duplicates_skipped`` — so toggling the
  ablation never changes what a verification costs in the metrics.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..project import ModuleSource, Project
from ..registry import Checker, register

__all__ = ["KernelParityChecker"]

_SCOPE_MODULES = ("accel/kernel.py", "accel/native.py")
_KERNEL_SUFFIX = "ScanKernel"
_ENTRY_POINTS = ("__init__", "scan")

#: The verify-ablation pair and the counters each branch must keep.
_ABLATION_METHODS = ("_verify_survivors_batched", "_process_survivors")
_ABLATION_REQUIRED = frozenset({"verifications", "duplicates_skipped"})

#: Local / parameter names the kernels bind their stats and options to.
_STATS_BASES = frozenset({"stats"})
_OPTIONS_BASES = frozenset({"options"})


class _KernelClass:
    """One kernel class definition plus its defining module."""

    def __init__(self, node: ast.ClassDef, module: ModuleSource) -> None:
        self.node = node
        self.module = module
        self.methods: Dict[str, ast.FunctionDef] = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        self.base_names: List[str] = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]


def _collect_classes(project: Project) -> Dict[str, _KernelClass]:
    classes: Dict[str, _KernelClass] = {}
    for repro_path in _SCOPE_MODULES:
        module = project.module(repro_path)
        if module is None or module.tree is None:
            continue
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.ClassDef)
                and stmt.name.endswith(_KERNEL_SUFFIX)
                and not stmt.name.startswith("_")
            ):
                classes[stmt.name] = _KernelClass(stmt, module)
    return classes


def _mro(name: str, classes: Dict[str, _KernelClass]) -> List[str]:
    """The single-inheritance resolution order within the kernel set."""
    order: List[str] = []
    current: Optional[str] = name
    while current is not None and current in classes and current not in order:
        order.append(current)
        bases = classes[current].base_names
        current = next((base for base in bases if base in classes), None)
    return order


def _resolve(
    method: str, mro: List[str], classes: Dict[str, _KernelClass]
) -> Optional[Tuple[str, ast.FunctionDef]]:
    for cls_name in mro:
        node = classes[cls_name].methods.get(method)
        if node is not None:
            return cls_name, node
    return None


def _attribute_footprint(
    function: ast.FunctionDef,
) -> Tuple[Set[str], Set[str], Set[str]]:
    """``(stats_writes, options_reads, self_calls)`` of one method body."""
    stats_writes: Set[str] = set()
    options_reads: Set[str] = set()
    for node in ast.walk(function):
        if not isinstance(node, ast.Attribute):
            continue
        base = node.value
        if not isinstance(base, ast.Name):
            continue
        if base.id in _STATS_BASES and isinstance(node.ctx, ast.Store):
            stats_writes.add(node.attr)
        elif base.id in _OPTIONS_BASES and isinstance(node.ctx, ast.Load):
            options_reads.add(node.attr)
    return stats_writes, options_reads, set()


def _called_methods(
    function: ast.FunctionDef,
    defining_class: str,
    analyzed_mro: List[str],
    classes: Dict[str, _KernelClass],
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Kernel methods *function* invokes, resolved against the analyzed MRO."""
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            target = func.value
            if isinstance(target, ast.Name) and target.id == "self":
                resolved = _resolve(func.attr, analyzed_mro, classes)
                if resolved is not None:
                    yield resolved
            elif isinstance(target, ast.Name) and target.id in classes:
                resolved = _resolve(
                    func.attr, _mro(target.id, classes), classes
                )
                if resolved is not None:
                    yield resolved
            elif (
                isinstance(target, ast.Call)
                and isinstance(target.func, ast.Name)
                and target.func.id == "super"
            ):
                try:
                    start = analyzed_mro.index(defining_class) + 1
                except ValueError:
                    start = 1
                resolved = _resolve(
                    func.attr, analyzed_mro[start:], classes
                )
                if resolved is not None:
                    yield resolved


def _class_footprint(
    name: str, classes: Dict[str, _KernelClass]
) -> Tuple[FrozenSet[str], FrozenSet[str], Dict[str, Set[str]]]:
    """Reachable stats/options footprint of kernel class *name*.

    Returns ``(stats_writes, options_reads, per_method_stats)`` where
    the per-method map records each reached method's own stats writes
    (for the ablation rule).
    """
    mro = _mro(name, classes)
    stats_writes: Set[str] = set()
    options_reads: Set[str] = set()
    per_method: Dict[str, Set[str]] = {}
    seen: Set[Tuple[str, str]] = set()
    frontier: List[Tuple[str, ast.FunctionDef]] = []
    for entry in _ENTRY_POINTS:
        resolved = _resolve(entry, mro, classes)
        if resolved is not None:
            frontier.append(resolved)
    while frontier:
        cls_name, function = frontier.pop()
        key = (cls_name, function.name)
        if key in seen:
            continue
        seen.add(key)
        writes, reads, __ = _attribute_footprint(function)
        stats_writes |= writes
        options_reads |= reads
        per_method.setdefault(function.name, set()).update(writes)
        for called in _called_methods(function, cls_name, mro, classes):
            frontier.append(called)
    return frozenset(stats_writes), frozenset(options_reads), per_method


@register
class KernelParityChecker(Checker):
    """python/numpy/native kernels expose one observability contract."""

    id = "kernel-parity"
    description = (
        "every scan kernel must write the same TopkStats fields and "
        "read the same TopkOptions knobs; the batch_verify ablation "
        "branches must keep verification accounting"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        classes = _collect_classes(project)
        if len(classes) < 2:
            return
        footprints = {
            name: _class_footprint(name, classes) for name in sorted(classes)
        }
        yield from self._footprint_parity(classes, footprints)
        yield from self._ablation_accounting(classes, footprints)

    def _footprint_parity(
        self,
        classes: Dict[str, _KernelClass],
        footprints: Dict[
            str, Tuple[FrozenSet[str], FrozenSet[str], Dict[str, Set[str]]]
        ],
    ) -> Iterator[Finding]:
        union_stats: Set[str] = set()
        union_options: Set[str] = set()
        for stats_writes, options_reads, __ in footprints.values():
            union_stats |= stats_writes
            union_options |= options_reads
        for name in sorted(footprints):
            stats_writes, options_reads, __ = footprints[name]
            kernel = classes[name]
            missing_stats = union_stats - stats_writes
            if missing_stats:
                yield self.finding(
                    kernel.module,
                    kernel.node,
                    "kernel %s never writes TopkStats field(s) %s that "
                    "the other kernels attribute work to — per-backend "
                    "ablation numbers stop measuring the same thing"
                    % (name, ", ".join(sorted(missing_stats))),
                )
            missing_options = union_options - options_reads
            if missing_options:
                yield self.finding(
                    kernel.module,
                    kernel.node,
                    "kernel %s never reads TopkOptions knob(s) %s that "
                    "the other kernels honor — the knob silently stops "
                    "applying on this backend"
                    % (name, ", ".join(sorted(missing_options))),
                )

    def _ablation_accounting(
        self,
        classes: Dict[str, _KernelClass],
        footprints: Dict[
            str, Tuple[FrozenSet[str], FrozenSet[str], Dict[str, Set[str]]]
        ],
    ) -> Iterator[Finding]:
        for name in sorted(footprints):
            __, __, per_method = footprints[name]
            kernel = classes[name]
            for method in _ABLATION_METHODS:
                writes = per_method.get(method)
                if writes is None:
                    continue  # not reached by this class's closure
                dropped = _ABLATION_REQUIRED - writes
                if dropped and method in kernel.methods:
                    yield self.finding(
                        kernel.module,
                        kernel.methods[method],
                        "batch_verify ablation branch %s.%s drops the %s "
                        "counter(s): toggling the ablation would change "
                        "what a verification costs in the metrics"
                        % (name, method, ", ".join(sorted(dropped))),
                    )
