"""The shipped domain checkers.

Importing this package registers every checker with
:mod:`repro.analysis.registry`; ``repro lint`` and the self-tests import
it for that side effect.  To add a checker, drop a module here, decorate
the class with ``@register`` and import it below — nothing else in the
engine changes (see ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

from .annotations import AnnotationsChecker
from .bound_safety import BoundSafetyChecker
from .options_plumbing import OptionsPlumbingChecker
from .race import RaceChecker
from .registry_coverage import RegistryCoverageChecker
from .stats_drift import StatsDriftChecker

__all__ = [
    "AnnotationsChecker",
    "BoundSafetyChecker",
    "OptionsPlumbingChecker",
    "RaceChecker",
    "RegistryCoverageChecker",
    "StatsDriftChecker",
]
