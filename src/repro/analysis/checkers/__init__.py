"""The shipped domain checkers.

Importing this package registers every checker with
:mod:`repro.analysis.registry`; ``repro lint`` and the self-tests import
it for that side effect.  To add a checker, drop a module here, decorate
the class with ``@register`` and import it below — nothing else in the
engine changes (see ``docs/STATIC_ANALYSIS.md``).

The second-generation checkers (``shm-lifecycle``, ``lock-discipline``,
``kernel-parity``, ``exception-safety``) are *flow-sensitive*: they
query the CFG/dataflow layer in :mod:`repro.analysis.dataflow` instead
of matching syntax patterns.
"""

from __future__ import annotations

from .annotations import AnnotationsChecker
from .bound_safety import BoundSafetyChecker
from .exception_safety import ExceptionSafetyChecker
from .kernel_parity import KernelParityChecker
from .lock_discipline import LockDisciplineChecker
from .options_plumbing import OptionsPlumbingChecker
from .race import RaceChecker
from .registry_coverage import RegistryCoverageChecker
from .shm_lifecycle import ShmLifecycleChecker
from .stats_drift import StatsDriftChecker

__all__ = [
    "AnnotationsChecker",
    "BoundSafetyChecker",
    "ExceptionSafetyChecker",
    "KernelParityChecker",
    "LockDisciplineChecker",
    "OptionsPlumbingChecker",
    "RaceChecker",
    "RegistryCoverageChecker",
    "ShmLifecycleChecker",
    "StatsDriftChecker",
]
