"""``exception-safety`` — resources released on explicit error paths.

A function that validates its inputs *after* acquiring a resource must
release the resource before raising: the caller sees only the
exception, has no reference to the half-built resource, and cannot
clean up.  The concrete bug class this guards is the attach-side
validation in :mod:`repro.parallel.shm` — every ``raise
ShmAttachError`` after the header ``memoryview`` is created must be
preceded by ``view.release()`` (or land in a handler that releases),
or a readonly export of the shared buffer outlives the failed attach
and the handle's own close trips over it.

Mechanically: for every ``x = memoryview(...)`` / ``x = open(...)``
acquisition, the checker asks the CFG whether the **exceptional** exit
is reachable along normal flow plus explicit-``raise`` edges without a
release (``x.release()`` / ``x.close()``) or an ownership transfer.
Normal completion is *not* challenged — handing the live view to the
caller (or keeping the file handle in a returned structure) is the
success contract, not a leak.  Call-origin exception edges are exempt
for the same reason as in ``shm-lifecycle``: intraprocedurally every
call can raise, and the checker's job is the error paths the function
itself authored.
"""

from __future__ import annotations

from typing import Iterator

from ..dataflow import ALL_EDGE_KINDS
from ..findings import Finding
from ..project import Project
from ..registry import Checker, register
from ..resources import ResourceSpec, iter_sync_functions, leaking_acquisitions

__all__ = ["ExceptionSafetyChecker"]

_PATH_KINDS = ALL_EDGE_KINDS - {"call"}

_SPECS = (
    ResourceSpec(
        kind="memoryview",
        constructors=frozenset({"memoryview"}),
        release_methods=frozenset({"release"}),
    ),
    ResourceSpec(
        kind="file handle",
        constructors=frozenset({"open"}),
        release_methods=frozenset({"close"}),
    ),
)


@register
class ExceptionSafetyChecker(Checker):
    """Acquired views/handles must be released before explicit raises."""

    id = "exception-safety"
    description = (
        "a memoryview/file handle acquired before a raise must be "
        "released on the error path (the caller never sees the resource)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.repro_modules():
            assert module.tree is not None
            for function in iter_sync_functions(module.tree):
                for acquisition, cfg in leaking_acquisitions(
                    function, _SPECS, _PATH_KINDS, include_normal_exit=False
                ):
                    del cfg
                    yield self.finding(
                        module,
                        acquisition.stmt,
                        "%s %r acquired in %r is not released on some "
                        "explicit error path: a raise after this "
                        "acquisition escapes the function with the "
                        "resource still held — release it before "
                        "raising, or raise first"
                        % (
                            acquisition.spec.kind,
                            acquisition.name,
                            function.name,
                        ),
                    )
