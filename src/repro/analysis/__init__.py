"""Domain-aware static analysis for the repro codebase (``repro lint``).

The correctness of the top-k join rests on cross-cutting invariants —
the ``ub_p``/``ub_i`` bound formulas, the monotone ``s_k`` stopping
condition, the shared-bound discipline of the multiprocessing backend,
the option/stats plumbing between the sequential and parallel paths —
that runtime oracles only catch *per input*.  This package rejects whole
classes of such bugs statically, before any test runs:

====================  ==================================================
checker               invariant
====================  ==================================================
``bound-safety``      no float ``==``/``!=`` on similarity/bound values
                      outside the blessed epsilon helpers; no floor
                      division inside bound formulas
``race``              workers never mutate module-level/closed-over
                      state outside ``initialize_worker``; shared-bound
                      ``.value`` writes hold ``get_lock()``
``options-plumbing``  every ``TopkOptions`` field is read somewhere and
                      forwarded (via ``replace``) by the parallel layer
``stats-drift``       every ``TopkStats`` field is folded by
                      ``merge_from``; ``combined`` delegates to it
``registry-coverage`` every ``*topk_join*`` backend is exercised by the
                      differential fuzzer (or explicitly exempted)
``annotations``       every function is fully annotated (the local
                      proxy for ``mypy --strict``)
``shm-lifecycle``     every shared-memory segment acquisition reaches a
                      release/escape on every CFG path, including
                      exceptional ones
``lock-discipline``   no compare-then-lock on shared cells, one global
                      lock-acquisition order, no bare mutation of
                      objects aliased from shared worker state
``kernel-parity``     every scan kernel writes the same ``TopkStats``
                      fields and reads the same ``TopkOptions`` knobs
``exception-safety``  exported views/handles are released before an
                      exception can propagate past them
====================  ==================================================

The last four are *flow-sensitive*: they query the CFG / reaching-
definitions layer in :mod:`repro.analysis.dataflow` rather than matching
syntax.  Their runtime twin is :mod:`repro.analysis.sanitizer`
(``REPRO_SANITIZE=1``), which observes actual shm and lock events and
reports leaks and lock-order inversions at process exit.

Every checker has a seeded-fault self-test
(:data:`repro.oracle.faults.LINT_FAULTS`) proving it fires on a known-bad
mutation of the real sources.  See ``docs/STATIC_ANALYSIS.md`` for the
full contract and how to write a new checker.
"""

from __future__ import annotations

from . import checkers as _checkers  # noqa: F401 — registers the checkers
from .engine import (
    SYNTAX_CHECKER_ID,
    UNUSED_SUPPRESSION_ID,
    UnknownCheckerError,
    lint_paths,
    run_checkers,
    selected_checker_ids,
)
from .findings import Finding
from .project import ModuleSource, Project, SourceReadError, load_project
from .registry import Checker, all_checkers, checker_ids, register

__all__ = [
    "Checker",
    "Finding",
    "ModuleSource",
    "Project",
    "SYNTAX_CHECKER_ID",
    "SourceReadError",
    "UNUSED_SUPPRESSION_ID",
    "UnknownCheckerError",
    "all_checkers",
    "checker_ids",
    "lint_paths",
    "load_project",
    "register",
    "run_checkers",
    "selected_checker_ids",
]
