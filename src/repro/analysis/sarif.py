"""SARIF 2.1.0 export for ``repro lint`` findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests: uploading the
document produced here (``repro lint --sarif out.json`` plus the
``github/codeql-action/upload-sarif`` action) turns every domain-checker
finding into an annotation on the offending line of the pull request.

The document carries one run of one tool (``repro-lint``).  Every
checker that was *selected* appears as a rule — including the reserved
``syntax`` and ``unused-suppression`` ids — so a clean run still
publishes the rule set and code scanning can close previously-open
alerts for rules that now report nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .engine import SYNTAX_CHECKER_ID, UNUSED_SUPPRESSION_ID
from .findings import Finding
from .registry import all_checkers

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Short descriptions for the engine-owned ids (not registered checkers).
_RESERVED_DESCRIPTIONS = {
    SYNTAX_CHECKER_ID: "the file must parse as Python",
    UNUSED_SUPPRESSION_ID: (
        "every '# repro-lint: ignore[...]' comment must silence at "
        "least one finding"
    ),
}


def _rule_descriptions(checkers: Sequence[str]) -> Dict[str, str]:
    descriptions = dict(_RESERVED_DESCRIPTIONS)
    for checker in all_checkers():
        descriptions[checker.id] = checker.description
    return {
        checker_id: descriptions.get(checker_id, "repro domain checker")
        for checker_id in checkers
    }


def _result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.checker,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; Finding.col is 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding], checkers: Sequence[str]
) -> Dict[str, Any]:
    """The SARIF 2.1.0 document for one lint run.

    *checkers* is the list of selected checker ids (what ``repro lint
    --json`` reports as ``checkers``); each becomes a rule so the
    document is self-describing even when *findings* is empty.
    """
    descriptions = _rule_descriptions(checkers)
    rules: List[Dict[str, Any]] = [
        {
            "id": checker_id,
            "name": checker_id,
            "shortDescription": {"text": descriptions[checker_id]},
            "defaultConfiguration": {"level": "error"},
        }
        for checker_id in checkers
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }
