"""The pluggable checker registry behind ``repro lint``.

A checker is a class with a stable ``id``, a one-line ``description``
and a ``check(project)`` generator of findings.  Registration is a
decorator so adding a checker is one import away::

    from repro.analysis.registry import Checker, register

    @register
    class MyChecker(Checker):
        id = "my-invariant"
        description = "what must always hold"

        def check(self, project):
            ...
            yield self.finding(module, node, "what went wrong")

``repro lint`` discovers checkers through this registry only — nothing
else in the engine is checker-specific — so a new checker participates
in ``--select`` / ``--ignore``, JSON output and the CLI exit code
without touching any other file.  See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Type

from .findings import Finding
from .project import ModuleSource, Project

__all__ = ["Checker", "register", "all_checkers", "checker_ids"]


class Checker(ABC):
    """Base class for one domain invariant."""

    #: Stable identifier used by ``--select`` / ``--ignore`` and findings.
    id: str = ""
    #: One-line summary shown by ``repro lint --list``.
    description: str = ""

    @abstractmethod
    def check(self, project: Project) -> Iterator[Finding]:
        """Yield one finding per violation found in *project*."""

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at *node* of *module*."""
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            checker=self.id,
            message=message,
        )


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(checker: Type[Checker]) -> Type[Checker]:
    """Class decorator adding *checker* to the global registry."""
    if not checker.id:
        raise ValueError("checker %r has no id" % checker.__name__)
    if checker.id in _REGISTRY:
        raise ValueError("duplicate checker id %r" % checker.id)
    _REGISTRY[checker.id] = checker
    return checker


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, in id order."""
    return [_REGISTRY[checker_id]() for checker_id in sorted(_REGISTRY)]


def checker_ids() -> List[str]:
    """Sorted ids of every registered checker."""
    return sorted(_REGISTRY)
