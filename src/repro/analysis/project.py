"""Source loading for the static-analysis pass.

A :class:`Project` is the unit every checker operates on: a set of parsed
Python modules with stable repo-relative paths.  Cross-file checkers
(options-plumbing, stats-drift, registry-coverage) look modules up by
their path *inside the repro package* — ``core/topk_join.py`` rather
than ``src/repro/core/topk_join.py`` — so the same checker works whether
the tree is linted from the repo root, from an installed copy, or from
the in-memory mutated sources of the seeded-fault self-tests.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

__all__ = ["ModuleSource", "Project", "SourceReadError", "load_project"]

_REPRO_MARKER = "repro/"

#: Inline suppression syntax — a comment of the form
#: ``repro-lint: ignore[checker-a, checker-b]`` (after the ``#``).
#: Anchored to the start of the comment token so prose that merely
#: *mentions* the syntax (docstrings, doc-comments like this one) never
#: registers as a suppression.
_SUPPRESSION_RE = re.compile(r"^#\s*repro-lint:\s*ignore\[([^\]]*)\]")


class SourceReadError(OSError):
    """A requested source file exists but cannot be read or decoded.

    Raised by :func:`load_project` for unreadable files (permissions,
    I/O errors) and files that are not valid UTF-8; the CLI maps it to
    the same usage-error exit code as a missing path, instead of
    crashing with a bare traceback.
    """

    def __init__(self, path: str, reason: Exception) -> None:
        self.path = path
        super().__init__("cannot read %s: %s" % (path, reason))


def _parse_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Per-line suppressed checker ids, keyed by 1-based line number.

    Only genuine comment tokens count (a docstring quoting the syntax is
    not a suppression); files the tokenizer rejects yield no
    suppressions — they surface as ``syntax`` findings instead.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.match(token.string)
            if match is None:
                continue
            ids = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            if ids:
                suppressions[token.start[0]] = ids
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions


def _repro_relative(path: str) -> Optional[str]:
    """The portion of *path* inside the ``repro`` package, if any.

    ``src/repro/core/topk_join.py`` -> ``core/topk_join.py``; paths
    outside the package (tests, benchmarks) return ``None`` and are
    skipped by the domain checkers, which only constrain library code.
    """
    posix = path.replace("\\", "/")
    marker = "/" + _REPRO_MARKER
    if posix.startswith(_REPRO_MARKER):
        return posix[len(_REPRO_MARKER):]
    index = posix.rfind(marker)
    if index < 0:
        return None
    return posix[index + len(marker):]


class ModuleSource:
    """One parsed source file.

    ``tree`` is ``None`` exactly when the file failed to parse; the
    engine reports that as a ``syntax`` finding instead of crashing, so
    one broken file cannot hide findings in the rest of the tree.
    """

    def __init__(self, path: str, text: str) -> None:
        self.path = path.replace("\\", "/")
        self.text = text
        self.repro_path = _repro_relative(self.path)
        #: ``{lineno: {checker ids}}`` from inline
        #: ``# repro-lint: ignore[...]`` comments; the engine filters
        #: findings against it and reports suppressions that never fire.
        self.suppressions: Dict[int, FrozenSet[str]] = _parse_suppressions(text)
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=self.path)
        except SyntaxError as error:
            self.syntax_error = error

    def __repr__(self) -> str:
        return "ModuleSource(%r)" % self.path


class Project:
    """An ordered set of modules, addressable by repro-relative path."""

    def __init__(self, modules: Sequence[ModuleSource]) -> None:
        self.modules: List[ModuleSource] = list(modules)
        self._by_repro_path: Dict[str, ModuleSource] = {
            module.repro_path: module
            for module in self.modules
            if module.repro_path is not None
        }

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from in-memory ``{path: text}`` sources."""
        return cls([ModuleSource(path, text) for path, text in sources.items()])

    def module(self, repro_path: str) -> Optional[ModuleSource]:
        """The module at *repro_path* (e.g. ``core/topk_join.py``)."""
        return self._by_repro_path.get(repro_path)

    def repro_modules(self, prefix: str = "") -> Iterator[ModuleSource]:
        """Parsed repro-package modules whose package path starts with *prefix*."""
        for module in self.modules:
            if module.tree is None or module.repro_path is None:
                continue
            if module.repro_path.startswith(prefix):
                yield module

    def with_source(self, repro_path: str, text: str) -> "Project":
        """A copy of this project with one module's source replaced.

        The seeded-fault self-tests use this to overlay a known-bad
        mutation onto the otherwise pristine tree, so cross-file checkers
        still see every module they need.
        """
        replaced = False
        modules: List[ModuleSource] = []
        for module in self.modules:
            if module.repro_path == repro_path:
                modules.append(ModuleSource(module.path, text))
                replaced = True
            else:
                modules.append(module)
        if not replaced:
            raise KeyError("no module at repro path %r" % repro_path)
        return Project(modules)


def _iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def load_project(
    paths: Sequence[str], base: Optional[Path] = None
) -> Tuple[Project, List[str]]:
    """Load every ``.py`` file under *paths* into a project.

    Returns ``(project, missing)`` where *missing* lists requested paths
    that do not exist (the CLI turns those into a usage error).  Paths
    are recorded relative to *base* (default: the current directory)
    whenever they live under it, keeping finding locations short and
    stable for CI logs.
    """
    base_dir = (base or Path.cwd()).resolve()
    modules: List[ModuleSource] = []
    missing: List[str] = []
    seen = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            missing.append(entry)
            continue
        for file_path in _iter_python_files(root):
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                display = resolved.relative_to(base_dir).as_posix()
            except ValueError:
                display = file_path.as_posix()
            try:
                text = file_path.read_text(encoding="utf-8")
            except UnicodeDecodeError as error:
                raise SourceReadError(display, error) from error
            except OSError as error:
                raise SourceReadError(display, error) from error
            modules.append(ModuleSource(display, text))
    return Project(modules), missing
