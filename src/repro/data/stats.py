"""Dataset statistics: Table I numbers and Figure 2 distributions.

The paper reports per-dataset statistics (Table I: record count, average
size, universe size) and plots token-frequency / record-size distributions
on log-log axes (Figure 2).  This module computes both; the benchmark
harness renders them as text tables.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .records import RecordCollection

__all__ = [
    "DatasetStatistics",
    "dataset_statistics",
    "token_frequency_histogram",
    "record_size_histogram",
    "log_binned",
]


@dataclass(frozen=True)
class DatasetStatistics:
    """One row of Table I."""

    name: str
    record_count: int
    average_size: float
    universe_size: int

    def row(self) -> Tuple[str, int, float, int]:
        return (self.name, self.record_count, self.average_size, self.universe_size)


def dataset_statistics(name: str, collection: RecordCollection) -> DatasetStatistics:
    """Compute the Table I statistics for *collection*."""
    return DatasetStatistics(
        name=name,
        record_count=len(collection),
        average_size=collection.average_size,
        universe_size=collection.universe_size,
    )


def token_frequency_histogram(collection: RecordCollection) -> Dict[int, int]:
    """Map ``document frequency -> number of tokens with that frequency``.

    This is the distribution of Figure 2(a); real corpora follow a Zipf law
    (a straight line on log-log axes) and the synthetic generators are
    expected to as well.
    """
    df = collection.token_frequencies()
    histogram: Counter = Counter(df.values())
    return dict(histogram)


def record_size_histogram(collection: RecordCollection) -> Dict[int, int]:
    """Map ``record size -> number of records of that size`` (Figure 2(b,c))."""
    histogram: Counter = Counter(len(record) for record in collection)
    return dict(histogram)


def log_binned(
    histogram: Dict[int, int], bins_per_decade: int = 4
) -> List[Tuple[float, int]]:
    """Aggregate an integer histogram into logarithmic bins.

    Returns ``(bin_geometric_center, total_count)`` pairs sorted by center —
    the series one would plot on the log-log axes of Figure 2.
    """
    if not histogram:
        return []
    binned: Counter = Counter()
    for value, count in histogram.items():
        if value < 1:
            continue
        bin_index = int(math.floor(math.log10(value) * bins_per_decade))
        binned[bin_index] += count
    series = []
    for bin_index in sorted(binned):
        center = 10.0 ** ((bin_index + 0.5) / bins_per_decade)
        series.append((center, binned[bin_index]))
    return series
