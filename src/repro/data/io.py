"""Plain-text dataset I/O.

Datasets are stored one record per line, tokens separated by single spaces —
the de-facto interchange format of the similarity-join literature (and of
the published ppjoin tooling).  Loading runs the full canonicalization
pipeline of :class:`repro.data.records.RecordCollection`.
"""

from __future__ import annotations

import os
from typing import List

from .records import RecordCollection

__all__ = ["load_token_file", "save_token_file", "load_collection"]


def load_token_file(path: str) -> List[List[str]]:
    """Read a one-record-per-line token file; blank lines are skipped."""
    token_lists: List[List[str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            tokens = line.split()
            if tokens:
                token_lists.append(tokens)
    return token_lists


def save_token_file(path: str, token_lists: List[List[str]]) -> None:
    """Write token lists one record per line (atomically via a temp file)."""
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for tokens in token_lists:
            handle.write(" ".join(tokens))
            handle.write("\n")
    os.replace(tmp_path, path)


def load_collection(path: str, dedupe: bool = True) -> RecordCollection:
    """Load a token file and canonicalize it into a collection."""
    return RecordCollection.from_token_lists(load_token_file(path), dedupe=dedupe)
