"""Synthetic dataset generators standing in for the paper's corpora.

The paper evaluates on DBLP, TREC (MEDLINE), TREC-3GRAM and UNIREF-3GRAM.
Those corpora are not redistributable here, so we synthesise collections
that reproduce the statistics the algorithms are sensitive to (see Fig. 2
of the paper and DESIGN.md §4):

* a Zipf token-frequency distribution;
* the per-dataset record-size distribution (short ~14-token DBLP records vs
  long TREC references vs very long q-gram sets);
* a population of *near-duplicate* pairs, produced by mutating previously
  emitted records, so that top-k joins have non-trivial answers and
  ``pptopk`` needs several threshold rounds.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

from .records import RecordCollection

__all__ = [
    "ZipfSampler",
    "synthetic_collection",
    "dblp_like",
    "trec_like",
    "qgram_strings",
    "trec3_like",
    "uniref3_like",
    "tie_heavy_collection",
]


class ZipfSampler:
    """Draw tokens ``0..universe-1`` with probability proportional to
    ``1 / (rank + 1) ** exponent``.

    Uses inverse-CDF sampling over a precomputed cumulative table, so a draw
    is one ``random()`` plus one binary search.
    """

    def __init__(self, universe: int, exponent: float = 1.0) -> None:
        if universe < 1:
            raise ValueError("universe must be >= 1, got %d" % universe)
        self.universe = universe
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(universe)]
        self._cumulative: List[float] = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        """Draw one token id."""
        point = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)

    def sample_distinct(self, rng: random.Random, count: int) -> List[int]:
        """Draw *count* distinct token ids (rejection sampling).

        Raises ``ValueError`` if *count* exceeds the universe size.
        """
        if count > self.universe:
            raise ValueError(
                "cannot draw %d distinct tokens from a universe of %d"
                % (count, self.universe)
            )
        drawn: set = set()
        # Rejection sampling stalls when count approaches the universe, so
        # fall back to an explicit shuffle in that regime.
        if count > self.universe // 2:
            population = list(range(self.universe))
            rng.shuffle(population)
            return population[:count]
        while len(drawn) < count:
            drawn.add(self.sample(rng))
        return list(drawn)


def _mutate(
    tokens: Sequence[int],
    rng: random.Random,
    sampler: ZipfSampler,
    max_edits: int,
) -> List[int]:
    """Produce a near-duplicate of *tokens* with 1..max_edits random edits.

    Each edit either substitutes or deletes an existing token, or inserts a
    fresh one — the same token-level noise model used in set-similarity
    benchmarking literature.
    """
    out = list(tokens)
    edits = rng.randint(1, max(1, max_edits))
    for __ in range(edits):
        op = rng.random()
        if op < 0.4 and out:
            out[rng.randrange(len(out))] = sampler.sample(rng)
        elif op < 0.7 and len(out) > 2:
            del out[rng.randrange(len(out))]
        else:
            out.insert(rng.randrange(len(out) + 1), sampler.sample(rng))
    return out


def synthetic_collection(
    n: int,
    avg_size: int,
    universe: int,
    seed: int = 42,
    zipf_exponent: float = 1.0,
    duplicate_fraction: float = 0.3,
    max_edit_fraction: float = 0.25,
    size_spread: float = 0.4,
) -> RecordCollection:
    """Generate a canonicalized collection of Zipf-token records.

    *duplicate_fraction* of the records are near-duplicates of earlier
    records (mutated copies with up to ``max_edit_fraction * size`` edits);
    the rest are fresh draws with sizes spread around *avg_size* by a
    lognormal-ish factor controlled by *size_spread*.
    """
    rng = random.Random(seed)
    sampler = ZipfSampler(universe, exponent=zipf_exponent)
    token_lists: List[List[int]] = []
    for __ in range(n):
        if token_lists and rng.random() < duplicate_fraction:
            base = token_lists[rng.randrange(len(token_lists))]
            max_edits = max(1, int(len(base) * max_edit_fraction))
            token_lists.append(_mutate(base, rng, sampler, max_edits))
        else:
            size = max(2, int(rng.lognormvariate(0.0, size_spread) * avg_size))
            token_lists.append(sampler.sample_distinct(rng, min(size, universe)))
    return RecordCollection.from_integer_sets(token_lists, dedupe=True)


def dblp_like(n: int = 8000, seed: int = 42) -> RecordCollection:
    """A DBLP-like workload: short records (avg ~14 tokens), Zipf tokens.

    Mirrors the paper's DBLP snapshot (author names + publication titles),
    scaled down for pure-Python execution (see DESIGN.md §4).
    """
    return synthetic_collection(
        n=n,
        avg_size=14,
        universe=max(1000, n * 2),
        seed=seed,
        zipf_exponent=1.0,
        duplicate_fraction=0.25,
        max_edit_fraction=0.3,
        size_spread=0.35,
    )


def trec_like(n: int = 3000, seed: int = 7) -> RecordCollection:
    """A TREC-like workload: long records (avg ~120 tokens).

    Mirrors the MEDLINE references of the TREC-9 Filtering Track (author +
    title + abstract concatenations).
    """
    return synthetic_collection(
        n=n,
        avg_size=120,
        universe=max(20000, n * 115),
        seed=seed,
        zipf_exponent=0.7,
        duplicate_fraction=0.55,
        max_edit_fraction=0.08,
        size_spread=0.3,
    )


def qgram_strings(
    n: int,
    avg_length: int,
    alphabet: str,
    seed: int,
    duplicate_fraction: float = 0.35,
    mutation_rate: float = 0.05,
    letter_weights: Optional[Sequence[float]] = None,
) -> List[str]:
    """Generate raw strings over a small alphabet with near-duplicates.

    Character-level mutation of earlier strings produces the long shared
    q-gram runs that make 3-gram datasets (TREC-3GRAM, UNIREF-3GRAM) behave
    so differently from word-token datasets: a small alphabet means very
    long inverted lists and heavy prefix collisions.

    *letter_weights* skews the per-character distribution (natural letter /
    amino-acid frequencies); skewed letters are what give real q-gram
    corpora their Zipf-like token-frequency distribution (Fig. 2 of the
    paper notes all datasets follow approximately a Zipf law).
    """
    rng = random.Random(seed)
    letters = list(alphabet)
    weights = list(letter_weights) if letter_weights is not None else None
    if weights is not None and len(weights) != len(letters):
        raise ValueError("letter_weights must match the alphabet length")

    def draw(count: int) -> List[str]:
        if weights is None:
            return [rng.choice(letters) for __ in range(count)]
        return rng.choices(letters, weights=weights, k=count)

    strings: List[str] = []
    for __ in range(n):
        if strings and rng.random() < duplicate_fraction:
            base = list(strings[rng.randrange(len(strings))])
            for position in range(len(base)):
                if rng.random() < mutation_rate:
                    base[position] = draw(1)[0]
            strings.append("".join(base))
        else:
            length = max(10, int(rng.lognormvariate(0.0, 0.3) * avg_length))
            strings.append("".join(draw(length)))
    return strings


#: Approximate English letter frequencies (plus space/underscore mass),
#: used to give text 3-grams a realistic, Zipf-like distribution.
_ENGLISH_WEIGHTS = [
    8.2, 1.5, 2.8, 4.3, 12.7, 2.2, 2.0, 6.1, 7.0, 0.15, 0.77, 4.0, 2.4,
    6.7, 7.5, 1.9, 0.095, 6.0, 6.3, 9.1, 2.8, 0.98, 2.4, 0.15, 2.0, 0.074,
    18.0, 3.0,
]

#: Natural amino-acid abundances (UniProt order ACDEFGHIKLMNPQRSTVWY).
_AMINO_WEIGHTS = [
    8.3, 1.4, 5.5, 6.7, 3.9, 7.1, 2.3, 5.9, 5.8, 9.7, 2.4, 4.1, 4.7,
    3.9, 5.5, 6.6, 5.3, 6.9, 1.1, 2.9,
]


def trec3_like(n: int = 1500, seed: int = 11, q: int = 3) -> RecordCollection:
    """A TREC-3GRAM-like workload: text-alphabet strings tokenized to 3-grams."""
    alphabet = "abcdefghijklmnopqrstuvwxyz_ "
    strings = qgram_strings(
        n, avg_length=220, alphabet=alphabet, seed=seed,
        letter_weights=_ENGLISH_WEIGHTS,
    )
    return RecordCollection.from_qgrams(strings, q=q)


def uniref3_like(n: int = 1200, seed: int = 13, q: int = 3) -> RecordCollection:
    """A UNIREF-3GRAM-like workload: 20-letter protein alphabet, 3-grams.

    Stands in for the UniRef90 protein sequences of the paper (amino acids
    coded as uppercase letters, records = sets of 3-grams).
    """
    alphabet = "ACDEFGHIKLMNPQRSTVWY"
    strings = qgram_strings(
        n, avg_length=200, alphabet=alphabet, seed=seed, mutation_rate=0.04,
        letter_weights=_AMINO_WEIGHTS,
    )
    return RecordCollection.from_qgrams(strings, q=q)


def random_integer_collection(
    n: int,
    universe: int,
    max_size: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> RecordCollection:
    """Small uniform-random collections for tests.

    Sizes are uniform in ``[1, max_size]``; tokens uniform over the
    universe.  Low skew makes collisions (and therefore edge cases such as
    tied similarities) frequent, which is exactly what correctness tests
    want.
    """
    if rng is None:
        rng = random.Random(seed)
    token_lists = []
    for __ in range(n):
        size = rng.randint(1, max_size)
        token_lists.append([rng.randrange(universe) for __ in range(size)])
    return RecordCollection.from_integer_sets(token_lists, dedupe=False)


def tie_heavy_collection(
    n: int,
    universe: int = 6,
    max_size: int = 4,
    seed: Optional[int] = None,
) -> RecordCollection:
    """Collections engineered to maximize tied similarities.

    A token universe this small forces many record pairs onto identical
    ``(overlap, |x|, |y|)`` triples, so the k-th similarity is almost
    always shared by several pairs — the adversarial regime for top-k
    tie-breaking, buffer eviction and the boundary logic of
    :func:`repro.oracle.reference.assert_topk_equivalent`.
    """
    rng = random.Random(seed)
    token_lists = [
        [rng.randrange(universe) for __ in range(rng.randint(1, max_size))]
        for __ in range(n)
    ]
    return RecordCollection.from_integer_sets(token_lists, dedupe=False)
