"""Global token orderings.

Prefix-filtering algorithms canonicalize every record by one *global*
ordering ``O`` of the token universe (Section II-A).  The standard choice —
used throughout the paper — is the *inverse document frequency* ordering
``O_idf``: tokens are arranged by decreasing idf, i.e. increasing document
frequency, so that the rarest (most selective) tokens land in record
prefixes.

An ordering is materialised as a dense rank map ``token -> int`` so records
can be stored as sorted integer arrays and compared with plain ``<``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "document_frequencies",
    "idf_ordering",
    "frequency_ordering",
    "lexicographic_ordering",
]


def document_frequencies(token_lists: Iterable[Sequence[str]]) -> Counter:
    """Count, for every token, the number of records containing it.

    Records are sets, so a token is counted at most once per record (the
    occurrence-numbering step in :mod:`repro.data.tokenize` has already made
    within-record duplicates distinct).
    """
    df: Counter = Counter()
    for tokens in token_lists:
        df.update(set(tokens))
    return df


def idf_ordering(df: Dict[str, int]) -> Dict[str, int]:
    """Rank tokens by increasing document frequency (decreasing idf).

    Ties are broken lexicographically so the ordering is deterministic.
    Rank 0 is the rarest token; record prefixes therefore carry the most
    selective tokens, which is what makes prefix filtering effective.
    """
    ordered: List[str] = sorted(df, key=lambda token: (df[token], token))
    return {token: rank for rank, token in enumerate(ordered)}


def frequency_ordering(df: Dict[str, int]) -> Dict[str, int]:
    """Rank tokens by *decreasing* document frequency.

    The pessimal ordering for prefix filtering; useful in tests and
    ablations to show the algorithms stay correct (if slow) under any
    global ordering.
    """
    ordered: List[str] = sorted(df, key=lambda token: (-df[token], token))
    return {token: rank for rank, token in enumerate(ordered)}


def lexicographic_ordering(df: Dict[str, int]) -> Dict[str, int]:
    """Rank tokens alphabetically — a frequency-oblivious ordering."""
    return {token: rank for rank, token in enumerate(sorted(df))}
