"""Tokenizers turning raw text into token lists.

The paper (Section II-A and VII-A) tokenizes records in two ways:

* *word tokens*: split on white space, after lowercasing;
* *q-grams*: overlapping character q-grams, after lowercasing and after
  converting white space and punctuation to underscores.

Records are **sets**, so a repeated token must be distinguishable from its
first occurrence.  Following Chaudhuri et al. [5] (and Example in Section
II-A of the paper, where the second ``the`` becomes a fresh token ``D``),
each subsequent occurrence of the same token is turned into a new token by
appending an occurrence ordinal.
"""

from __future__ import annotations

import string
from typing import Iterable, List

__all__ = [
    "clean_text",
    "number_occurrences",
    "tokenize_words",
    "tokenize_qgrams",
]

#: Characters replaced by underscores before q-gram extraction.
_PUNCTUATION = set(string.punctuation) | set(string.whitespace)

_QGRAM_CLEAN = str.maketrans(
    {c: "_" for c in string.punctuation + string.whitespace}
)


def clean_text(text: str) -> str:
    """Lowercase *text* and replace white space / punctuation by underscores.

    This mirrors the dataset cleaning step in Section VII-A of the paper
    ("White spaces and punctuations are converted into underscores before
    extracting q-grams").
    """
    return text.lower().translate(_QGRAM_CLEAN)


def number_occurrences(tokens: Iterable[str]) -> List[str]:
    """Make duplicate tokens unique by appending an occurrence ordinal.

    The first occurrence of a token is kept verbatim; the i-th repetition
    becomes ``token#i``.  This turns a token *bag* into a token *set* while
    preserving multiplicity information, exactly as required to treat
    records as sets (Section II-A).

    >>> number_occurrences(["the", "lord", "of", "the", "rings"])
    ['the', 'lord', 'of', 'the#1', 'rings']
    """
    seen: dict = {}
    out: List[str] = []
    for token in tokens:
        count = seen.get(token, 0)
        out.append(token if count == 0 else "%s#%d" % (token, count))
        seen[token] = count + 1
    return out


def tokenize_words(text: str) -> List[str]:
    """Tokenize *text* into occurrence-numbered lowercase word tokens."""
    return number_occurrences(text.lower().split())


def tokenize_qgrams(text: str, q: int = 3) -> List[str]:
    """Tokenize *text* into occurrence-numbered character q-grams.

    The text is cleaned with :func:`clean_text` first.  Strings shorter than
    *q* yield a single (padded) gram so no record comes out empty.

    >>> tokenize_qgrams("ab-cd", q=3)
    ['ab_', 'b_c', '_cd']
    """
    if q < 1:
        raise ValueError("q must be >= 1, got %d" % q)
    cleaned = clean_text(text)
    if len(cleaned) < q:
        cleaned = cleaned.ljust(q, "_")
    grams = [cleaned[i : i + q] for i in range(len(cleaned) - q + 1)]
    return number_occurrences(grams)
