"""Record model and canonicalized record collections.

A :class:`Record` is a set of tokens drawn from a finite universe, stored as
a tuple of integer token *ranks* sorted ascending by the collection's global
ordering (Section II-A of the paper).  A :class:`RecordCollection` owns the
token dictionary, canonicalizes every record, and keeps records sorted by
increasing size — the invariant both the All-Pairs index-reduction (Lemma 2)
and the event-compression optimisation (Section V-C) rely on.

``Record.rid`` identifiers refer to positions in the size-sorted collection,
so ``coll[r.rid] is r``.  The original input position is preserved in
``Record.source_id`` for callers that need to map results back.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .ordering import document_frequencies, idf_ordering
from .tokenize import tokenize_qgrams, tokenize_words

__all__ = ["Record", "RecordCollection"]


class Record:
    """A canonicalized record: a sorted tuple of integer token ranks."""

    __slots__ = ("rid", "tokens", "source_id")

    def __init__(self, rid: int, tokens: Tuple[int, ...], source_id: int):
        self.rid = rid
        self.tokens = tokens
        self.source_id = source_id

    @property
    def size(self) -> int:
        """Number of tokens, written ``|x|`` in the paper."""
        return len(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[int]:
        return iter(self.tokens)

    def __getitem__(self, index: int) -> int:
        return self.tokens[index]

    def __repr__(self) -> str:
        return "Record(rid=%d, size=%d)" % (self.rid, len(self.tokens))


class RecordCollection:
    """A size-sorted collection of canonicalized records.

    Build one with :meth:`from_token_lists`, :meth:`from_texts` or
    :meth:`from_qgrams`; all three run the full canonicalization pipeline:

    1. compute document frequencies over the raw token lists;
    2. build the global idf ordering (rarest token = rank 0) — or any
       ordering supplied via *ordering_factory*;
    3. map each record to a sorted tuple of ranks;
    4. sort records by increasing size (ties: lexicographic on tokens, so
       collections are deterministic).

    Exact duplicate records are dropped when *dedupe* is true, matching the
    dataset cleaning in Section VII-A.
    """

    def __init__(
        self,
        records: List[Record],
        universe_size: int,
        token_of_rank: Optional[List[str]] = None,
    ):
        self.records = records
        self.universe_size = universe_size
        self.token_of_rank = token_of_rank

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_token_lists(
        cls,
        token_lists: Sequence[Sequence[str]],
        dedupe: bool = True,
        ordering_factory: Callable[[Dict[str, int]], Dict[str, int]] = idf_ordering,
    ) -> "RecordCollection":
        """Canonicalize raw string-token lists into a collection."""
        df = document_frequencies(token_lists)
        rank_of = ordering_factory(df)
        token_of_rank = [""] * len(rank_of)
        for token, rank in rank_of.items():
            token_of_rank[rank] = token

        canonical: List[Tuple[Tuple[int, ...], int]] = []
        seen = set()
        for source_id, tokens in enumerate(token_lists):
            ranked = tuple(sorted({rank_of[t] for t in tokens}))
            if not ranked:
                continue
            if dedupe:
                if ranked in seen:
                    continue
                seen.add(ranked)
            canonical.append((ranked, source_id))

        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source_id)
            for rid, (tokens, source_id) in enumerate(canonical)
        ]
        return cls(records, universe_size=len(rank_of), token_of_rank=token_of_rank)

    @classmethod
    def from_texts(
        cls, texts: Sequence[str], dedupe: bool = True
    ) -> "RecordCollection":
        """Tokenize *texts* into word tokens and canonicalize."""
        return cls.from_token_lists(
            [tokenize_words(t) for t in texts], dedupe=dedupe
        )

    @classmethod
    def from_qgrams(
        cls, texts: Sequence[str], q: int = 3, dedupe: bool = True
    ) -> "RecordCollection":
        """Tokenize *texts* into character q-grams and canonicalize."""
        return cls.from_token_lists(
            [tokenize_qgrams(t, q=q) for t in texts], dedupe=dedupe
        )

    @classmethod
    def from_integer_sets(
        cls, integer_sets: Sequence[Iterable[int]], dedupe: bool = True
    ) -> "RecordCollection":
        """Build a collection from pre-ranked integer token sets.

        Intended for tests and synthetic workloads where tokens are already
        integers; the integers are used as ranks verbatim (no reordering),
        so callers control the global ordering directly.
        """
        canonical: List[Tuple[Tuple[int, ...], int]] = []
        seen = set()
        universe = 0
        for source_id, tokens in enumerate(integer_sets):
            ranked = tuple(sorted(set(tokens)))
            if not ranked:
                continue
            universe = max(universe, ranked[-1] + 1)
            if dedupe:
                if ranked in seen:
                    continue
                seen.add(ranked)
            canonical.append((ranked, source_id))
        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source_id)
            for rid, (tokens, source_id) in enumerate(canonical)
        ]
        return cls(records, universe_size=universe)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, rid: int) -> Record:
        return self.records[rid]

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def average_size(self) -> float:
        """Mean record size (the ``avg. size`` column of Table I)."""
        if not self.records:
            return 0.0
        return sum(len(r) for r in self.records) / len(self.records)

    def token_frequencies(self) -> Dict[int, int]:
        """Document frequency of every token rank present in the collection."""
        df: Dict[int, int] = {}
        for record in self.records:
            for token in record.tokens:
                df[token] = df.get(token, 0) + 1
        return df

    def size_blocks(self) -> List[Tuple[int, int, int]]:
        """Contiguous runs of equal-size records as ``(size, start, stop)``.

        Supports the prefix-event compression of Section V-C, which groups
        events by ``(record size, prefix length)``.
        """
        blocks: List[Tuple[int, int, int]] = []
        start = 0
        while start < len(self.records):
            size = len(self.records[start])
            stop = start
            while stop < len(self.records) and len(self.records[stop]) == size:
                stop += 1
            blocks.append((size, start, stop))
            start = stop
        return blocks

    def strings(self, record: Record, separator: str = " ") -> str:
        """Render *record* back to its token strings (debugging aid)."""
        if self.token_of_rank is None:
            return separator.join(str(t) for t in record.tokens)
        return separator.join(self.token_of_rank[t] for t in record.tokens)
