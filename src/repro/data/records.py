"""Record model and canonicalized record collections.

A :class:`Record` is a set of tokens drawn from a finite universe, stored as
a tuple of integer token *ranks* sorted ascending by the collection's global
ordering (Section II-A of the paper).  A :class:`RecordCollection` owns the
token dictionary, canonicalizes every record, and keeps records sorted by
increasing size — the invariant both the All-Pairs index-reduction (Lemma 2)
and the event-compression optimisation (Section V-C) rely on.

``Record.rid`` identifiers refer to positions in the size-sorted collection,
so ``coll[r.rid] is r``.  The original input position is preserved in
``Record.source_id`` for callers that need to map results back.

Collections also carry per-record **bit signatures** (the bitmap-filter
technique of Sandes, Teodoro & Melo, arXiv:1711.07295): each token is
hashed to one bit of a configurable-width word (any width in
:data:`SUPPORTED_SIGNATURE_BITS`; default :data:`SIGNATURE_BITS`) and a
record's signature is the XOR-fold of its token bits.  Because the XOR
of two signatures equals the XOR-fold over the records' *symmetric
difference*, its popcount can never exceed ``|x Δ y|``, giving the
exact-safe overlap upper bound

    ``|x ∩ y| <= (|x| + |y| - popcount(sig_x ^ sig_y)) // 2``

which the accelerated join kernels (:mod:`repro.accel.kernel`) check
before any per-pair merge work.  Signatures are built once per collection
and width (lazily, cached per width) right after canonicalization —
token ranks are already integers, so hashing is one multiply-shift per
token.  Wider signatures cost more words per XOR+popcount but collide
less, raising prune rates where the 128-bit filter saturates; bounds
from *different* widths are never comparable, so every consumer works
at one explicit width (``TopkOptions.sig_bits``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .ordering import document_frequencies, idf_ordering
from .tokenize import tokenize_qgrams, tokenize_words

__all__ = [
    "Record",
    "RecordCollection",
    "SIGNATURE_BITS",
    "SUPPORTED_SIGNATURE_BITS",
    "popcount",
    "signature_of",
    "signature_overlap_bound",
    "signature_width",
]

#: Signature widths the kernels accept (whole 64-bit words, 1-8 each).
SUPPORTED_SIGNATURE_BITS = (64, 128, 256, 512)

#: Default width of the per-record bit signature (2 machine words).
SIGNATURE_BITS = 128

#: 64-bit golden-ratio multiplier (splitmix64's increment) — one multiply
#: mixes a token rank well enough that the high bits index a signature bit.
_MIX = 0x9E3779B97F4A7C15
_WORD_MASK = 0xFFFFFFFFFFFFFFFF
#: ``width -> 64 - log2(width)``: the hash's top bits select a bit position.
_BIT_SHIFT_OF = {
    bits: 64 - (bits.bit_length() - 1) for bits in SUPPORTED_SIGNATURE_BITS
}

#: 16-bit-chunk popcount table for interpreters without ``int.bit_count``
#: (Python 3.9).  Built lazily on first use: at 64k entries the build is
#: noticeable, and 3.10+ interpreters never need it.
_POPCOUNT_TABLE: List[int] = []


def _table_popcount(value: int) -> int:
    """Number of set bits in *value*, via a 16-bit lookup table.

    The ``int.bit_count`` fallback for Python 3.9: chunking through a
    65536-entry table beats ``bin(value).count("1")`` on every signature
    width because no intermediate string is built (see the popcount note
    in docs/PERFORMANCE.md for measurements).
    """
    table = _POPCOUNT_TABLE
    if not table:
        table.extend(bin(i).count("1") for i in range(1 << 16))
    count = 0
    while value:
        count += table[value & 0xFFFF]
        value >>= 16
    return count


try:  # int.bit_count is Python >= 3.10; table fallback on 3.9.
    popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9
    popcount = _table_popcount


def signature_width(bits: int) -> int:
    """Validate *bits* and return it (the kernels' width check).

    Raises ``ValueError`` for widths outside
    :data:`SUPPORTED_SIGNATURE_BITS` — every supported width is a whole
    number of 64-bit machine words, which the word-parallel kernels and
    the shared-memory wire format rely on.
    """
    if bits not in _BIT_SHIFT_OF:
        raise ValueError(
            "sig_bits must be one of %s, got %r"
            % (SUPPORTED_SIGNATURE_BITS, bits)
        )
    return bits


def signature_of(tokens: Iterable[int], bits: int = SIGNATURE_BITS) -> int:
    """XOR-folded bit signature of a token set at width *bits*.

    Each token sets (toggles) one of *bits* bit positions chosen by a
    multiply-shift hash of its rank.  XOR-folding (rather than OR) is
    what makes the Hamming bound exact-safe: colliding tokens cancel,
    they never inflate the apparent overlap floor.  Signatures of
    different widths are incomparable — both sides of every XOR must be
    built at the same *bits*.
    """
    if bits not in _BIT_SHIFT_OF:
        signature_width(bits)  # raise the canonical error
    shift = _BIT_SHIFT_OF[bits]
    signature = 0
    for token in tokens:
        signature ^= 1 << (((token * _MIX) & _WORD_MASK) >> shift)
    return signature


def signature_overlap_bound(
    signature_x: int, signature_y: int, size_x: int, size_y: int
) -> int:
    """Upper bound on ``|x ∩ y|`` from the two records' signatures.

    ``popcount(sig_x ^ sig_y)`` is a lower bound on ``|x Δ y|`` (every
    symmetric-difference token toggles exactly one bit; collisions only
    cancel), and ``|x ∩ y| = (|x| + |y| - |x Δ y|) / 2``.  The bound is
    never below the true overlap, so pruning candidates whose bound is
    below the required overlap α is exact.
    """
    return (size_x + size_y - popcount(signature_x ^ signature_y)) >> 1


class Record:
    """A canonicalized record: a sorted sequence of integer token ranks.

    ``tokens`` is usually a tuple, but any sorted integer sequence works —
    the shared-memory data plane (:mod:`repro.parallel.shm`) attaches
    records whose tokens are read-only ``memoryview`` slices of a shared
    segment, and every consumer only indexes, measures and iterates.
    """

    __slots__ = ("rid", "tokens", "source_id")

    def __init__(self, rid: int, tokens: Sequence[int], source_id: int) -> None:
        self.rid = rid
        self.tokens = tokens
        self.source_id = source_id

    @property
    def size(self) -> int:
        """Number of tokens, written ``|x|`` in the paper."""
        return len(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[int]:
        return iter(self.tokens)

    def __getitem__(self, index: int) -> int:
        return self.tokens[index]

    def __repr__(self) -> str:
        return "Record(rid=%d, size=%d)" % (self.rid, len(self.tokens))


class RecordCollection:
    """A size-sorted collection of canonicalized records.

    Build one with :meth:`from_token_lists`, :meth:`from_texts` or
    :meth:`from_qgrams`; all three run the full canonicalization pipeline:

    1. compute document frequencies over the raw token lists;
    2. build the global idf ordering (rarest token = rank 0) — or any
       ordering supplied via *ordering_factory*;
    3. map each record to a sorted tuple of ranks;
    4. sort records by increasing size (ties: lexicographic on tokens, so
       collections are deterministic).

    Exact duplicate records are dropped when *dedupe* is true, matching the
    dataset cleaning in Section VII-A.
    """

    def __init__(
        self,
        records: List[Record],
        universe_size: int,
        token_of_rank: Optional[List[str]] = None,
    ) -> None:
        self.records = records
        self.universe_size = universe_size
        self.token_of_rank = token_of_rank
        #: Lazily built per-rid bit signatures, keyed by width (see
        #: :func:`signature_of`).
        #: :func:`repro.parallel.partitioner.subproblem` pre-fills this for
        #: sub-collections so worker tasks never re-hash tokens.
        self._signatures: Dict[int, List[int]] = {}
        #: Owner of the backing storage when record tokens are borrowed
        #: views (a ``SharedMemory`` handle on the zero-copy data plane).
        #: Declared before :attr:`records` would be natural, but it must
        #: be *inserted* after it so instance teardown releases the token
        #: views first and the handle can close without exported buffers.
        self._retained_buffer: Optional[object] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_token_lists(
        cls,
        token_lists: Sequence[Sequence[str]],
        dedupe: bool = True,
        ordering_factory: Callable[[Dict[str, int]], Dict[str, int]] = idf_ordering,
    ) -> "RecordCollection":
        """Canonicalize raw string-token lists into a collection."""
        df = document_frequencies(token_lists)
        rank_of = ordering_factory(df)
        token_of_rank = [""] * len(rank_of)
        for token, rank in rank_of.items():
            token_of_rank[rank] = token

        canonical: List[Tuple[Tuple[int, ...], int]] = []
        seen = set()
        for source_id, tokens in enumerate(token_lists):
            ranked = tuple(sorted({rank_of[t] for t in tokens}))
            if not ranked:
                continue
            if dedupe:
                if ranked in seen:
                    continue
                seen.add(ranked)
            canonical.append((ranked, source_id))

        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source_id)
            for rid, (tokens, source_id) in enumerate(canonical)
        ]
        return cls(records, universe_size=len(rank_of), token_of_rank=token_of_rank)

    @classmethod
    def from_texts(
        cls, texts: Sequence[str], dedupe: bool = True
    ) -> "RecordCollection":
        """Tokenize *texts* into word tokens and canonicalize."""
        return cls.from_token_lists(
            [tokenize_words(t) for t in texts], dedupe=dedupe
        )

    @classmethod
    def from_qgrams(
        cls, texts: Sequence[str], q: int = 3, dedupe: bool = True
    ) -> "RecordCollection":
        """Tokenize *texts* into character q-grams and canonicalize."""
        return cls.from_token_lists(
            [tokenize_qgrams(t, q=q) for t in texts], dedupe=dedupe
        )

    @classmethod
    def from_integer_sets(
        cls, integer_sets: Sequence[Iterable[int]], dedupe: bool = True
    ) -> "RecordCollection":
        """Build a collection from pre-ranked integer token sets.

        Intended for tests and synthetic workloads where tokens are already
        integers; the integers are used as ranks verbatim (no reordering),
        so callers control the global ordering directly.
        """
        canonical: List[Tuple[Tuple[int, ...], int]] = []
        seen = set()
        universe = 0
        for source_id, tokens in enumerate(integer_sets):
            ranked = tuple(sorted(set(tokens)))
            if not ranked:
                continue
            universe = max(universe, ranked[-1] + 1)
            if dedupe:
                if ranked in seen:
                    continue
                seen.add(ranked)
            canonical.append((ranked, source_id))
        canonical.sort(key=lambda item: (len(item[0]), item[0]))
        records = [
            Record(rid, tokens, source_id)
            for rid, (tokens, source_id) in enumerate(canonical)
        ]
        return cls(records, universe_size=universe)

    @classmethod
    def from_flat_arrays(
        cls,
        offsets: Sequence[int],
        tokens: Sequence[int],
        source_ids: Sequence[int],
        universe_size: int,
        signatures: Optional[Sequence[int]] = None,
        sig_bits: int = SIGNATURE_BITS,
    ) -> "RecordCollection":
        """Rebuild an already-canonical collection from flat buffers.

        The inverse of
        :meth:`repro.index.columns.RecordColumns.from_collection`: record
        *rid*'s tokens are the slice ``tokens[offsets[rid]:offsets[rid+1]]``
        — kept as a *view* of the flat buffer (a zero-copy ``memoryview``
        slice when *tokens* lives in a shared-memory segment), never
        copied.  The buffers must describe a collection that already went
        through canonicalization: tokens sorted ascending within each
        record, records sorted by size.  *signatures* (when given)
        pre-fills the *sig_bits*-wide signature cache so no attached
        process re-hashes.
        """
        records = [
            Record(rid, tokens[offsets[rid] : offsets[rid + 1]], source_ids[rid])
            for rid in range(len(offsets) - 1)
        ]
        collection = cls(records, universe_size=universe_size)
        if signatures is not None:
            collection._signatures[signature_width(sig_bits)] = list(signatures)
        return collection

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, rid: int) -> Record:
        return self.records[rid]

    # ------------------------------------------------------------------
    # Bit signatures
    # ------------------------------------------------------------------

    @property
    def signatures(self) -> List[int]:
        """Per-rid bit signatures at the default width (cached).

        ``signatures[rid]`` is :func:`signature_of` of record *rid*'s
        tokens at :data:`SIGNATURE_BITS`.  The accelerated join kernels
        index this list directly, so it must stay aligned with
        :attr:`records`.
        """
        return self.signatures_at(SIGNATURE_BITS)

    def signatures_at(self, bits: int) -> List[int]:
        """Per-rid bit signatures at width *bits*, built once and cached.

        Each supported width keeps its own cache entry — a 256-bit probe
        never invalidates the 128-bit signatures another consumer (the
        streaming engine, a second join run) already paid for.
        """
        cached = self._signatures.get(bits)
        if cached is None:
            signature_width(bits)
            cached = [
                signature_of(record.tokens, bits) for record in self.records
            ]
            self._signatures[bits] = cached
        return cached

    def clear_signature_cache(self) -> None:
        """Drop every cached signature list (benchmarks re-charge hashing)."""
        self._signatures.clear()

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    @property
    def average_size(self) -> float:
        """Mean record size (the ``avg. size`` column of Table I)."""
        if not self.records:
            return 0.0
        return sum(len(r) for r in self.records) / len(self.records)

    def token_frequencies(self) -> Dict[int, int]:
        """Document frequency of every token rank present in the collection."""
        df: Dict[int, int] = {}
        for record in self.records:
            for token in record.tokens:
                df[token] = df.get(token, 0) + 1
        return df

    def size_blocks(self) -> List[Tuple[int, int, int]]:
        """Contiguous runs of equal-size records as ``(size, start, stop)``.

        Supports the prefix-event compression of Section V-C, which groups
        events by ``(record size, prefix length)``.
        """
        blocks: List[Tuple[int, int, int]] = []
        start = 0
        while start < len(self.records):
            size = len(self.records[start])
            stop = start
            while stop < len(self.records) and len(self.records[stop]) == size:
                stop += 1
            blocks.append((size, start, stop))
            start = stop
        return blocks

    def strings(self, record: Record, separator: str = " ") -> str:
        """Render *record* back to its token strings (debugging aid)."""
        if self.token_of_rank is None:
            return separator.join(str(t) for t in record.tokens)
        return separator.join(self.token_of_rank[t] for t in record.tokens)
