"""Data substrate: records, tokenizers, orderings, synthetic datasets, I/O."""

from .io import load_collection, load_token_file, save_token_file
from .ordering import (
    document_frequencies,
    frequency_ordering,
    idf_ordering,
    lexicographic_ordering,
)
from .records import Record, RecordCollection
from .stats import (
    DatasetStatistics,
    dataset_statistics,
    log_binned,
    record_size_histogram,
    token_frequency_histogram,
)
from .synthetic import (
    ZipfSampler,
    dblp_like,
    qgram_strings,
    random_integer_collection,
    synthetic_collection,
    trec3_like,
    trec_like,
    uniref3_like,
)
from .tokenize import (
    clean_text,
    number_occurrences,
    tokenize_qgrams,
    tokenize_words,
)

__all__ = [
    "Record",
    "RecordCollection",
    "ZipfSampler",
    "DatasetStatistics",
    "clean_text",
    "number_occurrences",
    "tokenize_qgrams",
    "tokenize_words",
    "document_frequencies",
    "idf_ordering",
    "frequency_ordering",
    "lexicographic_ordering",
    "dataset_statistics",
    "token_frequency_histogram",
    "record_size_histogram",
    "log_binned",
    "load_collection",
    "load_token_file",
    "save_token_file",
    "synthetic_collection",
    "dblp_like",
    "trec_like",
    "trec3_like",
    "uniref3_like",
    "qgram_strings",
    "random_integer_collection",
]
