"""The sliding window: a FIFO store of live records with expiry rules.

Records are keyed by *stream ids* (sids) — monotonically increasing
arrival numbers that never recycle, so a pair ``(sid_a, sid_b)`` names
the same logical pair for the engine's whole lifetime.  Expiry is
strictly FIFO (always the oldest live record), which is what lets the
engine evict postings with ``InvertedIndex.trim_head``: the globally
oldest record's posting is at the head of every list it appears in.

Two policies, selected by ``TopkOptions.window_policy``:

* ``"count"`` — the window holds the last ``window_size`` records; the
  engine displaces the oldest before an arrival of a full window.
* ``"time"`` — records carry the stream clock at arrival; the clock
  moves only on ``advance``, and a record expires once
  ``clock - arrival >= window_size`` (the window is the half-open
  interval ``(clock - window_size, clock]``).

``window_size == 0`` means unbounded under both policies: records then
expire only through explicit ``expire``/``advance`` calls.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from ..data.records import SIGNATURE_BITS, signature_of, signature_width

__all__ = ["LiveRecord", "SlidingWindow", "WINDOW_POLICIES"]

#: Accepted ``TopkOptions.window_policy`` values.
WINDOW_POLICIES = ("count", "time")


@dataclass(frozen=True)
class LiveRecord:
    """One live window member."""

    #: Stream id: the arrival ordinal, unique for the engine's lifetime.
    sid: int
    #: Sorted, deduplicated tokens (may be empty; empty records occupy a
    #: window slot but join no pairs).
    tokens: Tuple[int, ...]
    #: Stream-clock value at arrival (0.0 under the count policy).
    arrival: float
    #: XOR-fold bitmap signature at the window's configured width
    #: (see :mod:`repro.data.records`).
    signature: int


class SlidingWindow:
    """FIFO live-record store; the engine drives all expiry decisions."""

    def __init__(
        self, size: int, policy: str, sig_bits: int = SIGNATURE_BITS
    ) -> None:
        if policy not in WINDOW_POLICIES:
            raise ValueError(
                "unknown window policy %r (choose from %s)"
                % (policy, ", ".join(WINDOW_POLICIES))
            )
        if size < 0:
            raise ValueError("window size must be >= 0, got %d" % size)
        self.size = size
        self.policy = policy
        self.sig_bits = signature_width(sig_bits)
        self.clock = 0.0
        self._records: "OrderedDict[int, LiveRecord]" = OrderedDict()
        self._next_sid = 0
        self._nonempty = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, tokens: Iterable[int]) -> LiveRecord:
        """Admit a record (canonicalized) and assign it the next sid."""
        canonical = tuple(sorted({int(t) for t in tokens}))
        record = LiveRecord(
            sid=self._next_sid,
            tokens=canonical,
            arrival=self.clock,
            signature=signature_of(canonical, self.sig_bits),
        )
        self._next_sid += 1
        self._records[record.sid] = record
        if canonical:
            self._nonempty += 1
        return record

    def pop_oldest(self) -> LiveRecord:
        """Remove and return the oldest live record (FIFO expiry)."""
        if not self._records:
            raise LookupError("the window is empty; nothing to expire")
        __, record = self._records.popitem(last=False)
        if record.tokens:
            self._nonempty -= 1
        return record

    def advance_clock(self, amount: float) -> float:
        """Move the stream clock forward by *amount*; returns the clock."""
        if amount < 0:
            raise ValueError("the stream clock cannot move backwards")
        self.clock += amount
        return self.clock

    # ------------------------------------------------------------------
    # Expiry queries (the engine applies the answers)
    # ------------------------------------------------------------------

    def count_overflow(self, arriving: int = 0) -> int:
        """How many oldest records a count-window must shed so that
        *arriving* more records fit.

        Always 0 under the ``"time"`` policy: time windows never
        displace on arrival — records only leave when the clock passes
        them.
        """
        if self.policy != "count" or self.size <= 0:
            return 0
        return max(0, len(self._records) + arriving - self.size)

    def timed_out(self) -> int:
        """How many oldest records have fallen out of the time window."""
        if self.size <= 0:
            return 0
        horizon = self.clock - self.size
        expired = 0
        for record in self._records.values():
            if record.arrival <= horizon:
                expired += 1
            else:
                break
        return expired

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, sid: int) -> bool:
        return sid in self._records

    def get(self, sid: int) -> Optional[LiveRecord]:
        return self._records.get(sid)

    def oldest(self) -> Optional[LiveRecord]:
        if not self._records:
            return None
        return next(iter(self._records.values()))

    def records(self) -> Iterator[LiveRecord]:
        """Live records in arrival (= sid) order."""
        return iter(self._records.values())

    def live_sids(self) -> List[int]:
        return list(self._records)

    @property
    def nonempty_count(self) -> int:
        """Live records with at least one token (the pair-space members)."""
        return self._nonempty

    def live_token_lists(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """``(sid, tokens)`` for every nonempty live record, in sid order."""
        return [
            (record.sid, record.tokens)
            for record in self._records.values()
            if record.tokens
        ]
