"""A deletion-capable top-k pair buffer — the streaming twin of ``TopKBuffer``.

The batch buffer (:mod:`repro.core.results`) rides on a monotone ``s_k``:
pairs are only ever displaced by better pairs, never deleted.  Streaming
breaks that — when a window member expires, every pair it participates
in dies, wherever it ranks — so this buffer adds per-record deletion
(:meth:`remove_record`) and accepts that ``s_k`` can *fall* after a
refill (:meth:`rebuild`).

Implementation: an exact member map (pair -> similarity), a per-sid pair
index for O(degree) deletion, and a lazy min-heap for the ``s_k`` /
eviction queries.  Heap entries are invalidated by integer sequence
number (never by comparing float similarities), mirroring the liveness
scheme of the batch buffer.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["StreamTopkBuffer"]

Pair = Tuple[int, int]


class StreamTopkBuffer:
    """Best-k pair buffer over a mutating pair space."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        self.k = k
        self._members: Dict[Pair, float] = {}
        self._by_sid: Dict[int, Set[Pair]] = {}
        self._heap: List[Tuple[float, int, Pair]] = []
        #: Sequence number of the live heap entry per member pair; stale
        #: entries (evicted/removed pairs) are discarded lazily when they
        #: surface at the heap top.
        self._live_seq: Dict[Pair, int] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def full(self) -> bool:
        return len(self._members) >= self.k

    @property
    def s_k(self) -> float:
        """Similarity of the k-th best member (0.0 while not full).

        NOT monotone: expiry of a member pair relaxes the bound.
        """
        if len(self._members) < self.k:
            return 0.0
        self._settle()
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._members

    def similarity_of(self, pair: Pair) -> float:
        return self._members[pair]

    def items(self) -> List[Tuple[Pair, float]]:
        """Current contents, best first (similarity desc, then pair asc)."""
        return sorted(
            self._members.items(), key=lambda item: (-item[1], item[0])
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(
        self, pair: Pair, similarity: float
    ) -> Tuple[bool, Optional[Tuple[Pair, float]]]:
        """Offer a pair; returns ``(added, evicted)``.

        A full buffer keeps the offer only when it strictly beats the
        current ``s_k`` (ties lose — any boundary-tied pair is an equally
        valid k-th result, and the incumbent wins).  *evicted* is the
        displaced ``(pair, similarity)`` when the add pushed one out.
        """
        if pair in self._members:
            return False, None
        if len(self._members) >= self.k:
            self._settle()
            if similarity <= self._heap[0][0]:
                return False, None
            evicted_entry = heapq.heappop(self._heap)
            evicted_pair = evicted_entry[2]
            evicted = (evicted_pair, self._members[evicted_pair])
            self._forget(evicted_pair)
            self._push(pair, similarity)
            return True, evicted
        self._push(pair, similarity)
        return True, None

    def remove_record(self, sid: int) -> List[Tuple[Pair, float]]:
        """Delete every member pair involving *sid*; best-first list."""
        removed = [
            (pair, self._members[pair])
            for pair in self._by_sid.get(sid, ())
        ]
        for pair, __ in removed:
            self._forget(pair)
        removed.sort(key=lambda item: (-item[1], item[0]))
        return removed

    def rebuild(self, pairs: List[Tuple[Pair, float]]) -> None:
        """Replace the whole contents (the refill pass after relaxation)."""
        self._members.clear()
        self._by_sid.clear()
        self._heap = []
        self._live_seq.clear()
        for pair, similarity in pairs:
            self._push(pair, similarity)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push(self, pair: Pair, similarity: float) -> None:
        self._sequence += 1
        self._members[pair] = similarity
        self._live_seq[pair] = self._sequence
        heapq.heappush(self._heap, (similarity, self._sequence, pair))
        for sid in pair:
            self._by_sid.setdefault(sid, set()).add(pair)

    def _forget(self, pair: Pair) -> None:
        del self._members[pair]
        del self._live_seq[pair]
        for sid in pair:
            bucket = self._by_sid.get(sid)
            if bucket is not None:
                bucket.discard(pair)
                if not bucket:
                    del self._by_sid[sid]

    def _settle(self) -> None:
        """Drop stale heap entries until a live member tops the heap."""
        heap = self._heap
        live = self._live_seq
        while heap and live.get(heap[0][2]) != heap[0][1]:
            heapq.heappop(heap)
