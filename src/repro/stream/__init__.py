"""Sliding-window streaming top-k join (SWOOP-style incremental engine).

The batch join answers "the k most similar pairs of this collection"
once.  This package answers it *continuously*: records arrive and expire
over a count- or time-based sliding window and the top-k result set over
the live window is maintained incrementally —

* an **arrival** probes the live inverted index under the current
  ``s_k`` bound, exactly as a prefix event of the batch loop probes the
  batch index (the one-sided prefix-filter lemma keeps this exact);
* an **expiry** evicts the oldest record's postings via
  ``InvertedIndex.trim_head`` (FIFO expiry means its postings sit at the
  head of every list they appear in) and, when a member of the top-k
  dies, triggers **bound relaxation**: a refill pass over the live
  window restores the exact top-k and lets ``s_k`` fall;
* every mutation reports **result deltas** — which pairs entered or
  left the live top-k.

See ``docs/STREAMING.md`` for the model, the window semantics and the
exactness argument, and :mod:`repro.oracle` for the streaming oracle,
differential backends and event-trace fuzzer that hold the engine to
the brute-force answer after every single event.
"""

from __future__ import annotations

from .buffer import StreamTopkBuffer
from .engine import StreamDelta, StreamingTopkEngine
from .events import (
    StreamEvent,
    format_event,
    load_event_file,
    parse_event,
    read_events,
    save_event_file,
)
from .window import LiveRecord, SlidingWindow

__all__ = [
    "LiveRecord",
    "SlidingWindow",
    "StreamDelta",
    "StreamEvent",
    "StreamTopkBuffer",
    "StreamingTopkEngine",
    "format_event",
    "load_event_file",
    "parse_event",
    "read_events",
    "save_event_file",
]
