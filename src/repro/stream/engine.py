"""``StreamingTopkEngine`` — exact incremental top-k over a sliding window.

The engine keeps three pieces of state per live window:

* the :class:`~repro.stream.window.SlidingWindow` of live records
  (keyed by stream ids — arrival ordinals that never recycle);
* a full-token :class:`~repro.index.inverted.InvertedIndex` over the
  live records, postings in arrival order;
* a :class:`~repro.stream.buffer.StreamTopkBuffer` holding, at every
  instant, an exact top-``min(k, P)`` of the ``P`` live pairs.

**Arrival.**  While the buffer is not full, the new record is verified
against every live record — every live pair belongs in the buffer, and
token-disjoint (similarity-0) pairs are part of the pair space exactly
as the batch join's zero-padding treats them.  Once the buffer is full,
the arrival probes only its ``probing_prefix_length(|x|, s_k)``-token
prefix against the index: by the one-sided prefix-filter argument, any
live ``y`` with ``sim(x, y) >= s_k`` shares a token with that prefix
(the index stores *all* of ``y``'s tokens), so every pair that could
strictly beat the bound is generated; pairs tied at ``s_k`` are
interchangeable with the incumbents and would be rejected by the buffer
anyway.  Survivors of the size filter (and the bitmap-signature
prefilter when acceleration is on) are verified with early abort at
``s_k``.

**Expiry.**  Expiry is strictly FIFO, so the dying record's posting is
at the head of every inverted list it appears in — eviction is
``trim_head(token, 1)`` per token.  Its buffer pairs are deleted; if any
died, the bound *relaxes*: when the buffer now holds fewer than
``min(k, P)`` pairs, a refill pass runs the exact batch join over the
live window and rebuilds the buffer (``s_k`` may fall — the paper's
monotone-``s_k`` machinery restarts from the relaxed bound).

Every mutation returns :class:`StreamDelta` notifications (pair entered
/ left the live top-k).  ``mode="recompute"`` swaps the incremental
maintenance for a full batch recompute after every event — the trivially
exact twin the differential fuzzer and the benchmark speedup row compare
against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..core.engine import EngineLifecycle
from ..core.metrics import StreamStats, TopkStats
from ..core.topk_join import TopkOptions, topk_join
from ..data.records import RecordCollection, signature_overlap_bound
from ..index.inverted import InvertedIndex
from ..obs.exporters import to_prometheus_text
from ..obs.tracer import Tracer
from ..oracle.invariants import StreamCheckHooks, invariant_checks_enabled
from ..result import JoinResult, sort_results
from ..similarity.functions import Jaccard, SimilarityFunction
from .buffer import StreamTopkBuffer
from .events import ADVANCE, EXPIRE, INSERT, StreamEvent
from .window import LiveRecord, SlidingWindow

__all__ = ["DeltaSubscriber", "StreamDelta", "StreamingTopkEngine", "STREAM_MODES"]

Pair = Tuple[int, int]

#: A delta-subscription callback: receives each event's non-empty delta
#: list, synchronously, after the event fully applied.
DeltaSubscriber = Callable[[List["StreamDelta"]], None]

#: Engine maintenance modes.
STREAM_MODES = ("incremental", "recompute")


@dataclass(frozen=True)
class StreamDelta:
    """One change of the live top-k result set."""

    #: ``"enter"`` or ``"leave"``.
    action: str
    #: The pair, by stream ids (``x < y``).
    x: int
    y: int
    similarity: float


class StreamingTopkEngine(EngineLifecycle):
    """Exact top-k over a count- or time-based sliding window.

    Window extent and policy come from ``TopkOptions.window_size`` /
    ``TopkOptions.window_policy``; ``options.accel`` toggles the
    bitmap-signature prefilter on the arrival probe and inside refill
    joins; ``options.check_invariants`` (or ``REPRO_CHECK=1``) arms the
    streaming runtime invariants; ``options.trace`` collects
    ``stream_ingest`` / ``stream_expire`` / ``stream_refill`` phase
    times and end-of-run metrics (phase timers overlap where phases
    nest: a displacement expiry inside an insert contributes to both).
    """

    def __init__(
        self,
        k: int,
        similarity: Optional[SimilarityFunction] = None,
        options: Optional[TopkOptions] = None,
        mode: str = "incremental",
        stats: Optional[StreamStats] = None,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        if mode not in STREAM_MODES:
            raise ValueError(
                "unknown stream mode %r (choose from %s)"
                % (mode, ", ".join(STREAM_MODES))
            )
        opts = options or TopkOptions()
        if opts.bound_provider is not None:
            raise ValueError(
                "the streaming engine manages its own bound; "
                "TopkOptions.bound_provider is not supported"
            )
        if opts.bipartite_sides is not None:
            raise ValueError(
                "the streaming engine is a self-join; "
                "TopkOptions.bipartite_sides is not supported"
            )
        self.k = k
        self.mode = mode
        self.stats = stats if stats is not None else StreamStats()
        self._sim = similarity or Jaccard()
        self._options = opts
        self._tracer = opts.trace
        self._use_bitmap = opts.accel != "off"
        self._checks: Optional[StreamCheckHooks] = None
        # Validates window_size/window_policy eagerly (before open).
        self._window = SlidingWindow(
            opts.window_size, opts.window_policy, sig_bits=opts.sig_bits
        )
        self._index = InvertedIndex()
        self._buffer = StreamTopkBuffer(k)
        self._delta_subscribers: List[DeltaSubscriber] = []
        #: Aggregate counters of every refill/recompute batch join.
        self.refill_stats = TopkStats()

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------

    def _on_open(self) -> None:
        opts = self._options
        self._window = SlidingWindow(
            opts.window_size, opts.window_policy, sig_bits=opts.sig_bits
        )
        self._index = InvertedIndex()
        self._buffer = StreamTopkBuffer(self.k)
        if invariant_checks_enabled(opts):
            self._checks = StreamCheckHooks()

    def _on_close(self) -> None:
        tracer = self._tracer
        if tracer is not None:
            with tracer.span(
                "stream_close",
                inserts=self.stats.inserts,
                expirations=self.stats.expirations,
                refills=self.stats.refills,
            ):
                self._publish_metrics(tracer)
        # Release the index (the bulky structure); the window and buffer
        # stay readable so final results survive close.
        self._index = InvertedIndex()

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------

    def apply(self, event: StreamEvent) -> List[StreamDelta]:
        """Apply one :class:`~repro.stream.events.StreamEvent`."""
        if event.kind == INSERT:
            return self.insert(event.tokens)
        if event.kind == EXPIRE:
            return self.expire(int(event.amount))
        if event.kind == ADVANCE:
            return self.advance(event.amount)
        raise ValueError("unknown event kind %r" % event.kind)

    def insert(self, tokens: Sequence[int]) -> List[StreamDelta]:
        """Admit one record; returns the top-k deltas it caused."""
        self._require_open("insert a record")
        started = time.perf_counter() if self._tracer is not None else 0.0
        deltas: List[StreamDelta] = []
        displaced = self._window.count_overflow(arriving=1)
        for __ in range(displaced):
            self._expire_one(deltas)
        record = self._window.append(tokens)
        self.stats.inserts += 1
        if len(self._window) > self.stats.window_peak:
            self.stats.window_peak = len(self._window)
        if self.mode == "recompute":
            # A displacement may kill a member pair, so s_k may fall.
            if displaced and self._checks is not None:
                self._checks.on_relaxation()
            self._rebuild_from_batch(deltas)
        elif record.tokens:
            self._probe(record, deltas)
            for position, token in enumerate(record.tokens, start=1):
                self._index.add(token, record.sid, position)
            if self._index.entry_count > self.stats.index_entries_peak:
                self.stats.index_entries_peak = self._index.entry_count
        if self._checks is not None:
            self._checks.after_event(self)
        if self._tracer is not None:
            self._tracer.add_phase_time(
                "stream_ingest", time.perf_counter() - started
            )
        self._notify(deltas)
        return deltas

    def expire(self, count: int = 1) -> List[StreamDelta]:
        """Explicitly expire the *count* oldest live records (clamped)."""
        self._require_open("expire records")
        if count < 0:
            raise ValueError("expire count must be >= 0, got %d" % count)
        deltas: List[StreamDelta] = []
        removed = min(count, len(self._window))
        for __ in range(removed):
            self._expire_one(deltas)
        if self.mode == "recompute" and removed:
            self._recompute_after_shrink(deltas)
        if self._checks is not None:
            self._checks.after_event(self)
        self._notify(deltas)
        return deltas

    def advance(self, amount: float) -> List[StreamDelta]:
        """Advance the window by *amount* (relative under both policies).

        ``"count"``: *amount* must be integral; that many oldest records
        expire (clamped to the live count).  ``"time"``: the stream
        clock moves forward by *amount* and every record that fell out
        of the window expires.  ``advance(a); advance(b)`` is equivalent
        to ``advance(a + b)`` under both policies.
        """
        self._require_open("advance the window")
        if amount < 0:
            raise ValueError("advance amount must be >= 0, got %r" % amount)
        self.stats.advances += 1
        deltas: List[StreamDelta] = []
        if self._window.policy == "count":
            if amount != int(amount):
                raise ValueError(
                    "count-policy advance amounts must be integral, "
                    "got %r" % amount
                )
            expired = min(int(amount), len(self._window))
        else:
            self._window.advance_clock(amount)
            expired = self._window.timed_out()
        for __ in range(expired):
            self._expire_one(deltas)
        if self.mode == "recompute" and expired:
            self._recompute_after_shrink(deltas)
        if self._checks is not None:
            self._checks.after_event(self)
        self._notify(deltas)
        return deltas

    # ------------------------------------------------------------------
    # Delta subscription
    # ------------------------------------------------------------------

    def subscribe(self, callback: DeltaSubscriber) -> Callable[[], None]:
        """Register *callback* for every event's non-empty delta list.

        Callbacks run synchronously inside :meth:`insert` /
        :meth:`expire` / :meth:`advance`, after the event fully applied
        and in registration order, so a subscriber observes the exact
        delta stream the caller receives — the ``repro serve`` daemon
        broadcasts push notifications from here.  Returns an unsubscribe
        callable (idempotent).  Subscriber exceptions propagate to the
        event caller; subscribers that must not disturb ingestion catch
        their own.
        """
        self._delta_subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._delta_subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, deltas: List[StreamDelta]) -> None:
        if not deltas or not self._delta_subscribers:
            return
        for callback in tuple(self._delta_subscribers):
            callback(deltas)

    # ------------------------------------------------------------------
    # Results and inspection
    # ------------------------------------------------------------------

    def results(self) -> List[JoinResult]:
        """The live top-``min(k, P)`` pairs, best first, by stream ids."""
        return sort_results(
            [
                JoinResult(pair[0], pair[1], value)
                for pair, value in self._buffer.items()
            ]
        )

    @property
    def s_k(self) -> float:
        """The k-th live similarity (0.0 while fewer than k live pairs)."""
        return self._buffer.s_k

    @property
    def clock(self) -> float:
        return self._window.clock

    @property
    def window_live(self) -> int:
        return len(self._window)

    @property
    def nonempty_count(self) -> int:
        return self._window.nonempty_count

    def live_sids(self) -> List[int]:
        return self._window.live_sids()

    def index_entries(self) -> Iterator[Tuple[int, int]]:
        """``(token, sid)`` for every live posting (invariant checks)."""
        for token in self._index.tokens():
            for sid, __ in self._index.postings(token):
                yield token, sid

    def publish_metrics(self, tracer: Tracer) -> None:
        """Fold the engine's counters and gauges into *tracer*'s registry.

        The ``repro serve`` daemon calls this on every live ``/metrics``
        scrape to combine the engine families with its own
        ``repro_serve_*`` families in one exposition.
        """
        self._publish_metrics(tracer)

    def metrics_text(self) -> str:
        """A Prometheus-format snapshot of the engine's current metrics.

        Built fresh on every call (counters are cumulative), so the CLI
        can rewrite a scrape file mid-stream as a live endpoint.
        """
        snapshot = Tracer()
        self._publish_metrics(snapshot)
        if self._tracer is not None:
            for name, (total, __) in sorted(
                self._tracer.phase_times().items()
            ):
                snapshot.add_phase_time(name, total)
        return to_prometheus_text(snapshot)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _probe(self, record: LiveRecord, deltas: List[StreamDelta]) -> None:
        """Generate and verify the new record's candidate pairs."""
        buffer = self._buffer
        sim = self._sim
        tokens = record.tokens
        if not buffer.full:
            # Every live pair belongs in a non-full buffer, including
            # token-disjoint similarity-0 pairs (the streaming analogue
            # of the batch join's zero-padding).
            for other in self._window.records():
                if other.sid == record.sid or not other.tokens:
                    continue
                value = sim.similarity(tokens, other.tokens)
                self.stats.probe_verifications += 1
                self._offer((other.sid, record.sid), value, deltas)
            return
        bound = buffer.s_k
        prefix = sim.probing_prefix_length(len(tokens), bound)
        seen = set()
        for token in tokens[:prefix]:
            for sid, __ in self._index.postings(token):
                seen.add(sid)
        self.stats.probe_candidates += len(seen)
        for sid in sorted(seen):
            other = self._window.get(sid)
            assert other is not None  # the index holds live sids only
            alpha = sim.required_overlap(bound, len(tokens), len(other.tokens))
            if alpha > min(len(tokens), len(other.tokens)):
                self.stats.size_pruned += 1
                continue
            if self._use_bitmap:
                self.stats.bitmap_checked += 1
                bitmap_bound = signature_overlap_bound(
                    record.signature, other.signature, len(tokens),
                    len(other.tokens),
                )
                if bitmap_bound < alpha:
                    self.stats.bitmap_pruned += 1
                    continue
            value = sim.verify(tokens, other.tokens, bound)
            self.stats.probe_verifications += 1
            # An aborted merge returns some value < bound <= current
            # s_k, which the buffer rejects — only exact values enter.
            self._offer((sid, record.sid), value, deltas)

    def _offer(
        self, pair: Pair, value: float, deltas: List[StreamDelta]
    ) -> None:
        added, evicted = self._buffer.add(pair, value)
        if not added:
            return
        if evicted is not None:
            self.stats.pairs_left += 1
            deltas.append(
                StreamDelta("leave", evicted[0][0], evicted[0][1], evicted[1])
            )
        self.stats.pairs_entered += 1
        deltas.append(StreamDelta("enter", pair[0], pair[1], value))

    def _expire_one(self, deltas: List[StreamDelta]) -> None:
        """FIFO-expire the oldest record; refill if a member pair died."""
        started = time.perf_counter() if self._tracer is not None else 0.0
        record = self._window.pop_oldest()
        self.stats.expirations += 1
        if self.mode == "recompute":
            # No index, no incremental buffer surgery: the caller runs
            # one batch recompute after the whole event.
            if self._tracer is not None:
                self._tracer.add_phase_time(
                    "stream_expire", time.perf_counter() - started
                )
            return
        if record.tokens:
            for token in record.tokens:
                if self._checks is not None:
                    self._checks.on_trim(self._index, token, record.sid)
                self._index.trim_head(token, 1)
            bound_before = self._buffer.s_k
            dead = self._buffer.remove_record(record.sid)
            for pair, value in dead:
                self.stats.pairs_left += 1
                deltas.append(StreamDelta("leave", pair[0], pair[1], value))
            if dead:
                if self._checks is not None:
                    self._checks.on_relaxation()
                self._maybe_refill(deltas, bound_before)
        if self._tracer is not None:
            self._tracer.add_phase_time(
                "stream_expire", time.perf_counter() - started
            )

    def _maybe_refill(
        self, deltas: List[StreamDelta], bound_before: float
    ) -> None:
        """Refill after member death iff the buffer fell below target.

        The buffer must hold ``min(k, P)`` pairs (``P`` = live pair
        count).  When every remaining live pair is already a member, the
        dead pairs cannot be replaced and no refill is needed.
        *bound_before* is the pre-expiry ``s_k`` the relaxation check
        compares the refilled bound against.
        """
        live = self._window.nonempty_count
        possible = live * (live - 1) // 2
        if len(self._buffer) < min(self.k, possible):
            self.stats.refills += 1
            self._rebuild_from_batch(deltas)
            if self._checks is not None:
                self._checks.on_refill(bound_before, self._buffer.s_k)

    def _recompute_after_shrink(self, deltas: List[StreamDelta]) -> None:
        """Recompute-mode rebuild after expiries (the pair space shrank)."""
        bound_before = self._buffer.s_k
        if self._checks is not None:
            self._checks.on_relaxation()
        self._rebuild_from_batch(deltas)
        if self._checks is not None:
            self._checks.on_refill(bound_before, self._buffer.s_k)

    def _rebuild_from_batch(self, deltas: List[StreamDelta]) -> None:
        """Adopt the exact batch answer over the live window.

        A relaxation rebuild may swap boundary-tied members (the batch
        join picks its own valid tie-break); the deltas report the swap
        and the answer stays tie-equivalent to every valid top-k.
        """
        started = time.perf_counter() if self._tracer is not None else 0.0
        old_items = self._buffer.items()
        new_items = self._batch_topk()
        self._buffer.rebuild(new_items)
        new_pairs = {pair for pair, __ in new_items}
        old_pairs = {pair for pair, __ in old_items}
        for pair, value in old_items:
            if pair not in new_pairs:
                self.stats.pairs_left += 1
                deltas.append(StreamDelta("leave", pair[0], pair[1], value))
        for pair, value in new_items:
            if pair not in old_pairs:
                self.stats.pairs_entered += 1
                deltas.append(StreamDelta("enter", pair[0], pair[1], value))
        if self._tracer is not None:
            self._tracer.add_phase_time(
                "stream_refill", time.perf_counter() - started
            )

    def _batch_topk(self) -> List[Tuple[Pair, float]]:
        """The exact batch top-k over the live window, pairs by sid."""
        live = self._window.live_token_lists()
        if len(live) < 2:
            return []
        collection = RecordCollection.from_integer_sets(
            [list(tokens) for __, tokens in live], dedupe=False
        )
        # The inner join must not re-enter the tracer (its end-of-run
        # absorption would pollute the stream's metric families); its
        # counters aggregate into refill_stats instead.
        options = replace(self._options, trace=None)
        results = topk_join(
            collection, self.k, similarity=self._sim, options=options,
            stats=self.refill_stats,
        )
        sid_by_source = [sid for sid, __ in live]
        records = collection.records
        out: List[Tuple[Pair, float]] = []
        for r in results:
            a = sid_by_source[records[r.x].source_id]
            b = sid_by_source[records[r.y].source_id]
            pair = (a, b) if a < b else (b, a)
            out.append((pair, r.similarity))
        return out

    def _publish_metrics(self, tracer: Tracer) -> None:
        """Fold the engine's counters and gauges into *tracer*'s registry."""
        registry = tracer.metrics
        registry.absorb_stream_stats(self.stats)
        registry.absorb_topk_stats(self.refill_stats)
        registry.gauge(
            "repro_stream_s_k",
            "Current k-th live similarity of the streaming engine.",
            mode="last",
        ).set(self._buffer.s_k)
        registry.gauge(
            "repro_stream_window_live",
            "Live records currently in the sliding window.",
            mode="last",
        ).set(float(len(self._window)))
        registry.gauge(
            "repro_stream_clock",
            "Current stream clock (time-policy windows).",
            mode="last",
        ).set(self._window.clock)
        registry.gauge(
            "repro_stream_results_live",
            "Pairs currently in the live top-k result set.",
            mode="last",
        ).set(float(len(self._buffer)))
