"""Stream event model: a replayable insert/expire/advance trace.

One event per line, in a format every dataset file already satisfies
(a line of bare integers is an insert), so ``repro stream`` can replay
either a hand-written trace or any existing record file:

* ``+ 3 17 42`` (or just ``3 17 42``) — insert a record with those
  tokens; ``+`` alone inserts an empty record (it occupies a window
  slot but joins no pairs);
* ``- 2`` — expire the 2 oldest live records (``-`` alone expires 1);
* ``> 1.5`` — advance the window by 1.5: under the ``"count"`` policy
  the amount must be integral and expires that many oldest records;
  under the ``"time"`` policy it moves the stream clock forward and
  expires everything that fell out of the window;
* blank lines and ``#`` comments are skipped.

The same trace serializes losslessly to JSON (one compact list per
event) for the fuzz corpus under ``tests/corpus/stream_*.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "INSERT",
    "EXPIRE",
    "ADVANCE",
    "StreamEvent",
    "events_from_lists",
    "events_to_lists",
    "format_event",
    "load_event_file",
    "parse_event",
    "read_events",
    "save_event_file",
]

#: Event kinds.
INSERT = "insert"
EXPIRE = "expire"
ADVANCE = "advance"

#: JSON list form of one event, e.g. ``["+", [3, 17]]`` / ``["-", 2]``
#: / ``[">", 1.5]``.
EventList = Sequence[Union[str, float, int, Sequence[int]]]


@dataclass(frozen=True)
class StreamEvent:
    """One window mutation: an insert, an expiry, or a clock advance."""

    kind: str
    #: Insert payload (sorted deduplicated on engine entry, kept raw here).
    tokens: Tuple[int, ...] = ()
    #: Expire count (``expire``) or advance amount (``advance``).
    amount: float = 1.0

    @classmethod
    def insert(cls, tokens: Iterable[int]) -> "StreamEvent":
        return cls(INSERT, tokens=tuple(int(t) for t in tokens))

    @classmethod
    def expire(cls, count: int = 1) -> "StreamEvent":
        if count < 1:
            raise ValueError("expire count must be >= 1, got %d" % count)
        return cls(EXPIRE, amount=float(count))

    @classmethod
    def advance(cls, amount: float) -> "StreamEvent":
        if amount < 0:
            raise ValueError("advance amount must be >= 0, got %r" % amount)
        return cls(ADVANCE, amount=float(amount))


def parse_event(line: str) -> Optional[StreamEvent]:
    """Parse one text line; ``None`` for blanks and ``#`` comments."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    head, *rest = text.split()
    if head == "+":
        return StreamEvent.insert(int(item) for item in rest)
    if head == "-":
        if len(rest) > 1:
            raise ValueError("expire takes at most one count: %r" % line)
        return StreamEvent.expire(int(rest[0]) if rest else 1)
    if head == ">":
        if len(rest) != 1:
            raise ValueError("advance takes exactly one amount: %r" % line)
        return StreamEvent.advance(float(rest[0]))
    # A bare token list is an insert — any dataset file is a valid
    # insert-only stream.
    try:
        return StreamEvent.insert(int(item) for item in [head, *rest])
    except ValueError as error:
        raise ValueError("unparseable stream event: %r" % line) from error


def format_event(event: StreamEvent) -> str:
    """The text-line form of *event* (inverse of :func:`parse_event`)."""
    if event.kind == INSERT:
        return " ".join(["+", *(str(t) for t in event.tokens)])
    if event.kind == EXPIRE:
        return "- %d" % int(event.amount)
    if event.kind == ADVANCE:
        return "> %s" % repr(event.amount)
    raise ValueError("unknown event kind %r" % event.kind)


def read_events(lines: Iterable[str]) -> Iterator[StreamEvent]:
    """Parse a line iterable, reporting the offending line number."""
    for number, line in enumerate(lines, start=1):
        try:
            event = parse_event(line)
        except ValueError as error:
            raise ValueError("line %d: %s" % (number, error)) from error
        if event is not None:
            yield event


def load_event_file(path: str) -> List[StreamEvent]:
    """Read a whole event trace from *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(read_events(handle))


def save_event_file(path: str, events: Iterable[StreamEvent]) -> None:
    """Write *events* to *path*, one line each."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(format_event(event))
            handle.write("\n")


def events_to_lists(events: Iterable[StreamEvent]) -> List[List[object]]:
    """JSON-ready compact form: ``["+", tokens]`` / ``["-", n]`` /
    ``[">", amount]``."""
    out: List[List[object]] = []
    for event in events:
        if event.kind == INSERT:
            out.append(["+", list(event.tokens)])
        elif event.kind == EXPIRE:
            out.append(["-", int(event.amount)])
        else:
            out.append([">", event.amount])
    return out


def events_from_lists(payload: Iterable[EventList]) -> List[StreamEvent]:
    """Inverse of :func:`events_to_lists` (raises ``ValueError`` on junk)."""
    events: List[StreamEvent] = []
    for item in payload:
        entry = list(item)
        if len(entry) != 2 or not isinstance(entry[0], str):
            raise ValueError("malformed stream event entry: %r" % (item,))
        op, value = entry
        if op == "+":
            if not isinstance(value, (list, tuple)):
                raise ValueError("insert payload must be a list: %r" % (item,))
            events.append(StreamEvent.insert(int(t) for t in value))
        elif op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError("expire count must be a number: %r" % (item,))
            events.append(StreamEvent.expire(int(value)))
        elif op == ">":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError("advance amount must be a number: %r" % (item,))
            events.append(StreamEvent.advance(float(value)))
        else:
            raise ValueError("unknown stream event op %r" % (op,))
    return events
