"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables legacy
installs (``python setup.py develop`` / ``pip install -e .`` with old
tooling).
"""

from setuptools import setup

setup()
