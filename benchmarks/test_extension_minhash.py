"""Extension benchmark — exact topk-join vs approximate MinHash/LSH.

Not a paper figure: the paper's related work (Section VIII) positions
LSH-style approximate techniques as the alternative to exact
prefix-filtering joins.  This bench quantifies the trade-off on the
DBLP-like workload: the approximate join's recall@k against the exact
answer, and both running times.
"""

import time

from repro import topk_join
from repro.approx import approximate_topk
from repro.bench import collection, format_table, write_report

K = 200


def test_extension_minhash_recall(once):
    def driver():
        coll = collection("dblp")
        start = time.perf_counter()
        exact = topk_join(coll, K)
        exact_seconds = time.perf_counter() - start

        rows = []
        exact_pairs = {(r.x, r.y) for r in exact}
        for bands, rows_per_band in ((8, 16), (16, 8), (32, 4)):
            start = time.perf_counter()
            approx = approximate_topk(
                coll, K, bands=bands, rows=rows_per_band, seed=7
            )
            seconds = time.perf_counter() - start
            approx_pairs = {(r.x, r.y) for r in approx}
            recall = len(exact_pairs & approx_pairs) / len(exact_pairs)
            rows.append(
                ("%dx%d" % (bands, rows_per_band), recall, seconds)
            )
        rows.append(("exact topk-join", 1.0, exact_seconds))
        return rows

    rows = once(driver)
    write_report(
        "extension_minhash_recall",
        "Extension — approximate (MinHash/LSH) vs exact top-k, DBLP-like, "
        "k=%d" % K,
        format_table(["bands x rows", "recall@k", "seconds"], rows),
    )

    recalls = {label: recall for label, recall, __ in rows}
    # More bands (lower collision threshold) must not hurt recall much;
    # the aggressive 32x4 configuration should be near-exhaustive.
    assert recalls["32x4"] >= 0.7
    assert recalls["exact topk-join"] == 1.0
