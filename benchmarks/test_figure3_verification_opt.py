"""Figure 3(a) — hash-table entries: topk-join vs record-all (TREC, Jaccard).

The paper reports that Algorithm 6 (store a verified pair only when it can
be generated again) cuts the hash table to a fraction of remember-everything
``record-all``, with identical results.
"""

from repro.bench import ascii_chart, figure3a_rows, format_table, write_report


def test_figure3a_hash_table_entries(once):
    rows = once(figure3a_rows)
    table = format_table(["k", "topk-join (optimized)", "record-all"], rows)
    chart = ascii_chart(
        {
            "topk-join": [(k, optimized) for k, optimized, __ in rows],
            "record-all": [(k, all_count) for k, __, all_count in rows],
        },
        x_label="k", y_label="hash entries",
    )
    write_report(
        "figure3a_hash_entries",
        "Figure 3(a) — verification hash-table entries (TREC-like, Jaccard)",
        table + "\n\n" + chart,
    )

    for k, optimized, record_all in rows:
        assert optimized <= record_all, (
            "optimisation must never store more pairs (k=%d)" % k
        )
    # Across the sweep the optimisation must save materially.  The paper
    # reports ~33% on the real TREC corpus; the synthetic stand-in's
    # verified-pair population is denser in near-duplicates (which are
    # legitimately re-generatable and must be stored), so the achievable
    # cut is smaller — we assert a >= 5% saving and record the measured
    # ratio in the report.
    total_optimized = sum(row[1] for row in rows)
    total_all = sum(row[2] for row in rows)
    assert total_optimized < 0.95 * total_all
    # Hash sizes grow with k (both variants).
    record_all_series = [row[2] for row in rows]
    assert record_all_series == sorted(record_all_series)
