"""Figure 5(a) — average verifications per record vs k (TREC, Jaccard).

The paper's observation: topk-join verifies far fewer than k pairs per
record (13.3 at k=500, 397.8 at k=2500 in the paper) — fewer even than a
hypothetical Oracle algorithm that verifies exactly the k best candidates
per record.
"""

from repro.bench import ascii_chart, figure5a_rows, format_table, write_report


def test_figure5a_verifications_per_record(once):
    rows = once(figure5a_rows)
    table = format_table(["k", "verifications per record"], rows)
    chart = ascii_chart(
        {
            "topk-join": list(rows),
            "k (oracle line)": [(k, float(k)) for k, __ in rows],
        },
        log_y=True, x_label="k", y_label="verifications per record",
    )
    write_report(
        "figure5a_verifications_per_record",
        "Figure 5(a) — verifications per record (TREC-like, Jaccard)",
        table + "\n\n" + chart,
    )

    for k, per_record in rows:
        assert per_record < k, (
            "verifications/record (%.1f) must stay below k=%d" % (per_record, k)
        )
    series = [per_record for __, per_record in rows]
    assert series == sorted(series), "work grows with k"
