"""Figure 2 — token-frequency and record-size distributions.

Panel (a): token frequency follows an approximate Zipf law (DBLP shown in
the paper; all datasets are similar).  Panels (b, c): the record-size
distributions differ sharply across datasets — that contrast is what
drives the differing algorithm behaviour in Figures 3-5.
"""

import pytest

from repro.bench import ascii_chart, figure2_series, format_table, write_report


@pytest.mark.parametrize("name", ["dblp", "trec", "trec-3gram", "uniref-3gram"])
def test_figure2_distributions(once, name):
    token_series, size_series = once(figure2_series, name)

    body = "\n\n".join(
        [
            "Token-frequency distribution (log-binned):\n"
            + format_table(["frequency (bin center)", "#tokens"], token_series),
            ascii_chart(
                {"tokens": token_series}, log_x=True, log_y=True,
                x_label="document frequency", y_label="#tokens",
            ),
            "Record-size distribution (log-binned):\n"
            + format_table(["record size (bin center)", "#records"], size_series),
            ascii_chart(
                {"records": size_series}, log_x=True, log_y=True,
                x_label="record size", y_label="#records",
            ),
        ]
    )
    write_report(
        "figure2_distribution_%s" % name,
        "Figure 2 — distributions, %s" % name,
        body,
    )

    # Zipf shape: many rare tokens, few frequent ones.  (Log bins have
    # uneven widths, so compare the head region against the tail rather
    # than single bins.)
    counts = [count for __, count in token_series]
    assert max(counts[:3]) == max(counts), "head bins must dominate"
    assert max(counts[:3]) > 10 * counts[-1], "heavy head vs light tail"
    assert size_series, "size histogram must be non-empty"
