"""Ablation benchmarks for design choices beyond the paper's figures.

DESIGN.md calls out three mechanisms whose effect the paper describes but
does not plot separately; these benches quantify each on the TREC-like
workload so regressions in any of them are visible:

* prefix-event compression (Section V-C) — fewer heap operations;
* temporary-result seeding (Section V-B) — fewer warm-up verifications;
* the accessing-bound list truncation (Section IV-C) — smaller index.
"""

import time

from repro import TopkOptions, TopkStats, topk_join
from repro.bench import collection, format_table, workload, write_report

K = 1000


def _run(**overrides):
    bench = workload("trec")
    options = TopkOptions(maxdepth=bench.maxdepth, **overrides)
    stats = TopkStats()
    start = time.perf_counter()
    topk_join(
        collection("trec"), K, similarity=bench.similarity,
        options=options, stats=stats,
    )
    return stats, time.perf_counter() - start


def test_ablation_event_compression(once):
    def driver():
        with_stats, with_seconds = _run(compress_events=True)
        without_stats, without_seconds = _run(compress_events=False)
        return [
            ("compressed", with_stats.events, with_seconds),
            ("per-record", without_stats.events, without_seconds),
        ]

    rows = once(driver)
    write_report(
        "ablation_event_compression",
        "Ablation — prefix-event compression (TREC-like, k=%d)" % K,
        format_table(["events", "heap pops", "seconds"], rows),
    )
    compressed_pops = rows[0][1]
    plain_pops = rows[1][1]
    assert compressed_pops <= plain_pops, (
        "compression must not increase heap pops"
    )


def test_ablation_seeding(once):
    def driver():
        with_stats, with_seconds = _run(seed_results=True)
        without_stats, without_seconds = _run(seed_results=False)
        return [
            ("seeded", with_stats.verifications, with_seconds),
            ("unseeded", without_stats.verifications, without_seconds),
        ]

    rows = once(driver)
    write_report(
        "ablation_seeding",
        "Ablation — temporary-result seeding (TREC-like, k=%d)" % K,
        format_table(["seeding", "verifications", "seconds"], rows),
    )
    seeded_verifications = rows[0][1]
    unseeded_verifications = rows[1][1]
    assert seeded_verifications <= unseeded_verifications * 1.1, (
        "seeding should not inflate verification counts materially"
    )


def test_ablation_access_optimization(once):
    def driver():
        with_stats, with_seconds = _run(access_optimization=True)
        without_stats, without_seconds = _run(access_optimization=False)
        return [
            (
                "access opt on",
                with_stats.index_deleted,
                with_stats.candidates,
                with_seconds,
            ),
            (
                "access opt off",
                without_stats.index_deleted,
                without_stats.candidates,
                without_seconds,
            ),
        ]

    rows = once(driver)
    write_report(
        "ablation_access_optimization",
        "Ablation — accessing-bound truncation (TREC-like, k=%d)" % K,
        format_table(
            ["variant", "postings deleted", "candidates", "seconds"], rows
        ),
    )
    assert rows[0][1] >= 0
    assert rows[1][1] == 0, "without the optimisation nothing is truncated"
    assert rows[0][2] <= rows[1][2], (
        "truncation must not increase scanned candidates"
    )
