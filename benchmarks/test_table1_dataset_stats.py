"""Table I — dataset statistics (record count, avg size, universe size).

Paper values (for the real corpora) vs this reproduction's scaled-down
synthetic stand-ins; the *relationships* must match: DBLP has short
records, TREC long ones, the 3-gram sets very long ones, and every token
universe is large relative to the record count's scale.
"""

from repro.bench import format_table, table1_rows, write_report


def test_table1_dataset_statistics(once):
    rows = once(table1_rows)
    table = format_table(["dataset", "N", "avg size", "|U|"], rows)
    write_report("table1_dataset_stats", "Table I — dataset statistics", table)

    stats = {row[0]: row for row in rows}
    # Shape claims from the paper's Table I.
    assert stats["dblp"][2] < 30, "DBLP-like records must be short"
    assert stats["trec"][2] > 60, "TREC-like records must be long"
    assert stats["trec-3gram"][2] > stats["trec"][2], (
        "3-gram records are the longest"
    )
    assert all(row[1] > 100 for row in rows), "non-trivial record counts"
