"""Parallel backend speedup (Figure 4 flavour: wall-clock vs workers).

Runs the sequential join and the sharded parallel join over a DBLP-like
collection of 20k records and reports wall-clock times plus the internal
counters.  Exactness (identical similarity multiset) is asserted
unconditionally; the >1.5x speedup at 4 workers is asserted only on
machines that actually have 4+ cores — on smaller CI runners the table is
still produced and persisted for inspection.
"""

import os
import time

from repro import TopkStats, parallel_topk_join, topk_join
from repro.bench import format_table, write_report
from repro.data.synthetic import dblp_like
from repro.result import similarity_multiset

RECORDS = 20_000
K = 100
WORKER_COUNTS = (1, 2, 4)


def test_parallel_speedup(once):
    collection = dblp_like(RECORDS, seed=42)

    def run_all():
        runs = []
        stats = TopkStats()
        start = time.perf_counter()
        baseline = topk_join(collection, K, stats=stats)
        runs.append(("sequential", time.perf_counter() - start,
                     stats, baseline))
        for workers in WORKER_COUNTS:
            stats = TopkStats()
            start = time.perf_counter()
            results = parallel_topk_join(
                collection, K, workers=workers, stats=stats
            )
            runs.append(("parallel w=%d" % workers,
                         time.perf_counter() - start, stats, results))
        return runs

    runs = once(run_all)

    base_label, base_elapsed, __, baseline = runs[0]
    rows = []
    for label, elapsed, stats, results in runs:
        rows.append((
            label,
            elapsed,
            base_elapsed / elapsed if elapsed else 0.0,
            stats.verifications,
            stats.candidates,
        ))
        # Exactness: every configuration returns the same top-k
        # similarity multiset.
        assert similarity_multiset(results) == similarity_multiset(baseline)

    table = format_table(
        ["configuration", "seconds", "speedup", "verifications",
         "candidates"],
        rows,
    )
    write_report(
        "parallel_speedup",
        "Parallel top-k join — %d DBLP-like records, k=%d (%d cores)"
        % (RECORDS, K, os.cpu_count() or 1),
        table,
    )

    cores = os.cpu_count() or 1
    if cores >= 4:
        four_worker = next(r for r in rows if r[0] == "parallel w=4")
        assert four_worker[2] > 1.5, (
            "expected >1.5x speedup at 4 workers, got %.2fx"
            % four_worker[2]
        )
