"""Micro-benchmarks of the hot building blocks.

Not a paper figure — these track the per-operation costs that dominate the
Python implementation (similarity merges, suffix-filter probes, bound
arithmetic, index maintenance), so regressions in the substrate are caught
independently of the end-to-end sweeps.
"""

import random

import pytest

from repro.index import BoundedInvertedIndex
from repro.joins.filters import suffix_hamming_lower_bound
from repro.similarity import Cosine, Jaccard
from repro.similarity.overlap import (
    overlap_with_common_positions,
    overlap_with_early_abort,
)


@pytest.fixture(scope="module")
def long_records():
    rng = random.Random(99)
    x = tuple(sorted(rng.sample(range(5000), 400)))
    y = tuple(sorted(rng.sample(range(5000), 400)))
    return x, y


def test_bench_similarity_merge(benchmark, long_records):
    x, y = long_records
    sim = Jaccard()
    benchmark(sim.similarity, x, y)


def test_bench_verify_with_early_abort(benchmark, long_records):
    x, y = long_records
    benchmark(overlap_with_early_abort, x, y, 300)


def test_bench_overlap_with_positions(benchmark, long_records):
    x, y = long_records
    benchmark(overlap_with_common_positions, x, y, 0)


def test_bench_suffix_filter_probe(benchmark, long_records):
    x, y = long_records
    benchmark(suffix_hamming_lower_bound, x, y, 50, 1, 4)


def test_bench_required_overlap(benchmark):
    sim = Jaccard()
    benchmark(sim.required_overlap, 0.8123, 250, 300)


def test_bench_probing_bound(benchmark):
    sim = Cosine()
    benchmark(sim.probing_upper_bound, 300, 17)


def test_bench_index_insert_and_truncate(benchmark):
    def build_and_truncate():
        index = BoundedInvertedIndex()
        for rid in range(2000):
            index.add(rid % 50, rid, 1, 1.0 - rid * 1e-4)
        for token in range(50):
            index.truncate(token, 10)
        return index.entry_count

    benchmark(build_and_truncate)
