"""Extension benchmark — pptopk's sensitivity to the threshold schedule.

Section VII-D of the paper explains pptopk's weakness: "a subtle
difference between the guessed similarity threshold and the final s_k
might lead to a huge increase in candidate size".  This bench makes that
concrete by sweeping schedule aggressiveness on the TREC-like workload,
with the threshold-free topk-join as the reference.
"""

import time

from repro import PptopkStats, TopkStats, TopkOptions, pptopk_join, topk_join
from repro.bench import collection, format_table, workload, write_report
from repro.core.pptopk import geometric_threshold_schedule

K = 1000


def test_extension_schedule_sensitivity(once):
    def driver():
        coll = collection("trec")
        bench = workload("trec")
        rows = []
        for label, ratio in (("cautious (x0.95)", 0.95),
                             ("moderate (x0.8)", 0.8),
                             ("aggressive (x0.5)", 0.5)):
            stats = PptopkStats()
            start = time.perf_counter()
            pptopk_join(
                coll, K,
                thresholds=list(geometric_threshold_schedule(0.95, ratio)),
                maxdepth=bench.maxdepth,
                stats=stats,
            )
            seconds = time.perf_counter() - start
            rows.append(
                (label, stats.rounds, stats.round_results[-1],
                 stats.verifications, seconds)
            )
        topk_stats = TopkStats()
        start = time.perf_counter()
        topk_join(
            coll, K, options=TopkOptions(maxdepth=bench.maxdepth),
            stats=topk_stats,
        )
        seconds = time.perf_counter() - start
        rows.append(
            ("topk-join (no guess)", 1, K, topk_stats.verifications, seconds)
        )
        return rows

    rows = once(driver)
    write_report(
        "extension_schedule_sensitivity",
        "Extension — pptopk schedule sensitivity (TREC-like, k=%d)" % K,
        format_table(
            ["schedule", "rounds", "final results", "verifications",
             "seconds"],
            rows,
        ),
    )

    by_label = {row[0]: row for row in rows}
    # Cautious guessing pays in rounds; aggressive guessing overshoots in
    # results produced.
    assert by_label["cautious (x0.95)"][1] >= by_label["aggressive (x0.5)"][1]
    assert (
        by_label["aggressive (x0.5)"][2]
        >= by_label["cautious (x0.95)"][2]
    )
