"""Extension benchmark — similarity search throughput.

Related-work problem (Section VIII, [24]-[27]): single-query search over
an indexed collection.  Measures top-k and threshold query latency against
a full scan, on the DBLP-like workload.
"""

import random
import time

from repro.bench import collection, format_table, write_report
from repro.search import SearchIndex
from repro.similarity import Jaccard

QUERY_COUNT = 200


def test_extension_search_throughput(once):
    def driver():
        coll = collection("dblp")
        index = SearchIndex(coll)
        rng = random.Random(17)
        queries = [
            coll[rng.randrange(len(coll))].tokens for __ in range(QUERY_COUNT)
        ]

        start = time.perf_counter()
        for query in queries:
            index.topk_search(query, 10)
        topk_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for query in queries:
            index.threshold_search(query, 0.8)
        threshold_seconds = time.perf_counter() - start

        sim = Jaccard()
        start = time.perf_counter()
        for query in queries[:20]:  # the scan is too slow for all 200
            scores = sorted(
                (
                    sim.similarity(query, record.tokens)
                    for record in coll
                ),
                reverse=True,
            )[:10]
            assert scores
        scan_seconds = (time.perf_counter() - start) * (QUERY_COUNT / 20)

        return [
            ("indexed top-10", QUERY_COUNT, topk_seconds),
            ("indexed threshold 0.8", QUERY_COUNT, threshold_seconds),
            ("full scan top-10 (extrapolated)", QUERY_COUNT, scan_seconds),
        ]

    rows = once(driver)
    write_report(
        "extension_search_throughput",
        "Extension — similarity search, %d queries over the DBLP-like "
        "collection" % QUERY_COUNT,
        format_table(["method", "queries", "seconds"], rows),
    )

    by_label = {row[0]: row[2] for row in rows}
    # Threshold queries probe only the query's prefix tokens and verify a
    # handful of candidates — the robust win.  Top-k latency depends on how
    # similar the k-th neighbour is (a dissimilar tail forces a deep walk),
    # so it is reported but not asserted against the scan.
    assert by_label["indexed threshold 0.8"] < by_label[
        "full scan top-10 (extrapolated)"
    ], "threshold search must beat a full scan"
