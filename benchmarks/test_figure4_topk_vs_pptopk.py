"""Figure 4 — candidate size and running time: topk-join vs pptopk.

Panels (a, d): DBLP-like, Jaccard.  Panels (b, e): TREC-like, Jaccard.
Panels (c, f): TREC-3GRAM-like, cosine.  The paper's shape claims:

* both algorithms verify more candidates as k grows; topk-join's counts
  grow smoothly while pptopk's jump at threshold-round boundaries;
* topk-join wins on running time in most settings (up to 1.6x on DBLP,
  2x on TREC, 3.4x on TREC-3GRAM in the paper).
"""

import pytest

from repro.bench import ascii_chart, figure4_rows, format_table, write_report

PANELS = [
    pytest.param("dblp", "a/d", id="dblp-jaccard"),
    pytest.param("trec", "b/e", id="trec-jaccard"),
    pytest.param("trec-3gram", "c/f", id="trec3gram-cosine"),
]


@pytest.mark.parametrize("name,panel", PANELS)
def test_figure4_candidates_and_time(once, name, panel):
    rows = once(figure4_rows, name)
    table = format_table(
        ["k", "verified (topk-join)", "verified (pptopk)",
         "seconds (topk-join)", "seconds (pptopk)"],
        rows,
    )
    candidates_chart = ascii_chart(
        {
            "topk-join": [(k, verified) for k, verified, *__ in rows],
            "pptopk": [(k, verified) for k, __, verified, *__u in rows],
        },
        log_y=True, x_label="k", y_label="pairs verified",
    )
    time_chart = ascii_chart(
        {
            "topk-join": [(row[0], row[3]) for row in rows],
            "pptopk": [(row[0], row[4]) for row in rows],
        },
        x_label="k", y_label="seconds",
    )
    write_report(
        "figure4_%s" % name,
        "Figure 4(%s) — topk-join vs pptopk, %s workload" % (panel, name),
        "\n\n".join(
            [table,
             "Candidate size vs k:\n" + candidates_chart,
             "Running time vs k:\n" + time_chart]
        ),
    )

    # Candidate counts are non-decreasing in k for topk-join.
    topk_candidates = [row[1] for row in rows]
    assert topk_candidates == sorted(topk_candidates)

    if name == "trec":
        # The TREC panel is the crossover case (paper Fig. 4e: pptopk is
        # competitive at shallow k, topk-join pulls ahead as k grows).
        # The sweep *total* therefore sits near parity and is wall-clock
        # noisy; assert the paper's robust claims instead: at the deepest
        # k, topk-join both verifies fewer pairs and runs faster.
        deepest = rows[-1]
        assert deepest[1] < deepest[2], (
            "topk-join should verify fewer pairs than pptopk at k=%d"
            % deepest[0]
        )
        assert deepest[3] < deepest[4], (
            "topk-join should win at k=%d (topk %.2fs vs pptopk %.2fs)"
            % (deepest[0], deepest[3], deepest[4])
        )
    else:
        # Headline claim: topk-join wins on total wall clock over the
        # sweep (paper: up to 1.6x on DBLP, 3.4x on TREC-3GRAM).
        total_topk = sum(row[3] for row in rows)
        total_pptopk = sum(row[4] for row in rows)
        assert total_topk < total_pptopk, (
            "topk-join should beat pptopk overall on %s "
            "(topk %.2fs vs pptopk %.2fs)" % (name, total_topk, total_pptopk)
        )
