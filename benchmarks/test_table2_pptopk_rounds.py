"""Table II — pptopk's join-result sizes per threshold round (TREC).

The paper's table (thresholds 0.95 → 0.60): 34, 84, 187, 404, 725, 1162,
1819, 3361 results — roughly doubling as the threshold drops by 0.05.
The reproduction must show the same monotone, super-linear growth.
"""

from repro.bench import format_table, table2_rows, write_report


def test_table2_pptopk_round_sizes(once):
    rows = once(table2_rows)
    table = format_table(["threshold", "join results"], rows)
    write_report(
        "table2_pptopk_rounds",
        "Table II — ppjoin+ result sizes per threshold round (TREC-like)",
        table,
    )

    counts = [count for __, count in rows]
    thresholds = [t for t, __ in rows]
    assert thresholds == sorted(thresholds, reverse=True)
    # Result sets grow as the threshold drops (supersets).
    assert counts == sorted(counts)
    # Super-linear growth: the last round dwarfs the first.
    assert counts[-1] > 5 * max(counts[0], 1)
