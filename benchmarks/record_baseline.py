#!/usr/bin/env python
"""Record or check the hot-path benchmark baseline (BENCH_3.json).

Modes::

    python benchmarks/record_baseline.py              # measure, print JSON
    python benchmarks/record_baseline.py --record     # measure, overwrite
                                                      # benchmarks/BENCH_3.json
    python benchmarks/record_baseline.py --check      # measure, gate against
                                                      # the committed baseline
                                                      # (exit 1 on regression)

``--output FILE`` additionally writes the fresh measurement (used by CI to
publish the numbers as a build artifact).  ``--input FILE`` skips the
measurement and gates a previously written report instead — CI measures
once, then applies both the functional gate and the tighter observability
overhead budget (``--slowdown-limit 1.05``) to the same numbers.  ``--k``
restricts the k sweep (repeatable) to keep smoke runs short.
``--workers N`` adds a ``parallel`` row — the sharded backend's N-worker
speedup over its own 1-worker serial run — which ``--check`` gates
against ``--min-parallel-speedup`` (the shared-memory data-plane
contract; CI runs ``--workers 2``).  ``--stream`` adds a ``stream``
row — the incremental streaming engine's speedup over per-event batch
recompute on the same event sequence — gated by
``--min-stream-speedup``.  The JSON
structure is shared with ``repro bench --json``; see
:mod:`repro.bench.baseline`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench.baseline import (  # noqa: E402 — path bootstrap above
    BASELINE_PATH,
    MIN_KERNEL2_SPEEDUP,
    MIN_PARALLEL_SPEEDUP,
    MIN_SPEEDUP,
    MIN_STREAM_SPEEDUP,
    SLOWDOWN_LIMIT,
    carry_kernel2_reference,
    check_against_baseline,
    load_baseline,
    measure_baseline,
    measure_parallel,
    measure_stream,
    save_baseline,
    speedup_of,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record", action="store_true",
        help="overwrite the committed baseline %s" % BASELINE_PATH,
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate the fresh measurement against the committed baseline",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file to check against (default: the committed one)",
    )
    parser.add_argument(
        "--output", default=None,
        help="also write the fresh measurement to this file",
    )
    parser.add_argument(
        "--k", type=int, action="append", default=None,
        help="restrict the k sweep (repeatable; default: workload sweep)",
    )
    parser.add_argument(
        "--input", default=None,
        help="gate a previously measured report instead of measuring "
             "(implies --check semantics for the numbers source)",
    )
    parser.add_argument(
        "--slowdown-limit", type=float, default=SLOWDOWN_LIMIT,
        help="calibrated wall-time regression limit for --check "
             "(default %.2f; the observability overhead budget uses "
             "1.05)" % SLOWDOWN_LIMIT,
    )
    parser.add_argument(
        "--min-speedup", type=float, default=MIN_SPEEDUP,
        help="required accel on-vs-off speedup at the default k for "
             "--check (default %.2f)" % MIN_SPEEDUP,
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="also measure the sharded backend's N-worker speedup over "
             "its 1-worker serial run and add it to the report as a "
             "'parallel' row (--check then gates it)",
    )
    parser.add_argument(
        "--min-parallel-speedup", type=float,
        default=MIN_PARALLEL_SPEEDUP,
        help="required multi-worker speedup for --check when the report "
             "has a parallel row (default %.2f)" % MIN_PARALLEL_SPEEDUP,
    )
    parser.add_argument(
        "--min-kernel2-speedup", type=float, default=MIN_KERNEL2_SPEEDUP,
        help="required second-gen kernel speedup over the frozen gen-1 "
             "reference for --check when the committed baseline has a "
             "kernel2 row (default %.2f)" % MIN_KERNEL2_SPEEDUP,
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="also measure the streaming engine's incremental-vs-"
             "recompute speedup and add it to the report as a 'stream' "
             "row (--check then gates it)",
    )
    parser.add_argument(
        "--min-stream-speedup", type=float, default=MIN_STREAM_SPEEDUP,
        help="required incremental-vs-recompute speedup for --check when "
             "the report has a stream row (default %.2f)"
             % MIN_STREAM_SPEEDUP,
    )
    args = parser.parse_args(argv)

    if args.input:
        report = load_baseline(Path(args.input))
        print("# loaded %s" % args.input, file=sys.stderr)
    else:
        report = measure_baseline(k_values=args.k)
    if args.workers is not None and args.workers > 1:
        report["parallel"] = measure_parallel(args.workers)
        print(
            "# parallel row: %(workers)s workers on %(dataset)s k=%(k)s "
            "-> %(speedup)sx" % report["parallel"],
            file=sys.stderr,
        )
    if args.stream:
        report["stream"] = measure_stream()
        print(
            "# stream row: %(events)s events on %(dataset)s k=%(k)s "
            "window=%(window)s -> %(speedup)sx incremental vs recompute"
            % report["stream"],
            file=sys.stderr,
        )
    ratio = speedup_of(report)
    print(
        "# measured %d cells, accel speedup at default k: %s"
        % (
            len(report["entries"]),
            "%.2fx" % ratio if ratio is not None else "n/a",
        ),
        file=sys.stderr,
    )

    if args.output:
        save_baseline(report, Path(args.output))
        print("# wrote %s" % args.output, file=sys.stderr)

    if args.record:
        # Re-records must not lose the frozen gen-1 kernel reference:
        # carry it out of the baseline being overwritten, rescaled by
        # the off-time calibration between the two measurements.
        try:
            previous = load_baseline()
        except (OSError, ValueError):
            previous = None
        if previous is not None:
            carry_kernel2_reference(report, previous)
            kernel2 = report.get("kernel2")
            if kernel2 is not None:
                print(
                    "# kernel2 row: gen-1 reference %(gen1_wall_s)ss on "
                    "%(dataset)s k=%(k)s" % kernel2,
                    file=sys.stderr,
                )
        target = save_baseline(report)
        print("# recorded baseline %s" % target, file=sys.stderr)
        return 0

    if args.check:
        baseline = load_baseline(
            Path(args.baseline) if args.baseline else None
        )
        failures = check_against_baseline(
            report, baseline,
            slowdown_limit=args.slowdown_limit,
            min_speedup=args.min_speedup,
            min_parallel_speedup=args.min_parallel_speedup,
            min_stream_speedup=args.min_stream_speedup,
            min_kernel2_speedup=args.min_kernel2_speedup,
        )
        for failure in failures:
            print("REGRESSION: %s" % failure, file=sys.stderr)
        if failures:
            return 1
        print("# benchmark gate passed", file=sys.stderr)
        return 0

    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
