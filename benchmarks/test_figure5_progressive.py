"""Figure 5(b, c) — progressive output of join results (3-gram sets, k=200).

Panel (b): the probing upper bound of unprocessed events starts near 1.0
and decays roughly linearly per emitted result, while the k-th temporary
similarity s_k is nearly flat after warm-up.  Panel (c): results come out
slowly at first, then accelerate.
"""

import pytest

from repro.bench import ascii_chart, figure5bc_rows, format_table, write_report

DATASETS = [
    pytest.param("trec-3gram", id="trec-3gram"),
    pytest.param("uniref-3gram", id="uniref-3gram"),
]


@pytest.mark.parametrize("name", DATASETS)
def test_figure5bc_progressive_trace(once, name):
    rows = once(figure5bc_rows, name, 200)
    # Persist every 10th point to keep the artifact readable.
    sampled = [row for row in rows if row[0] % 10 == 0 or row[0] == 1]
    table = format_table(
        ["i", "similarity", "upper bound", "s_k", "elapsed (s)"], sampled
    )
    bounds_chart = ascii_chart(
        {
            "upper bound": [(row[0], row[2]) for row in rows],
            "s_k": [(row[0], row[3]) for row in rows],
        },
        x_label="i-th result", y_label="similarity",
    )
    time_chart = ascii_chart(
        {"elapsed": [(row[0], row[4]) for row in rows]},
        x_label="i-th result", y_label="seconds",
    )
    write_report(
        "figure5bc_progressive_%s" % name,
        "Figure 5(b, c) — progressive emission trace, %s, k=200" % name,
        "\n\n".join(
            [table,
             "Panel (b) — bounds per emitted result:\n" + bounds_chart,
             "Panel (c) — output time per emitted result:\n" + time_chart]
        ),
    )

    assert rows, "no results emitted"
    bounds = [row[2] for row in rows]
    s_k_values = [row[3] for row in rows]
    elapsed = [row[4] for row in rows]

    # (b) bounds decay monotonically; s_k is monotone non-decreasing.
    assert bounds == sorted(bounds, reverse=True)
    assert s_k_values == sorted(s_k_values)
    assert bounds[0] > 0.8, "first emission should occur at a high bound"
    # s_k nearly flat: warmed-up value close to final.
    if len(s_k_values) > 20:
        assert s_k_values[-1] - s_k_values[19] < 0.35

    # (c) elapsed time is non-decreasing and emission accelerates: the
    # second half of the results takes no longer than the first half.
    assert elapsed == sorted(elapsed)
    if len(elapsed) >= 40:
        midpoint = len(elapsed) // 2
        first_half = elapsed[midpoint] - elapsed[0]
        second_half = elapsed[-1] - elapsed[midpoint]
        assert second_half <= first_half * 1.5
