"""Shared benchmark configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark executes
its experiment exactly once (``pedantic`` with one round): the experiments
are deterministic sweeps whose *internal* timings are part of the reported
series, so statistical repetition would only multiply runtime.

Each benchmark persists its rendered table under ``benchmarks/results/``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
