"""Extension benchmark — weighted top-k joins.

The weighted (idf) variant of the event-driven join against the
exhaustive weighted scorer, on a DBLP-like workload re-weighted by its
own token idfs.  Checks that the weighted bounds actually prune (the
join must beat the oracle by a wide margin) and reports the agreement of
weighted vs unweighted rankings.
"""

import time

from repro.bench import collection, format_table, write_report
from repro.weighted import (
    WeightedCollection,
    naive_weighted_topk,
    weighted_topk_join,
)

K = 100


def test_extension_weighted_topk(once):
    def driver():
        base = collection("dblp")
        sets = [record.tokens for record in base][:1200]
        weighted = WeightedCollection.from_integer_sets(sets)

        start = time.perf_counter()
        fast = weighted_topk_join(weighted, K)
        fast_seconds = time.perf_counter() - start

        start = time.perf_counter()
        oracle = naive_weighted_topk(weighted, K)
        oracle_seconds = time.perf_counter() - start

        fast_multiset = sorted(
            (round(r.similarity, 9) for r in fast), reverse=True
        )
        oracle_multiset = sorted(
            (round(r.similarity, 9) for r in oracle), reverse=True
        )
        agree = fast_multiset == oracle_multiset
        return [
            ("weighted topk-join", len(fast), fast_seconds, agree),
            ("weighted naive", len(oracle), oracle_seconds, True),
        ]

    rows = once(driver)
    write_report(
        "extension_weighted_topk",
        "Extension — weighted (idf) top-k join vs exhaustive scorer "
        "(DBLP-like, k=%d)" % K,
        format_table(["method", "results", "seconds", "exact"], rows),
    )

    assert rows[0][3], "weighted join must agree with the oracle"
    assert rows[0][2] < rows[1][2], "weighted bounds must prune"
