"""Figure 3(b, c) — index entries and running time, with vs without the
indexing optimisation (TREC, Jaccard).

The paper reports ~40% fewer index entries and ~20% less running time with
the indexing similarity upper bound (Algorithms 7-8) enabled.
"""

from repro.bench import ascii_chart, figure3bc_rows, format_table, write_report


def test_figure3bc_index_entries_and_time(once):
    rows = once(figure3bc_rows)
    table = format_table(
        ["k", "index entries (opt)", "index entries (w/o)",
         "seconds (opt)", "seconds (w/o)"],
        rows,
    )
    entries_chart = ascii_chart(
        {
            "topk-join": [(row[0], row[1]) for row in rows],
            "w/o-index-opt": [(row[0], row[2]) for row in rows],
        },
        x_label="k", y_label="index entries",
    )
    write_report(
        "figure3bc_index_entries_time",
        "Figure 3(b, c) — indexing optimisation ablation (TREC-like, Jaccard)",
        table + "\n\nPanel (b) — index entries vs k:\n" + entries_chart,
    )

    for k, peak_opt, peak_without, __, __unused in rows:
        assert peak_opt <= peak_without, (
            "indexing opt must never grow the index (k=%d)" % k
        )
    total_opt = sum(row[1] for row in rows)
    total_without = sum(row[2] for row in rows)
    assert total_opt < 0.9 * total_without, (
        "indexing opt should cut index entries materially "
        "(paper: ~40%%; got %.0f%% of baseline)"
        % (100 * total_opt / max(total_without, 1))
    )
