"""Extension benchmark — edit-distance joins via q-gram filtering.

Related-work substrate ([25], [28]): the q-gram count-filtered join against
the naive all-pairs dynamic program, on strings with planted typos.
"""

import random
import time

from repro.bench import format_table, write_report
from repro.strings import edit_distance, edit_distance_join

N = 400


def _corpus(seed: int):
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnop"
    strings = []
    for __ in range(N):
        if strings and rng.random() < 0.4:
            base = list(strings[rng.randrange(len(strings))])
            for __e in range(rng.randint(1, 3)):
                position = rng.randrange(len(base))
                base[position] = rng.choice(alphabet)
            strings.append("".join(base))
        else:
            length = rng.randint(15, 40)
            strings.append(
                "".join(rng.choice(alphabet) for __c in range(length))
            )
    return strings


def test_extension_edit_distance_join(once):
    def driver():
        strings = _corpus(23)
        rows = []
        for d in (1, 2, 3):
            start = time.perf_counter()
            filtered = edit_distance_join(strings, d, q=3)
            filtered_seconds = time.perf_counter() - start
            rows.append(("q-gram join d=%d" % d, len(filtered),
                         filtered_seconds))

        start = time.perf_counter()
        naive_count = 0
        for a in range(len(strings)):
            for b in range(a + 1, len(strings)):
                if edit_distance(strings[a], strings[b]) <= 3:
                    naive_count += 1
        naive_seconds = time.perf_counter() - start
        rows.append(("naive DP join d=3", naive_count, naive_seconds))
        return rows

    rows = once(driver)
    write_report(
        "extension_edit_distance_join",
        "Extension — q-gram edit-distance join vs naive DP (%d strings)" % N,
        format_table(["method", "pairs", "seconds"], rows),
    )

    by_label = {row[0]: row for row in rows}
    assert by_label["q-gram join d=3"][1] == by_label["naive DP join d=3"][1]
    assert by_label["q-gram join d=3"][2] < by_label["naive DP join d=3"][2]
