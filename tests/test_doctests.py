"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.data.ordering
import repro.data.tokenize


@pytest.mark.parametrize(
    "module",
    [repro.data.tokenize, repro.data.ordering],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0, "%d doctest failures" % results.failed
    # The tokenize module genuinely carries examples; make sure the
    # parametrization isn't silently testing nothing.
    if module is repro.data.tokenize:
        assert results.attempted >= 2
