"""Property-based tests for the extensions (R-S join, session, approx)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    TaggedCollection,
    TopkSession,
    naive_topk,
    naive_topk_rs,
    topk_join_rs,
)
from repro.approx import MinHasher, estimate_jaccard
from repro.data import RecordCollection
from repro.similarity import Jaccard

from conftest import rounded_multiset

# Heavy Hypothesis/fuzz suite: runs in the slow CI lane.
pytestmark = pytest.mark.slow

token_sets = st.lists(
    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
    min_size=1,
    max_size=10,
)


@given(r=token_sets, s=token_sets, k=st.integers(min_value=1, max_value=12))
@settings(max_examples=50, deadline=None)
def test_rs_join_matches_oracle(r, s, k):
    tagged = TaggedCollection.from_integer_sets(list(r), list(s))
    got = rounded_multiset(topk_join_rs(tagged, k))
    want = rounded_multiset(naive_topk_rs(tagged, k))
    assert got[: len(want)] == want
    assert all(value == 0.0 for value in got[len(want):])


@given(r=token_sets, s=token_sets, k=st.integers(min_value=1, max_value=12))
@settings(max_examples=50, deadline=None)
def test_rs_join_returns_only_cross_pairs(r, s, k):
    tagged = TaggedCollection.from_integer_sets(list(r), list(s))
    for result in topk_join_rs(tagged, k):
        assert tagged.side(result.x) != tagged.side(result.y)


@given(
    sets=st.lists(
        st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
        min_size=2,
        max_size=12,
    ),
    depths=st.lists(
        st.integers(min_value=1, max_value=15), min_size=1, max_size=4
    ),
)
@settings(max_examples=40, deadline=None)
def test_session_consistent_at_any_depth_order(sets, depths):
    coll = RecordCollection.from_integer_sets(list(sets), dedupe=False)
    max_k = max(depths)
    session = TopkSession(coll, max_k=max_k)
    for k in depths:
        got = rounded_multiset(session.top(k))
        want = rounded_multiset(naive_topk(coll, k))
        # The session only omits zero-similarity padding.
        assert got == want[: len(got)]
        assert all(value == 0.0 for value in want[len(got):])


@given(
    x=st.sets(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
    y=st.sets(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_minhash_estimate_within_bounds(x, y):
    hasher = MinHasher(num_hashes=64, seed=11)
    estimate = estimate_jaccard(
        hasher.signature(tuple(x)), hasher.signature(tuple(y))
    )
    assert 0.0 <= estimate <= 1.0
    truth = Jaccard().similarity(tuple(sorted(x)), tuple(sorted(y)))
    if truth == 1.0:
        assert estimate == 1.0


@given(
    x=st.sets(st.integers(min_value=0, max_value=50), min_size=1, max_size=20)
)
@settings(max_examples=40, deadline=None)
def test_minhash_permutation_invariant(x):
    hasher = MinHasher(num_hashes=32, seed=13)
    ordered = tuple(sorted(x))
    reversed_order = tuple(reversed(ordered))
    assert hasher.signature(ordered) == hasher.signature(reversed_order)
