"""Multiprocessing hygiene: pools shut down cleanly, nothing leaks.

``Pool.__exit__`` calls ``terminate()``, which kills workers mid-flight
and leaks semaphores/pipes that surface as ResourceWarnings at
interpreter shutdown; the parallel backend therefore closes and joins its
pool explicitly.  These tests assert the contract from the outside: no
worker processes survive a join, and a dev-mode interpreter running the
parallel backend with ResourceWarnings-as-errors exits cleanly.
"""

from __future__ import annotations

import multiprocessing
import subprocess
import sys

import pytest

from repro.data.synthetic import random_integer_collection
from repro.parallel import parallel_topk_join

_SCRIPT = r"""
import multiprocessing, sys
from repro.data.synthetic import random_integer_collection
from repro.parallel import parallel_topk_join

collection = random_integer_collection(150, 40, 10, seed=3)
results = parallel_topk_join(collection, 8, workers=2, shards=4)
assert len(results) == 8
children = multiprocessing.active_children()
assert not children, "leaked worker processes: %r" % children
print("OK")
"""


def _pool_usable() -> bool:
    try:
        context = multiprocessing.get_context()
        with context.Pool(1) as pool:
            pool.close()
            pool.join()
        return True
    except (ImportError, OSError, PermissionError):
        return False


def test_no_worker_processes_survive():
    if not _pool_usable():
        pytest.skip("no multiprocessing primitives in this sandbox")
    collection = random_integer_collection(150, 40, 10, seed=3)
    parallel_topk_join(collection, 8, workers=2, shards=4)
    assert multiprocessing.active_children() == []


def test_no_resource_warnings_in_dev_mode():
    """Run the parallel join in a fresh interpreter with ``-X dev`` and
    ResourceWarning promoted to an error: leaked pool semaphores or pipes
    would fail the subprocess at exit."""
    if not _pool_usable():
        pytest.skip("no multiprocessing primitives in this sandbox")
    completed = subprocess.run(
        [
            sys.executable,
            "-X", "dev",
            "-W", "error::ResourceWarning",
            "-c", _SCRIPT,
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        "stdout:\n%s\nstderr:\n%s" % (completed.stdout, completed.stderr)
    )
    assert "OK" in completed.stdout
