"""The differential fuzzer: generators, the shrinker, corpus round-trips."""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.core.topk_join import TopkOptions, topk_join
from repro.oracle import InvariantViolation
from repro.oracle.differential import (
    DifferentialCase,
    available_backends,
    run_differential,
)
from repro.oracle.faults import OffByOneIndexingBound
from repro.oracle.fuzz import (
    CASE_SCHEMA,
    GENERATORS,
    fuzz_run,
    load_corpus_case,
    replay_corpus,
    save_corpus_case,
    shrink_case,
)

# Heavy Hypothesis/fuzz suite: runs in the slow CI lane.
pytestmark = pytest.mark.slow


def test_all_backends_registered():
    from repro.accel.kernel import numpy_available
    from repro.parallel.shm import shm_usable

    expected = {
        "sequential", "record-all", "ablated", "parallel", "rs",
        "weighted", "pptopk", "accel-off", "accel-python",
        "parallel-accel-off", "rs-accel-off", "trace-on",
        # Second-generation kernel backends: "accel-native" is present
        # even without numba (it exercises the fallback ladder), and
        # the non-default widths/batch ablation ride the same registry.
        "accel-native", "accel-nobatch", "sig-64", "sig-256", "sig-512",
    }
    if numpy_available():
        expected.add("accel-numpy")
    if shm_usable():
        expected.add("parallel-shm")
    assert set(available_backends()) == expected


def test_run_differential_clean_case():
    case = DifferentialCase.make(
        [[0, 1, 2], [0, 1, 2], [0, 1], [3, 4], [2, 3]], k=3
    )
    assert run_differential(case) == []


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_generators_are_deterministic(name):
    a = GENERATORS[name](random.Random(7), 20)
    b = GENERATORS[name](random.Random(7), 20)
    assert a == b
    assert 1 <= len(a) <= 21  # degenerate appends one giant record


def test_run_differential_rejects_unknown_backend():
    case = DifferentialCase.make([[0], [1]], k=1)
    with pytest.raises(ValueError, match="unknown backends"):
        run_differential(case, backends=["sequential", "nope"])


def test_run_differential_degenerate_inputs():
    for records in ([], [[]], [[0]], [[], [], []], [[0], [0]]):
        for sim in ("jaccard", "overlap"):
            case = DifferentialCase.make(records, k=2, similarity=sim)
            assert run_differential(case) == [], (records, sim)


def test_run_differential_reports_fault_as_failure(monkeypatch):
    """A buggy similarity routed through one backend yields failure strings,
    not exceptions — the fuzz loop must survive to shrink them."""
    import repro.oracle.differential as differential

    def broken_by_name(name):
        return OffByOneIndexingBound()

    monkeypatch.setattr(differential, "similarity_by_name", broken_by_name)
    case = DifferentialCase.make(
        [[0, 1, 2, 3], [0, 1, 2, 4], [0, 1, 5], [2, 3, 4], [0, 5], [1, 2]],
        k=3,
    )
    failures = run_differential(case, backends=["sequential"])
    assert failures
    assert "sequential" in failures[0]


def test_fuzz_run_clean_and_deterministic(tmp_path):
    first = fuzz_run(seed=123, iterations=25, corpus_dir=str(tmp_path))
    second = fuzz_run(seed=123, iterations=25, corpus_dir=str(tmp_path))
    assert first.ok and second.ok
    assert first.iterations == second.iterations == 25
    assert list(tmp_path.iterdir()) == []  # nothing failed, nothing saved


def test_fuzz_run_budget_stops_early():
    report = fuzz_run(seed=1, iterations=10_000, budget=0.0)
    assert report.iterations == 0


def test_corpus_roundtrip(tmp_path):
    case = DifferentialCase.make([[0, 1], [0, 2]], k=1, similarity="cosine")
    path = save_corpus_case(
        str(tmp_path), case, ["sequential: boom"], seed=9,
        generator="tie-heavy", description="unit test",
    )
    assert os.path.basename(path).startswith("case_")
    loaded, document = load_corpus_case(path)
    assert loaded == case
    assert document["schema"] == CASE_SCHEMA
    assert document["failures"] == ["sequential: boom"]
    assert document["generator"] == "tie-heavy"
    # Same case -> same digest -> same file (idempotent saves).
    assert save_corpus_case(str(tmp_path), case, []) == path


def test_load_corpus_rejects_unknown_schema(tmp_path):
    path = tmp_path / "case_badbadbadbad.json"
    path.write_text(json.dumps({"schema": 999}))
    with pytest.raises(ValueError, match="schema"):
        load_corpus_case(str(path))


def test_replay_corpus_flags_failing_case(tmp_path, monkeypatch):
    case = DifferentialCase.make(
        [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]], k=2
    )
    save_corpus_case(str(tmp_path), case, [])
    assert replay_corpus(str(tmp_path)) == []

    import repro.oracle.differential as differential

    monkeypatch.setattr(
        differential, "similarity_by_name",
        lambda name: OffByOneIndexingBound(),
    )
    failing = replay_corpus(str(tmp_path), backends=["sequential"])
    assert len(failing) == 1


def test_replay_corpus_missing_dir_is_empty():
    assert replay_corpus("/nonexistent/corpus/dir") == []


def test_shrinker_result_is_one_minimal():
    """Every single-record deletion of the shrunk case must stop failing."""

    def failing(case: DifferentialCase):
        try:
            topk_join(
                case.collection(), case.k,
                similarity=OffByOneIndexingBound(),
                options=TopkOptions(check_invariants=True),
            )
        except InvariantViolation as violation:
            return [str(violation)]
        return []

    seed_case = DifferentialCase.make(
        [[t for t in range(i, i + 4)] for i in range(10)]
        + [[0, 1, 2, 3], [0, 1, 2, 4], [1, 2, 3, 4]],
        k=4,
    )
    if not failing(seed_case):
        pytest.skip("fault not triggered by this input shape")
    shrunk = shrink_case(seed_case, failing)
    assert failing(shrunk)
    for index in range(len(shrunk.records)):
        smaller = DifferentialCase(
            shrunk.records[:index] + shrunk.records[index + 1:],
            shrunk.k, shrunk.similarity,
        )
        if smaller.records:
            assert not failing(smaller), (
                "record %d is removable: %r" % (index, shrunk.records)
            )
